/**
 * @file
 * Table VII reproduction: DLRM end-to-end inference latency for every
 * protection scheme, Criteo Kaggle and Terabyte shapes (scaled tables,
 * batch 32, 1 thread).
 *
 * Speed-ups are reported against Circuit ORAM, the paper's most
 * competitive traditional baseline.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "core/factory.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "profile/profiler.h"
#include "telemetry/telemetry.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t scale = args.GetInt("--scale", 200);
    const int batch = static_cast<int>(args.GetInt("--batch", 32));
    const int reps = static_cast<int>(args.GetInt("--reps", 3));
    const bool skip_path = args.GetBool("--skip-path");
    const std::string json_path = args.GetString("--json");
    const std::string trace_path = args.GetString("--trace");

    bench::BenchReport report("tab07_e2e_latency");

    std::vector<core::GenKind> kinds{
        core::GenKind::kIndexLookup, core::GenKind::kLinearScan,
        core::GenKind::kPathOram,    core::GenKind::kCircuitOram,
        core::GenKind::kDheUniform,  core::GenKind::kDheVaried,
        core::GenKind::kHybridUniform, core::GenKind::kHybridVaried};
    if (skip_path) {
        kinds.erase(kinds.begin() + 2);
    }

    for (const bool terabyte : {false, true}) {
        const dlrm::DlrmConfig cfg =
            (terabyte ? dlrm::DlrmConfig::CriteoTerabyte()
                      : dlrm::DlrmConfig::CriteoKaggle())
                .Scaled(scale);
        std::printf("=== Table VII (%s/%ldx): end-to-end latency, batch "
                    "%d, 1 thread ===\n",
                    terabyte ? "Terabyte" : "Kaggle", scale, batch);

        dlrm::SyntheticCtrDataset src(cfg, 9);
        const dlrm::CtrBatch data = src.NextBatch(batch);

        // Offline profiling (Algorithm 2) for the hybrid schemes.
        Rng prof_rng(99);
        const core::ThresholdTable thr_uniform = profile::QuickThresholds(
            batch, 1, cfg.emb_dim, /*varied_dhe=*/false, prof_rng);
        const core::ThresholdTable thr_varied = profile::QuickThresholds(
            batch, 1, cfg.emb_dim, /*varied_dhe=*/true, prof_rng);

        double circuit_ns = 0.0;
        std::vector<std::pair<std::string, double>> results;
        for (auto kind : kinds) {
            // Per-method counters: zero the registry so the JSON report
            // attributes counts (scan rows, DHE calls, ORAM accesses) to
            // this method alone.
            telemetry::Registry::Instance().ResetAll();
            Rng rng(static_cast<uint64_t>(kind) * 31 + 5);
            std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
            core::GeneratorOptions opt;
            opt.batch_size = batch;
            if (kind == core::GenKind::kHybridUniform) {
                opt.thresholds = &thr_uniform;
            } else if (kind == core::GenKind::kHybridVaried) {
                opt.thresholds = &thr_varied;
            }
            for (int64_t s : cfg.table_sizes) {
                gens.push_back(
                    core::MakeGenerator(kind, s, cfg.emb_dim, rng, opt));
            }
            Rng mlp_rng(13);
            dlrm::SecureDlrm model(cfg, std::move(gens), mlp_rng);
            const std::vector<double> samples = bench::TimeCallSamplesNs(
                [&] { model.Inference(data.dense, data.sparse); }, 1,
                reps);
            const bench::LatencyStats stats =
                bench::LatencyStats::FromSamples(samples);
            const double ns = stats.mean_ns;
            if (kind == core::GenKind::kCircuitOram) circuit_ns = ns;
            results.emplace_back(std::string(core::GenKindName(kind)),
                                 ns);

            auto& result =
                report.AddResult(std::string(core::GenKindName(kind)));
            result.str_params.emplace_back(
                "dataset", terabyte ? "terabyte" : "kaggle");
            result.num_params.emplace_back(
                "scale", static_cast<double>(scale));
            result.num_params.emplace_back(
                "batch", static_cast<double>(batch));
            result.num_params.emplace_back(
                "emb_dim", static_cast<double>(cfg.emb_dim));
            result.latency = stats;
            bench::BenchReport::AttachTelemetryCounters(result);
        }

        bench::TablePrinter table(
            {"method", "latency (ms)", "vs Circuit ORAM"});
        for (const auto& [name, ns] : results) {
            table.AddRow(
                {name, bench::TablePrinter::Ms(ns, 2),
                 circuit_ns > 0
                     ? bench::TablePrinter::Num(circuit_ns / ns, 2) + "x"
                     : "-"});
        }
        table.Print();
        std::printf("\n");
    }
    if (!json_path.empty() && !report.WriteTo(json_path)) {
        std::fprintf(stderr, "tab07: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    if (!trace_path.empty() &&
        !telemetry::WriteChromeTrace(trace_path)) {
        std::fprintf(stderr, "tab07: cannot write %s\n",
                     trace_path.c_str());
        return 1;
    }
    std::printf(
        "Expected (paper Table VII): linear scan slowest by orders of\n"
        "magnitude; Path ORAM >> Circuit ORAM; DHE Varied beats Circuit\n"
        "ORAM (1.4-2.0x); Hybrid Varied is the fastest secure scheme\n"
        "(2.0-2.3x over Circuit ORAM); the non-secure lookup remains\n"
        "several times faster than any protection.\n");
    return 0;
}
