/**
 * @file
 * Ablation: cost of payload re-encryption in the software ORAM
 * controller.
 *
 * Tree ORAM must re-encrypt every bucket it writes back (otherwise
 * ciphertext equality leaks block movement); ZeroTrace pays this with
 * AES, this repo with Speck64 CTR. The ablation quantifies how much of
 * the controller's latency is cipher work — context for how the ORAM
 * curves in Figs. 4/5/10 would shift with hardware AES.
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/table_generators.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t dim = args.GetInt("--dim", 64);

    std::printf("=== Ablation: ORAM payload re-encryption cost "
                "(dim %ld, single lookup) ===\n\n", dim);

    bench::TablePrinter table({"ORAM", "table size", "encrypted (ms)",
                               "plaintext (ms)", "cipher share"});
    for (auto kind : {oram::OramKind::kPath, oram::OramKind::kCircuit}) {
        for (int64_t size : {int64_t{4096}, int64_t{65536}}) {
            double lat[2];
            for (int enc = 0; enc < 2; ++enc) {
                Rng rng(size + enc);
                oram::OramParams params = oram::OramParams::Defaults(kind);
                params.encrypt_payloads = (enc == 0);
                const Tensor t = Tensor::Randn({size, dim}, rng);
                core::OramTable gen(t, kind, rng, &params);
                Rng idx(1);
                lat[enc] = profile::MeasureGeneratorLatencyNs(gen, 1, idx,
                                                              5);
            }
            table.AddRow(
                {kind == oram::OramKind::kPath ? "Path" : "Circuit",
                 std::to_string(size), bench::TablePrinter::Ms(lat[0], 3),
                 bench::TablePrinter::Ms(lat[1], 3),
                 bench::TablePrinter::Num(
                     100.0 * (1.0 - lat[1] / lat[0]), 0) + "%"});
        }
    }
    table.Print();
    std::printf(
        "\nReading: the cipher dominates Circuit ORAM (its data movement\n"
        "is small) and is a moderate share of Path ORAM (whose oblivious\n"
        "stash blending dominates). Hardware AES (as on the paper's Xeon)\n"
        "shrinks but does not eliminate this term.\n");
    return 0;
}
