/**
 * @file
 * Extension: Square-Root ORAM vs the paper's tree-based baselines.
 *
 * The paper (Section VII) notes other ORAM designs exist "with different
 * performance characteristics" but evaluates only tree ORAMs. This bench
 * makes the comparison concrete on the embedding workload: Sqrt ORAM's
 * mean access can undercut Path ORAM, but every sqrt(n)-th access pays
 * an O(n log^2 n) oblivious reshuffle — a latency spike no serving SLA
 * tolerates, which is (part of) why tree ORAMs are the practical
 * baseline.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "oram/sqrt_oram.h"
#include "oram/tree_oram.h"

using namespace secemb;

namespace {

struct LatencyProfile
{
    double mean_ms;
    double p50_ms;
    double max_ms;
};

template <typename OramT>
LatencyProfile
Profile(OramT& oram, int64_t n, int64_t words, int accesses)
{
    std::vector<uint32_t> out(static_cast<size_t>(words));
    Rng wl(3);
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(accesses));
    for (int i = 0; i < accesses; ++i) {
        bench::WallTimer t;
        oram.Read(static_cast<int64_t>(wl.NextBounded(n)), out);
        samples.push_back(t.ElapsedNs() * 1e-6);
    }
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    double mean = 0;
    for (double s : samples) mean += s / accesses;
    return {mean, sorted[sorted.size() / 2], sorted.back()};
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t n = args.GetInt("--size", 4096);
    const int64_t words = args.GetInt("--dim", 64);
    const int accesses =
        static_cast<int>(args.GetInt("--accesses", 300));

    std::printf("=== Extension: Square-Root ORAM vs tree ORAMs "
                "(%ld blocks, dim %ld, %d random reads) ===\n\n",
                n, words, accesses);

    bench::TablePrinter table({"ORAM", "mean (ms)", "p50 (ms)",
                               "worst access (ms)", "memory (MB)"});

    {
        Rng rng(1);
        oram::SqrtOram sq(n, words, rng);
        const auto p = Profile(sq, n, words, accesses);
        table.AddRow({"Square-Root",
                      bench::TablePrinter::Num(p.mean_ms, 3),
                      bench::TablePrinter::Num(p.p50_ms, 3),
                      bench::TablePrinter::Num(p.max_ms, 3),
                      bench::TablePrinter::Mb(sq.MemoryFootprintBytes(),
                                              1)});
    }
    for (auto kind : {oram::OramKind::kPath, oram::OramKind::kCircuit}) {
        Rng rng(2);
        auto tree = oram::MakeOram(kind, n, words, rng);
        const auto p = Profile(*tree, n, words, accesses);
        table.AddRow({kind == oram::OramKind::kPath ? "Path (tree)"
                                                    : "Circuit (tree)",
                      bench::TablePrinter::Num(p.mean_ms, 3),
                      bench::TablePrinter::Num(p.p50_ms, 3),
                      bench::TablePrinter::Num(p.max_ms, 3),
                      bench::TablePrinter::Mb(
                          tree->MemoryFootprintBytes(), 1)});
    }
    table.Print();
    std::printf(
        "\nReading: tree ORAMs have flat per-access cost; Square-Root\n"
        "ORAM is cheap between epochs but its worst access (the oblivious\n"
        "reshuffle) dwarfs the tree ORAMs' — disqualifying for the\n"
        "latency-bounded serving the paper targets, while its O(n) memory\n"
        "(no dummy tree) is the smallest of the protected storage schemes.\n");
    return 0;
}
