/**
 * @file
 * Fig. 12 reproduction: end-to-end DLRM latency vs batch size for the
 * secure schemes, Criteo Kaggle and Terabyte shapes (scaled tables).
 *
 * The paper's point: the hybrid scheme scales better than Circuit ORAM
 * as the batch grows, because ORAM must serialise one tree access per
 * query while DHE amortises its FC weights across the batch — the
 * advantage widens from ~2x at batch 32 to ~2.6-3.1x at batch 128.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "profile/profiler.h"

using namespace secemb;

namespace {

std::unique_ptr<dlrm::SecureDlrm>
BuildModel(const dlrm::DlrmConfig& cfg, core::GenKind kind, int batch,
           const core::ThresholdTable* thresholds)
{
    Rng rng(static_cast<uint64_t>(kind) * 101 + 7);
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
    core::GeneratorOptions opt;
    opt.batch_size = batch;
    opt.thresholds = thresholds;
    for (int64_t s : cfg.table_sizes) {
        gens.push_back(
            core::MakeGenerator(kind, s, cfg.emb_dim, rng, opt));
    }
    Rng mlp_rng(11);
    return std::make_unique<dlrm::SecureDlrm>(cfg, std::move(gens),
                                              mlp_rng);
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t scale = args.GetInt("--scale", 200);

    for (const bool terabyte : {false, true}) {
        const dlrm::DlrmConfig cfg =
            (terabyte ? dlrm::DlrmConfig::CriteoTerabyte()
                      : dlrm::DlrmConfig::CriteoKaggle())
                .Scaled(scale);
        std::printf("=== Fig. 12 (%s/%ldx): end-to-end latency vs batch "
                    "size ===\n",
                    terabyte ? "Terabyte" : "Kaggle", scale);

        bench::TablePrinter table({"batch", "Circuit ORAM (ms)",
                                   "Hybrid Varied (ms)", "speed-up"});
        for (const int batch : {8, 32, 128}) {
            Rng prof_rng(99);
            const core::ThresholdTable thresholds =
                profile::QuickThresholds(batch, 1, cfg.emb_dim,
                                         /*varied_dhe=*/true, prof_rng);
            auto oram = BuildModel(cfg, core::GenKind::kCircuitOram,
                                   batch, nullptr);
            auto hybrid = BuildModel(cfg, core::GenKind::kHybridVaried,
                                     batch, &thresholds);
            dlrm::SyntheticCtrDataset src(cfg, 3);
            const dlrm::CtrBatch data = src.NextBatch(batch);
            const double oram_ns = bench::TimeCallNs(
                [&] { oram->Inference(data.dense, data.sparse); }, 1, 2);
            const double hyb_ns = bench::TimeCallNs(
                [&] { hybrid->Inference(data.dense, data.sparse); }, 1,
                2);
            table.AddRow({std::to_string(batch),
                          bench::TablePrinter::Ms(oram_ns, 2),
                          bench::TablePrinter::Ms(hyb_ns, 2),
                          bench::TablePrinter::Num(oram_ns / hyb_ns, 2) +
                              "x"});
        }
        table.Print();
        std::printf("\n");
    }
    std::printf(
        "Expected shape (paper Fig. 12): both grow with batch, but the\n"
        "hybrid's advantage over Circuit ORAM widens with batch size.\n");
    return 0;
}
