/**
 * @file
 * Cost of obliviousness certification: wall time of the differential
 * engine and the statistical fixed-vs-random check per subject, plus
 * the trace-recording overhead the harness imposes on a generator
 * (instrumented vs bare generation).
 *
 * The certification gate runs on every `ctest -L leakage` invocation,
 * so its cost budget matters: this bench shows where the time goes
 * (ORAM statistical runs dominate — each needs >= 24 instrumented
 * generator executions) and that recording overhead stays small enough
 * to leave trace shapes representative of production runs.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "core/table_generators.h"
#include "sidechannel/trace.h"
#include "tensor/rng.h"
#include "verify/harness.h"

using namespace secemb;

namespace {

struct CertifyCost
{
    double differential_ms;
    double statistical_ms;
    size_t trace_len;
};

CertifyCost
Profile(const verify::VerifyConfig& config, bool statistical)
{
    CertifyCost cost{0.0, 0.0, 0};
    {
        bench::WallTimer t;
        const auto r = verify::RunDifferential(config);
        cost.differential_ms = t.ElapsedNs() * 1e-6;
        cost.trace_len = r.trace_len;
    }
    if (statistical) {
        bench::WallTimer t;
        (void)verify::RunStatistical(config);
        cost.statistical_ms = t.ElapsedNs() * 1e-6;
    }
    return cost;
}

/// Generation time with and without an attached recorder, to bound the
/// overhead instrumentation adds to the subject under test.
void
RecorderOverhead(int64_t rows, int64_t dim, int batch, int reps)
{
    Rng rng(7);
    core::LinearScanTable gen(Tensor::Randn({rows, dim}, rng));
    std::vector<int64_t> ids(static_cast<size_t>(batch));
    Rng wl(9);
    for (auto& id : ids) {
        id = static_cast<int64_t>(wl.NextBounded(rows));
    }
    Tensor out({static_cast<int64_t>(batch), dim});

    bench::WallTimer bare;
    for (int i = 0; i < reps; ++i) gen.Generate(ids, out);
    const double bare_ms = bare.ElapsedNs() * 1e-6;

    sidechannel::TraceRecorder rec;
    gen.set_recorder(&rec);
    bench::WallTimer traced;
    for (int i = 0; i < reps; ++i) {
        rec.Clear();
        gen.Generate(ids, out);
    }
    const double traced_ms = traced.ElapsedNs() * 1e-6;

    std::printf(
        "\nRecording overhead (scan %ldx%ld, batch %d, %d reps): "
        "bare %.2f ms, traced %.2f ms (%.2fx, %zu accesses/run)\n",
        rows, dim, batch, reps, bare_ms, traced_ms,
        bare_ms > 0 ? traced_ms / bare_ms : 0.0, rec.size());
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t rows = args.GetInt("--rows", 128);
    const int64_t dim = args.GetInt("--dim", 16);
    const int batch = args.GetInt("--batch", 8);
    const int sets = static_cast<int>(args.GetInt("--sets", 4));
    const std::string json_path = args.GetString("--json");

    std::printf("=== Certification cost: differential + statistical "
                "checks per subject (%ldx%ld, batch %d, %d secret sets) "
                "===\n\n",
                rows, dim, batch, sets);

    bench::TablePrinter table({"subject", "differential (ms)",
                               "statistical (ms)", "trace accesses"});
    bench::BenchReport report("ver01_certify_cost");
    double total_ms = 0.0;
    for (const verify::Subject s : verify::AllSecureSubjects()) {
        verify::VerifyConfig config;
        config.subject = s;
        config.rows = rows;
        config.dim = dim;
        config.batch = batch;
        config.secret_sets = sets;
        config.seed = 11;
        const bool statistical = !verify::SubjectIsDeterministic(s);
        const CertifyCost cost = Profile(config, statistical);
        total_ms += cost.differential_ms + cost.statistical_ms;
        table.AddRow({verify::SubjectName(s),
                      bench::TablePrinter::Num(cost.differential_ms, 2),
                      statistical
                          ? bench::TablePrinter::Num(cost.statistical_ms, 2)
                          : std::string("-"),
                      std::to_string(cost.trace_len)});

        // One result per subject; "latency" is the full certification
        // cost (differential + statistical) so the trajectory gate
        // catches the certification harness itself getting slower.
        auto& res = report.AddResult(verify::SubjectName(s));
        res.num_params.emplace_back("rows", static_cast<double>(rows));
        res.num_params.emplace_back("dim", static_cast<double>(dim));
        res.num_params.emplace_back("batch", static_cast<double>(batch));
        res.num_params.emplace_back("differential_ms",
                                    cost.differential_ms);
        res.num_params.emplace_back("statistical_ms", cost.statistical_ms);
        res.str_params.emplace_back("statistical",
                                    statistical ? "yes" : "no");
        res.latency = bench::LatencyStats::FromMean(
            (cost.differential_ms + cost.statistical_ms) * 1e6,
            /*count=*/1);
        res.counters.emplace_back("trace_accesses", cost.trace_len);
    }
    table.Print();
    std::printf("\nTotal certification cost at this shape: %.1f ms\n",
                total_ms);

    RecorderOverhead(rows, dim, batch, /*reps=*/50);

    std::printf(
        "\nReading: the statistical check dominates (each randomized\n"
        "subject needs two groups of instrumented runs plus a seeded\n"
        "permutation calibration), yet the whole gate stays cheap enough\n"
        "to run in every CI invocation of `ctest -L leakage`.\n");

    if (!json_path.empty() && !report.WriteTo(json_path)) {
        std::fprintf(stderr, "ver01: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    return 0;
}
