/**
 * @file
 * Ablation: DHE capacity (k and decoder width) vs latency and fit
 * quality.
 *
 * The paper's sizing rules ("sized for no loss", Table I) hinge on this
 * trade-off: a bigger hash code and decoder reproduce a target table
 * more exactly but cost more per lookup. Each configuration is trained
 * to memorise the same 256-row target table; reported is the residual
 * MSE and the batch-32 generation latency.
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "dhe/dhe.h"
#include "nn/optim.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int steps = static_cast<int>(args.GetInt("--steps", 300));
    const int64_t rows = args.GetInt("--rows", 256);
    const int64_t dim = 16;

    std::printf("=== Ablation: DHE sizing vs fit quality (%ld-row "
                "target table, dim %ld, %d train steps) ===\n\n",
                rows, dim, steps);

    Rng target_rng(1);
    const Tensor target = Tensor::Randn({rows, dim}, target_rng);
    std::vector<int64_t> ids;
    for (int64_t i = 0; i < rows; ++i) ids.push_back(i);

    bench::TablePrinter table({"k", "decoder", "params", "fit MSE",
                               "batch-32 latency (ms)"});
    for (const int64_t k : {16, 64, 256, 1024}) {
        dhe::DheConfig cfg;
        cfg.k = k;
        cfg.fc_hidden = {k / 2, k / 4};
        for (auto& h : cfg.fc_hidden) h = std::max<int64_t>(8, h);
        cfg.out_dim = dim;

        Rng rng(k);
        dhe::DheEmbedding dhe(cfg, rng);
        nn::Adam opt(dhe.Parameters(), 5e-3f);
        float mse = 0.0f;
        for (int step = 0; step < steps; ++step) {
            opt.ZeroGrad();
            Tensor out = dhe.Forward(ids);
            Tensor grad = out.Sub(target);
            mse = grad.SquaredNorm() / static_cast<float>(grad.numel());
            grad.ScaleInPlace(2.0f / static_cast<float>(grad.numel()));
            dhe.Backward(grad);
            opt.Step();
        }

        std::vector<int64_t> batch_ids(ids.begin(), ids.begin() + 32);
        const double ns = bench::TimeCallNs(
            [&] { (void)dhe.Forward(batch_ids); }, 1, 5);

        std::string decoder;
        for (int64_t h : cfg.fc_hidden) {
            decoder += std::to_string(h) + "-";
        }
        decoder += std::to_string(dim);
        table.AddRow({std::to_string(k), decoder,
                      std::to_string(cfg.DecoderParams()),
                      bench::TablePrinter::Num(mse, 4),
                      bench::TablePrinter::Ms(ns, 3)});
    }
    table.Print();
    std::printf(
        "\nReading: fit error falls (towards lossless) as k and the\n"
        "decoder grow while latency rises — the latency/quality knob the\n"
        "paper's Uniform/Varied sizing rules operate.\n");
    return 0;
}
