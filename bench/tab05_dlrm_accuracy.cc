/**
 * @file
 * Table V reproduction: DLRM accuracy parity — embedding table vs DHE
 * Uniform vs DHE Varied, trained end-to-end on the same CTR stream.
 *
 * The paper's claim: with properly sized DHE, accuracy matches the table
 * representation exactly (78.82% Kaggle / 80.96-80.97% Terabyte). The
 * absolute numbers depend on the dataset; the reproduced claim is that
 * all three representations train to the same accuracy on the same task.
 * A Kaggle-shaped model with scaled tables and a feature subset keeps
 * the run to seconds (--features/--scale/--steps to widen).
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "dhe/dhe.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "tensor/kernels/kernels.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t scale = args.GetInt("--scale", 10000);
    const int64_t features = args.GetInt("--features", 8);
    const int steps = static_cast<int>(args.GetInt("--steps", 400));
    const int batch = static_cast<int>(args.GetInt("--batch", 32));
    // The paper's Uniform DHE (k = 1024) is sized for 1e7-row tables;
    // with tables scaled 1e4x down the consistent "uniform" sizing is
    // scaled the same way (otherwise the bench trains a wildly
    // overparameterised decoder for seconds and reports noise, not the
    // paper's converged parity).
    const int64_t dhe_divisor = args.GetInt("--dhe-divisor", 8);

    dlrm::DlrmConfig cfg = dlrm::DlrmConfig::CriteoKaggle().Scaled(scale);
    cfg.table_sizes.resize(static_cast<size_t>(features));
    // Keep the MLPs small in proportion.
    cfg.bot_mlp = {64, 32, 16};
    cfg.top_mlp = {64};

    std::printf("=== Table V: DLRM accuracy parity (Kaggle-shaped, %ld "
                "features, tables/%ldx, %d steps) ===\n\n",
                features, scale, steps);

    bench::TablePrinter table(
        {"representation", "train loss", "test accuracy"});
    const std::vector<std::pair<const char*, dlrm::EmbeddingMode>> modes{
        {"Table", dlrm::EmbeddingMode::kTable},
        {"DHE Uniform", dlrm::EmbeddingMode::kDheUniform},
        {"DHE Varied", dlrm::EmbeddingMode::kDheVaried}};

    // Held-out accuracy on a fresh stream from the same ground truth.
    auto held_out_acc = [&](dlrm::TrainableDlrm& model) {
        dlrm::SyntheticCtrDataset test(cfg, 1);
        for (int skip = 0; skip < steps; ++skip) test.NextBatch(batch);
        float acc = 0.0f;
        const int eval_batches = 16;
        for (int e = 0; e < eval_batches; ++e) {
            acc += model.Evaluate(test.NextBatch(128)) / eval_batches;
        }
        return acc;
    };

    for (const auto& [name, mode] : modes) {
        Rng rng(100);
        dlrm::TrainableDlrm model(
            cfg, mode, rng,
            mode == dlrm::EmbeddingMode::kTable ? 1 : dhe_divisor);
        dlrm::SyntheticCtrDataset train(cfg, 1);
        nn::Adam opt(model.Parameters(), 3e-3f);
        float loss = 0.0f;
        for (int step = 0; step < steps; ++step) {
            loss = model.TrainStep(train.NextBatch(batch), opt);
        }
        table.AddRow({name, bench::TablePrinter::Num(loss, 4),
                      bench::TablePrinter::Num(100.0f * held_out_acc(model),
                                               2) +
                          "%"});

        // Low-precision inference parity (Table V extension): the same
        // trained DHE Uniform decoder served at bf16/int8, exercising
        // the quantize-on-pack kernel tier end to end. Training stays
        // f32; only the forward GEMM precision changes.
        if (mode == dlrm::EmbeddingMode::kDheUniform) {
            const std::vector<std::pair<const char*, kernels::Dtype>>
                precisions{{"DHE Uniform (bf16 inference)",
                            kernels::Dtype::kBf16},
                           {"DHE Uniform (int8 inference)",
                            kernels::Dtype::kInt8}};
            for (const auto& [pname, dtype] : precisions) {
                for (int64_t f = 0; f < features; ++f) {
                    model.dhe(f)->set_dtype(dtype);
                }
                table.AddRow({pname, bench::TablePrinter::Num(loss, 4),
                              bench::TablePrinter::Num(
                                  100.0f * held_out_acc(model), 2) +
                                  "%"});
            }
        }
    }
    table.Print();
    std::printf(
        "\nExpected (paper Table V): all three representations reach the\n"
        "same accuracy to within noise — DHE sized for no accuracy loss.\n"
        "The bf16/int8 rows serve the same trained decoder through the\n"
        "quantized kernel tier: accuracy parity shows precision is a\n"
        "latency knob, not part of the security or accuracy argument.\n");
    return 0;
}
