/**
 * @file
 * Fig. 14 reproduction: GPT perplexity during finetuning, token-embedding
 * table vs DHE.
 *
 * The paper finetunes GPT-2 medium on OpenWebText and reports a 2.7%
 * perplexity gap (14.6 table vs 15.0 DHE). Here a scaled-down GPT trains
 * from the same random initialisation schedule on the synthetic Markov
 * corpus; the claim under test is *parity of the curves*, not absolute
 * perplexity.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "llm/corpus.h"
#include "llm/gpt.h"
#include "tensor/kernels/kernels.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int steps = static_cast<int>(args.GetInt("--steps", 60));
    const int batch = static_cast<int>(args.GetInt("--batch", 8));
    const int64_t seq = args.GetInt("--seq", 24);

    llm::GptConfig cfg;
    cfg.vocab_size = args.GetInt("--vocab", 512);
    cfg.max_seq = 64;
    cfg.dim = 64;
    cfg.num_heads = 4;
    cfg.num_layers = 2;

    std::printf("=== Fig. 14: perplexity during finetuning, table vs DHE "
                "(vocab %ld, dim %ld, %d steps) ===\n\n",
                cfg.vocab_size, cfg.dim, steps);

    bench::TablePrinter table(
        {"step", "table perplexity", "DHE perplexity"});

    std::vector<float> final_ppl(2, 0.0f);
    std::vector<float> quant_ppl(2, 0.0f);  // DHE at bf16 / int8
    std::vector<std::vector<float>> curves(2);
    for (int which = 0; which < 2; ++which) {
        Rng rng(42);  // identical init schedule for the shared trunk
        llm::GptModel model(cfg,
                            which == 0 ? llm::TokenEmbMode::kTable
                                       : llm::TokenEmbMode::kDhe,
                            rng);
        llm::SyntheticCorpus train(cfg.vocab_size, 7);
        llm::SyntheticCorpus heldout(cfg.vocab_size, 7);
        // Burn the held-out stream forward so it differs from training.
        heldout.Sample(64, seq + 1);
        nn::Adam opt(model.Parameters(), 3e-3f);
        for (int step = 0; step <= steps; ++step) {
            if (step % 10 == 0) {
                const auto eval = heldout.Sample(batch, seq + 1);
                const float ppl = nn::Perplexity(
                    model.EvalLoss(eval, batch, seq));
                curves[static_cast<size_t>(which)].push_back(ppl);
                final_ppl[static_cast<size_t>(which)] = ppl;
            }
            if (step < steps) {
                const auto tokens = train.Sample(batch, seq + 1);
                model.TrainStep(tokens, batch, seq, opt);
            }
        }
        // Table V extension: the finetuned DHE embedding served at
        // bf16/int8 through the quantized kernel tier (training and the
        // table baseline stay f32). One shared eval batch isolates the
        // precision effect from sampling noise.
        if (which == 1) {
            const auto eval = heldout.Sample(batch, seq + 1);
            final_ppl[1] = nn::Perplexity(
                model.EvalLoss(eval, batch, seq));
            const kernels::Dtype dtypes[] = {kernels::Dtype::kBf16,
                                             kernels::Dtype::kInt8};
            for (int d = 0; d < 2; ++d) {
                model.token_dhe()->set_dtype(dtypes[d]);
                quant_ppl[static_cast<size_t>(d)] = nn::Perplexity(
                    model.EvalLoss(eval, batch, seq));
            }
            model.token_dhe()->set_dtype(kernels::Dtype::kF32);
        }
    }
    for (size_t i = 0; i < curves[0].size(); ++i) {
        table.AddRow({std::to_string(i * 10),
                      bench::TablePrinter::Num(curves[0][i], 2),
                      bench::TablePrinter::Num(curves[1][i], 2)});
    }
    table.Print();

    const float gap =
        100.0f * (final_ppl[1] - final_ppl[0]) / final_ppl[0];
    std::printf("\nfinal perplexity: table %.2f, DHE %.2f "
                "(DHE gap: %+.1f%%)\n", final_ppl[0], final_ppl[1], gap);
    std::printf("low-precision DHE inference: bf16 %.2f (%+.1f%%), "
                "int8 %.2f (%+.1f%%)\n", quant_ppl[0],
                100.0f * (quant_ppl[0] - final_ppl[1]) / final_ppl[1],
                quant_ppl[1],
                100.0f * (quant_ppl[1] - final_ppl[1]) / final_ppl[1]);
    std::printf(
        "\nExpected shape (paper Fig. 14): both curves fall together and\n"
        "converge to nearly the same perplexity (paper: 2.7%% gap after\n"
        "finetuning the *whole* model, which is what TrainStep does).\n");
    return 0;
}
