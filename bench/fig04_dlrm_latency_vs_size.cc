/**
 * @file
 * Fig. 4 reproduction: secure embedding generation latency vs table size
 * for DLRM (batch 32, 1 thread), embedding dims 16 and 64.
 *
 * Methods: Linear Scan, Path ORAM, Circuit ORAM, DHE Uniform, DHE Varied.
 * Default sweep tops out at 1e5 rows so the whole bench suite stays
 * fast on a small host; pass --max-size 1000000 (or more) to extend —
 * the O(n) vs O(log^2 n) vs O(1) shapes are already unambiguous at 1e5.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t max_size = args.GetInt("--max-size", 100000);
    const int batch = static_cast<int>(args.GetInt("--batch", 32));
    const int reps = static_cast<int>(args.GetInt("--reps", 3));

    std::printf("=== Fig. 4: embedding generation latency vs table size "
                "(batch %d, 1 thread) ===\n\n", batch);

    const std::vector<core::GenKind> kinds{
        core::GenKind::kLinearScan, core::GenKind::kPathOram,
        core::GenKind::kCircuitOram, core::GenKind::kDheUniform,
        core::GenKind::kDheVaried};

    for (const int64_t dim : {int64_t{16}, int64_t{64}}) {
        std::printf("--- embedding dim %ld ---\n", dim);
        std::vector<std::string> headers{"table size"};
        for (auto k : kinds) {
            headers.emplace_back(std::string(core::GenKindName(k)) +
                                 " (ms)");
        }
        bench::TablePrinter table(headers);

        for (int64_t size = 100; size <= max_size; size *= 10) {
            std::vector<std::string> row{std::to_string(size)};
            for (auto kind : kinds) {
                Rng rng(size + static_cast<int64_t>(kind));
                core::GeneratorOptions opt;
                opt.batch_size = batch;
                auto gen = core::MakeGenerator(kind, size, dim, rng, opt);
                Rng idx_rng(7);
                const double ns = profile::MeasureGeneratorLatencyNs(
                    *gen, batch, idx_rng, reps);
                row.push_back(bench::TablePrinter::Ms(ns, 3));
            }
            table.AddRow(row);
        }
        table.Print();
        std::printf("\n");
    }
    std::printf(
        "Expected shape (paper Fig. 4): scan/ORAM grow with table size\n"
        "(scan linearly, ORAM polylog); DHE flat; Varied < Uniform for\n"
        "small tables; scan fastest below a few thousand rows; Circuit\n"
        "ORAM fastest among storage-based protections at large sizes.\n");
    return 0;
}
