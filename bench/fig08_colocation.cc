/**
 * @file
 * Fig. 8 reproduction: per-model latency inflation as multiple copies of
 * one embedding-generation technique are co-located.
 *
 * The paper runs up to 24 co-located models on a 28-core Xeon. This host
 * is single-core, so single-model latencies are *measured* and the
 * co-location effect is applied with the documented contention model
 * (profile::ContentionModel, calibrated so memory-bound linear scan
 * suffers more interference than compute-bound DHE — the asymmetry the
 * paper's figure shows).
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t table_size = args.GetInt("--table-size", 16384);
    const int batch = 32;

    std::printf("=== Fig. 8: latency under increasing co-location "
                "(table %ld, dim 64, batch %d) ===\n\n",
                table_size, batch);

    Rng rng(1);
    auto scan =
        core::MakeGenerator(core::GenKind::kLinearScan, table_size, 64,
                            rng);
    auto dhe = core::MakeGenerator(core::GenKind::kDheUniform, table_size,
                                   64, rng);
    Rng idx(2);
    const double scan_ns =
        profile::MeasureGeneratorLatencyNs(*scan, batch, idx, 3);
    const double dhe_ns =
        profile::MeasureGeneratorLatencyNs(*dhe, batch, idx, 3);

    const profile::ContentionModel model;
    bench::TablePrinter table({"co-located copies",
                               "Linear Scan (ms)", "scan inflation",
                               "DHE (ms)", "DHE inflation"});
    for (int copies : {1, 2, 4, 8, 12, 16, 20, 24}) {
        const double s = model.Latency(scan_ns, copies, true);
        const double d = model.Latency(dhe_ns, copies, false);
        table.AddRow({std::to_string(copies),
                      bench::TablePrinter::Ms(s, 3),
                      bench::TablePrinter::Num(s / scan_ns, 2) + "x",
                      bench::TablePrinter::Ms(d, 3),
                      bench::TablePrinter::Num(d / dhe_ns, 2) + "x"});
    }
    table.Print();
    std::printf(
        "\nExpected shape (paper Fig. 8): both techniques slow down as\n"
        "co-location grows; the memory-bound linear scan degrades faster\n"
        "than compute-bound DHE.\n");
    return 0;
}
