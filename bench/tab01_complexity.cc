/**
 * @file
 * Table I validation: empirical scaling of the secure embedding
 * generation methods.
 *
 *   Linear scan : O(n) compute, O(n) memory
 *   Tree ORAM   : O(log^2 n) compute, O(n) memory
 *   DHE         : O(k^2) compute, O(k^2) memory — independent of n
 *
 * Measures per-lookup latency across a geometric table-size sweep and
 * reports the growth factor per 4x size step, which should approach 4x
 * for the scan, stay well below 2x for ORAM, and stay ~1x for DHE.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int reps = static_cast<int>(args.GetInt("--reps", 3));
    const std::vector<int64_t> sizes{1024, 4096, 16384, 65536};

    std::printf("=== Table I: complexity scaling validation (dim 64, "
                "per-lookup latency) ===\n\n");

    bench::TablePrinter table({"method", "1k (us)", "4k (us)", "16k (us)",
                               "64k (us)", "mean growth / 4x size"});
    for (auto kind :
         {core::GenKind::kLinearScan, core::GenKind::kCircuitOram,
          core::GenKind::kDheUniform}) {
        std::vector<double> lat;
        for (int64_t size : sizes) {
            Rng rng(size);
            auto gen = core::MakeGenerator(kind, size, 64, rng);
            Rng idx(1);
            lat.push_back(profile::MeasureGeneratorLatencyNs(
                *gen, /*batch=*/1, idx, reps));
        }
        double growth = 0.0;
        for (size_t i = 1; i < lat.size(); ++i) {
            growth += lat[i] / lat[i - 1];
        }
        growth /= static_cast<double>(lat.size() - 1);
        std::vector<std::string> row{
            std::string(core::GenKindName(kind))};
        for (double v : lat) {
            row.push_back(bench::TablePrinter::Num(v * 1e-3, 1));
        }
        row.push_back(bench::TablePrinter::Num(growth, 2) + "x");
        table.AddRow(row);
    }
    table.Print();

    std::printf("\nmemory-space scaling (footprint at each size, MB):\n");
    bench::TablePrinter mem({"method", "1k", "4k", "16k", "64k"});
    for (auto kind :
         {core::GenKind::kLinearScan, core::GenKind::kCircuitOram,
          core::GenKind::kDheUniform}) {
        std::vector<std::string> row{
            std::string(core::GenKindName(kind))};
        for (int64_t size : sizes) {
            Rng rng(size);
            auto gen = core::MakeGenerator(kind, size, 64, rng);
            row.push_back(
                bench::TablePrinter::Mb(gen->MemoryFootprintBytes(), 2));
        }
        mem.AddRow(row);
    }
    mem.Print();
    std::printf(
        "\nExpected (paper Table I): scan latency grows ~linearly (-> 4x\n"
        "per step at large sizes), ORAM polylogarithmically (<< 4x), DHE\n"
        "flat; scan/ORAM memory grows with n, DHE memory is constant.\n");
    return 0;
}
