/**
 * @file
 * Fig. 7 reproduction: which Criteo Kaggle / Terabyte tables fall below,
 * inside, or above the hybrid (ambiguous) threshold range.
 *
 * The paper: across all profiled execution configurations the threshold
 * spans a range; tables below that range always use linear scan, tables
 * above always use DHE, tables inside switch dynamically. For Kaggle,
 * 7/26 tables are always-DHE covering 99.7% of the table-representation
 * footprint; for Terabyte, 9/26.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util/bench_util.h"
#include "dlrm/config.h"
#include "profile/profiler.h"

using namespace secemb;

namespace {

void
Classify(const char* name, const dlrm::DlrmConfig& cfg, int64_t lo,
         int64_t hi)
{
    std::printf("--- %s (dim %ld): threshold range [%ld, %ld] ---\n",
                name, cfg.emb_dim, lo, hi);
    bench::TablePrinter table(
        {"table", "rows", "allocation"});
    int always_scan = 0, hybrid = 0, always_dhe = 0;
    int64_t total_bytes = 0, dhe_bytes = 0;
    for (size_t f = 0; f < cfg.table_sizes.size(); ++f) {
        const int64_t rows = cfg.table_sizes[f];
        const int64_t bytes = rows * cfg.emb_dim * 4;
        total_bytes += bytes;
        const char* alloc;
        if (rows < lo) {
            alloc = "always linear scan";
            ++always_scan;
        } else if (rows <= hi) {
            alloc = "HYBRID RANGE (dynamic)";
            ++hybrid;
        } else {
            alloc = "always DHE";
            ++always_dhe;
            dhe_bytes += bytes;
        }
        table.AddRow({std::to_string(f), std::to_string(rows), alloc});
    }
    table.Print();
    std::printf("always-scan: %d, hybrid-range: %d, always-DHE: %d "
                "(%.1f%% of table footprint)\n\n",
                always_scan, hybrid, always_dhe,
                100.0 * static_cast<double>(dhe_bytes) /
                    static_cast<double>(total_bytes));
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    std::printf("=== Fig. 7: dataset tables vs the hybrid threshold "
                "range ===\n\n");

    // Profile a threshold range across execution configurations.
    profile::ProfileConfig pcfg;
    pcfg.batch_sizes = {8, 32, 128};
    pcfg.thread_counts = {1, 2, 4};
    pcfg.table_sizes = {256, 1024, 4096, 16384, 65536};
    pcfg.dim = 64;
    pcfg.reps = static_cast<int>(args.GetInt("--reps", 2));
    Rng rng(1);
    const auto result = profile::ProfileThresholds(pcfg, rng);
    int64_t lo = result.thresholds.entries().front().table_size_threshold;
    int64_t hi = lo;
    for (const auto& e : result.thresholds.entries()) {
        lo = std::min(lo, e.table_size_threshold);
        hi = std::max(hi, e.table_size_threshold);
    }

    Classify("Criteo Kaggle", dlrm::DlrmConfig::CriteoKaggle(), lo, hi);
    Classify("Criteo Terabyte", dlrm::DlrmConfig::CriteoTerabyte(), lo,
             hi);
    std::printf(
        "Expected shape (paper Fig. 7): a handful of giant tables are\n"
        "always-DHE and dominate the table-representation footprint\n"
        "(99.7%% in the paper); a few mid-size tables sit in the dynamic\n"
        "hybrid range; the rest always use linear scan.\n");
    return 0;
}
