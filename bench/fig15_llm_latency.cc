/**
 * @file
 * Fig. 15 (table) reproduction: GPT prefill (TTFT) and decode (TBT)
 * latency per embedding-generation technique and inference batch size.
 *
 * Paper setting: GPT-2 medium, prompt 256, decode 128, batches
 * {1, 8, 12}, 16 threads. Bench-scale defaults keep the real 50257
 * vocabulary but shrink the transformer (dim 256, 4 layers), prompt and
 * decode lengths (--prompt/--decode/--vocab/--dim to override): the
 * comparison under test is *between embedding techniques* on an
 * identical trunk, which the scaling preserves.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dhe/dhe.h"
#include "llm/gpt.h"
#include "oram/footprint.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t vocab = args.GetInt("--vocab", 50257);
    const int64_t dim = args.GetInt("--dim", 256);
    const int64_t prompt_len = args.GetInt("--prompt", 48);
    const int64_t decode_len = args.GetInt("--decode", 8);

    llm::GptConfig cfg = llm::GptConfig::BenchScale(dim, vocab, 4);
    cfg.max_seq = prompt_len + decode_len + 8;

    std::printf("=== Fig. 15: GPT prefill/decode latency per technique "
                "(vocab %ld, dim %ld, prompt %ld, decode %ld) ===\n\n",
                vocab, dim, prompt_len, decode_len);

    const std::vector<core::GenKind> kinds{
        core::GenKind::kIndexLookup, core::GenKind::kLinearScan,
        core::GenKind::kPathOram, core::GenKind::kCircuitOram,
        core::GenKind::kDheUniform};

    for (const int batch : {1, 4}) {
        std::printf("--- inference batch %d (embedding batch %ld at "
                    "prefill) ---\n", batch, batch * prompt_len);
        bench::TablePrinter table({"method", "Prefill/TTFT (ms)",
                                   "Decode/TBT (ms)"});
        for (auto kind : kinds) {
            Rng rng(static_cast<uint64_t>(kind) * 13 + batch);
            core::GeneratorOptions opt;
            opt.batch_size = batch;
            auto gen = core::MakeGenerator(
                kind == core::GenKind::kDheUniform
                    ? core::GenKind::kDheUniform
                    : kind,
                vocab, dim, rng, opt);
            if (kind == core::GenKind::kDheUniform) {
                // Paper LLM sizing: k = FC widths = 2 * dim, 4 layers.
                core::GeneratorOptions dopt;
                dopt.dhe = std::make_shared<dhe::DheEmbedding>(
                    dhe::DheConfig::ForLlm(dim), rng);
                gen = core::MakeGenerator(core::GenKind::kDheUniform,
                                          vocab, dim, rng, dopt);
            }
            Rng mlp_rng(777);  // same trunk weights for all methods
            llm::SecureGpt model(cfg, std::move(gen), mlp_rng);

            std::vector<std::vector<int64_t>> prompts(
                static_cast<size_t>(batch));
            Rng prng(5);
            for (auto& p : prompts) {
                for (int64_t t = 0; t < prompt_len; ++t) {
                    p.push_back(static_cast<int64_t>(
                        prng.NextBounded(static_cast<uint64_t>(vocab))));
                }
            }

            bench::WallTimer timer;
            Tensor logits = model.Prefill(prompts);
            const double ttft_ns = timer.ElapsedNs();

            timer.Reset();
            for (int64_t s = 0; s < decode_len; ++s) {
                const auto next = model.GreedyTokens(logits);
                logits = model.DecodeStep(next);
            }
            const double tbt_ns = timer.ElapsedNs() / decode_len;

            table.AddRow({std::string(core::GenKindName(kind)),
                          bench::TablePrinter::Ms(ttft_ns, 1),
                          bench::TablePrinter::Ms(tbt_ns, 2)});
        }
        table.Print();
        std::printf("\n");
    }
    // --- Section VI-D3: token-embedding memory at GPT-2-medium scale,
    //     computed closed-form (the paper: table 196.3 MB, DHE +56 MB on
    //     a 1353.5 MB model = 4%, ORAM representation 513.6 MB = +38%).
    {
        const int64_t medium_vocab = 50257, medium_dim = 1024;
        const int64_t table_bytes = medium_vocab * medium_dim * 4;
        const dhe::DheConfig dc = dhe::DheConfig::ForLlm(medium_dim);
        const int64_t dhe_bytes = dc.DecoderParams() * 4 + dc.k * 16;
        const int64_t oram_bytes = oram::EstimateFootprintBytes(
            oram::OramKind::kCircuit, medium_vocab, medium_dim);
        const double model_mb = 1353.5;  // GPT-2 medium parameters
        std::printf("token-embedding memory at GPT-2-medium scale:\n"
                    "  table %.1f MB | DHE %.1f MB (%.1f%% of model) | "
                    "Circuit ORAM %.1f MB (+%.0f%% over table)\n\n",
                    table_bytes / 1048576.0, dhe_bytes / 1048576.0,
                    100.0 * (dhe_bytes / 1048576.0) / model_mb,
                    oram_bytes / 1048576.0,
                    100.0 * (static_cast<double>(oram_bytes) /
                                 table_bytes -
                             1.0));
    }
    std::printf(
        "Expected shape (paper Fig. 15): DHE matches the non-secure\n"
        "lookup to within a few %% and beats Circuit ORAM at prefill\n"
        "(up to 1.32x) and at decode for larger batches (up to 1.07x);\n"
        "Circuit ORAM keeps a slight decode edge only at batch 1; Path\n"
        "ORAM and linear scan are uncompetitive.\n");
    return 0;
}
