/**
 * @file
 * Fig. 13 reproduction: latency-throughput curves under increasing model
 * co-location, DHE Varied vs Hybrid Varied (Criteo Terabyte shape,
 * scaled tables), plus the latency-bounded throughput at the paper's
 * 20 ms SLA.
 *
 * Single-model end-to-end latency is measured; fleet contention uses the
 * documented ContentionModel (see fig08_colocation.cc). Throughput =
 * copies x batch / latency.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t scale = args.GetInt("--scale", 200);
    const int batch = static_cast<int>(args.GetInt("--batch", 32));
    // The paper's SLA is 20 ms on a 28-core Xeon; on this host the SLA
    // is placed at the same *relative* position (20%% above the pure-DHE
    // single-model latency) unless overridden.
    double sla_ms = args.GetDouble("--sla-ms", -1.0);

    const dlrm::DlrmConfig cfg =
        dlrm::DlrmConfig::CriteoTerabyte().Scaled(scale);
    std::printf("=== Fig. 13: co-located latency-throughput "
                "(Terabyte/%ldx, batch %d) ===\n\n", scale, batch);

    // Offline profiling (Algorithm 2) before building hybrids.
    Rng prof_rng(99);
    const core::ThresholdTable thresholds = profile::QuickThresholds(
        batch, 1, cfg.emb_dim, /*varied_dhe=*/true, prof_rng);

    // Measure single-model latency for both schemes.
    auto measure = [&](core::GenKind kind) {
        Rng rng(static_cast<uint64_t>(kind) + 31);
        std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
        core::GeneratorOptions opt;
        opt.batch_size = batch;
        opt.thresholds = &thresholds;
        for (int64_t s : cfg.table_sizes) {
            gens.push_back(
                core::MakeGenerator(kind, s, cfg.emb_dim, rng, opt));
        }
        Rng mlp_rng(12);
        dlrm::SecureDlrm model(cfg, std::move(gens), mlp_rng);
        dlrm::SyntheticCtrDataset src(cfg, 5);
        const dlrm::CtrBatch data = src.NextBatch(batch);
        // Embedding layers only: with tables scaled down, the fixed MLP
        // cost would otherwise bury the embedding-technique difference
        // that the co-location study is about.
        return bench::TimeCallNs(
            [&] { model.EmbeddingLayersOnly(data.sparse); }, 1, 5);
    };
    const double dhe_ns = measure(core::GenKind::kDheVaried);
    const double hybrid_ns = measure(core::GenKind::kHybridVaried);
    if (sla_ms < 0.0) sla_ms = 1.2 * dhe_ns * 1e-6;
    std::printf("single-model latency: DHE Varied %.2f ms, Hybrid Varied "
                "%.2f ms; SLA %.2f ms\n\n",
                dhe_ns * 1e-6, hybrid_ns * 1e-6, sla_ms);

    const profile::ContentionModel model;
    bench::TablePrinter table(
        {"copies", "DHE Varied lat (ms)", "DHE tput (inf/s)",
         "Hybrid Varied lat (ms)", "Hybrid tput (inf/s)"});
    double dhe_best_tput = 0, hybrid_best_tput = 0;
    for (int copies : {1, 4, 8, 12, 16, 20, 24}) {
        // Hybrid models mix scan (memory-bound) and DHE layers; treat the
        // hybrid fleet as half memory-bound for contention purposes.
        const double d = model.Latency(dhe_ns, copies, false);
        const double h =
            0.5 * (model.Latency(hybrid_ns, copies, true) +
                   model.Latency(hybrid_ns, copies, false));
        const double d_tput = copies * batch / (d * 1e-9);
        const double h_tput = copies * batch / (h * 1e-9);
        if (d * 1e-6 <= sla_ms) dhe_best_tput = std::max(dhe_best_tput, d_tput);
        if (h * 1e-6 <= sla_ms) {
            hybrid_best_tput = std::max(hybrid_best_tput, h_tput);
        }
        table.AddRow({std::to_string(copies),
                      bench::TablePrinter::Ms(d, 2),
                      bench::TablePrinter::Num(d_tput, 0),
                      bench::TablePrinter::Ms(h, 2),
                      bench::TablePrinter::Num(h_tput, 0)});
    }
    table.Print();
    std::printf("\nlatency-bounded throughput at %.0f ms SLA: "
                "DHE Varied %.0f inf/s, Hybrid Varied %.0f inf/s "
                "(%.2fx)\n",
                sla_ms, dhe_best_tput, hybrid_best_tput,
                dhe_best_tput > 0 ? hybrid_best_tput / dhe_best_tput
                                  : 0.0);
    std::printf(
        "\nExpected shape (paper Fig. 13): the hybrid's lower single-\n"
        "model latency translates into higher latency-bounded throughput\n"
        "(1.4x for Terabyte in the paper).\n");
    return 0;
}
