/**
 * @file
 * Ablation: scalar vs SIMD-blend oblivious linear scan.
 *
 * The paper implements its linear scan with AVX-512 masked blends
 * (Section V-A2). This compares the scalar constant-time scan against
 * the vector-extension blend path for the embedding dims the paper uses;
 * both are branchless, the vector path just moves more bytes per select.
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "oblivious/scan.h"
#include "oblivious/vector_scan.h"
#include "tensor/tensor.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t rows = args.GetInt("--rows", 16384);

    std::printf("=== Ablation: oblivious scan vectorisation (%ld rows) "
                "===\n\n", rows);

    bench::TablePrinter table({"emb dim", "scalar scan (ms)",
                               "SIMD blend scan (ms)", "speed-up",
                               "GB/s (SIMD)"});
    for (const int64_t dim : {int64_t{16}, int64_t{64}, int64_t{256}}) {
        Rng rng(dim);
        const Tensor t = Tensor::Randn({rows, dim}, rng);
        std::vector<float> out(static_cast<size_t>(dim));
        int64_t idx = rows / 2;

        const double scalar_ns = bench::TimeCallNs(
            [&] {
                oblivious::LinearScanLookup(t.flat(), rows, dim, idx,
                                            out);
            },
            2, 10);
        const double simd_ns = bench::TimeCallNs(
            [&] {
                oblivious::LinearScanLookupVec(t.flat(), rows, dim, idx,
                                               out);
            },
            2, 10);
        const double gbs =
            static_cast<double>(rows * dim * 4) / simd_ns;
        table.AddRow({std::to_string(dim),
                      bench::TablePrinter::Ms(scalar_ns, 3),
                      bench::TablePrinter::Ms(simd_ns, 3),
                      bench::TablePrinter::Num(scalar_ns / simd_ns, 2) +
                          "x",
                      bench::TablePrinter::Num(gbs, 2)});
    }
    table.Print();
    std::printf(
        "\nReading: the blend-based SIMD path is what makes linear scan\n"
        "competitive for small tables (the left side of Fig. 4) — the\n"
        "same role AVX-512 plays in the paper's implementation.\n");
    return 0;
}
