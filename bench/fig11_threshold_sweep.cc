/**
 * @file
 * Fig. 11 reproduction: end-to-end DLRM latency as the hybrid allocation
 * threshold sweeps from "everything on DHE" to "everything on linear
 * scan" (Hybrid Varied, Criteo Kaggle shape).
 *
 * Tables are sorted by size; a sweep value of k puts the k smallest
 * tables on linear scan and the rest on DHE. The profiled threshold
 * (Algorithm 2) should land at or next to the empirically best k — the
 * paper reports an exact match for this configuration and <= +-1 table
 * for ~85% of configurations.
 *
 * Table sizes are scaled down (default 100x, --scale to change) so the
 * sweep finishes quickly; the size *spectrum* is preserved.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t scale = args.GetInt("--scale", 100);
    const int batch = static_cast<int>(args.GetInt("--batch", 32));

    const dlrm::DlrmConfig cfg =
        dlrm::DlrmConfig::CriteoKaggle().Scaled(scale);
    std::printf("=== Fig. 11: end-to-end latency vs hybrid threshold "
                "sweep (Kaggle/%ldx, batch %d) ===\n\n", scale, batch);

    // Feature order sorted by table size: k smallest -> linear scan.
    std::vector<size_t> order(cfg.table_sizes.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return cfg.table_sizes[a] < cfg.table_sizes[b];
    });

    // Shared trained-DHE stand-ins (random weights; latency-only study).
    std::vector<std::shared_ptr<dhe::DheEmbedding>> dhes;
    Rng rng(1);
    for (int64_t s : cfg.table_sizes) {
        dhes.push_back(std::make_shared<dhe::DheEmbedding>(
            dhe::DheConfig::Varied(s, cfg.emb_dim), rng));
    }

    dlrm::SyntheticCtrDataset data_src(cfg, 2);
    const dlrm::CtrBatch data = data_src.NextBatch(batch);

    bench::TablePrinter table({"# tables on linear scan",
                               "end-to-end latency (ms)"});
    double best_ms = 1e30;
    int best_k = -1;
    for (int k = 0; k <= static_cast<int>(cfg.table_sizes.size());
         k += 2) {
        std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens(
            cfg.table_sizes.size());
        for (size_t pos = 0; pos < order.size(); ++pos) {
            const size_t f = order[pos];
            if (static_cast<int>(pos) < k) {
                gens[f] = std::make_unique<core::LinearScanTable>(
                    dhes[f]->ToTable(cfg.table_sizes[f]));
            } else {
                gens[f] = std::make_unique<core::DheGenerator>(
                    dhes[f], cfg.table_sizes[f]);
            }
        }
        Rng mlp_rng(3);
        dlrm::SecureDlrm model(cfg, std::move(gens), mlp_rng);
        const double ns = bench::TimeCallNs(
            [&] { model.Inference(data.dense, data.sparse); }, 1, 3);
        table.AddRow({std::to_string(k),
                      bench::TablePrinter::Ms(ns, 3)});
        if (ns * 1e-6 < best_ms) {
            best_ms = ns * 1e-6;
            best_k = k;
        }
    }
    table.Print();

    // What would the profiled threshold have chosen?
    profile::ProfileConfig pcfg;
    pcfg.batch_sizes = {batch};
    pcfg.thread_counts = {1};
    pcfg.table_sizes = {64, 256, 1024, 4096, 16384};
    pcfg.dim = cfg.emb_dim;
    pcfg.reps = 2;
    pcfg.varied_dhe = true;
    Rng prng(4);
    const auto prof = profile::ProfileThresholds(pcfg, prng);
    const int64_t threshold = prof.thresholds.Lookup(batch, 1);
    int profiled_k = 0;
    for (size_t pos = 0; pos < order.size(); ++pos) {
        if (cfg.table_sizes[order[pos]] < threshold) {
            profiled_k = static_cast<int>(pos) + 1;
        }
    }
    std::printf("\nbest empirical allocation: %d tables on scan "
                "(%.3f ms)\nprofiled threshold %ld rows -> %d tables on "
                "scan\n", best_k, best_ms, threshold, profiled_k);
    std::printf(
        "\nExpected shape (paper Fig. 11): a U-ish curve — all-DHE pays\n"
        "for tiny tables, all-scan pays for big ones; the profiled\n"
        "threshold lands at or near the empirical minimum.\n");
    return 0;
}
