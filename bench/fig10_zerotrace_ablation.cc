/**
 * @file
 * Fig. 10 reproduction: single-lookup latency of Path and Circuit ORAM
 * under the three ZeroTrace deployment variants (paper Section V-A1):
 *
 *   ZT-Original    : tree outside the enclave (modelled ocall per path
 *                    operation), non-inlined oblivious select, no posmap
 *                    recursion (flat scanned map).
 *   ZT-Gramine     : tree inside the large EPC (no ocalls), still
 *                    non-inlined select and no recursion.
 *   ZT-Gramine-Opt : select inlined and recursion enabled.
 *
 * The inlining and recursion effects are real code paths; only the
 * enclave-crossing cost is modelled (default 8 us per crossing, the
 * commonly reported SGX ocall round trip; override with --ocall-ns).
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/table_generators.h"
#include "profile/profiler.h"
#include "tee/tee_model.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const double ocall_ns = args.GetDouble("--ocall-ns", 8000.0);
    const int64_t dim = 64;
    const std::vector<int64_t> sizes{1 << 13, 1 << 15, 1 << 17};

    std::printf("=== Fig. 10: ZeroTrace deployment ablation (single "
                "lookup, dim %ld, ocall %.0f ns) ===\n\n", dim, ocall_ns);

    for (auto kind : {oram::OramKind::kPath, oram::OramKind::kCircuit}) {
        std::printf("--- %s ORAM ---\n",
                    kind == oram::OramKind::kPath ? "Path" : "Circuit");
        bench::TablePrinter table({"table size", "ZT-Original (ms)",
                                   "ZT-Gramine (ms)",
                                   "ZT-Gramine-Opt (ms)",
                                   "Gramine vs Orig", "Opt vs Gramine"});
        for (int64_t size : sizes) {
            std::vector<double> lat;
            for (auto variant :
                 {tee::ZtVariant::kOriginal, tee::ZtVariant::kGramine,
                  tee::ZtVariant::kGramineOpt}) {
                Rng rng(size + static_cast<int64_t>(variant));
                oram::OramParams params = oram::OramParams::Defaults(kind);
                params.ApplyTeeModel(
                    tee::TeeCostModel::ForVariant(variant, ocall_ns));
                const Tensor t = Tensor::Randn({size, dim}, rng);
                core::OramTable gen(t, kind, rng, &params);
                Rng idx(7);
                lat.push_back(profile::MeasureGeneratorLatencyNs(
                    gen, /*batch=*/1, idx, 5));
            }
            table.AddRow(
                {std::to_string(size), bench::TablePrinter::Ms(lat[0], 3),
                 bench::TablePrinter::Ms(lat[1], 3),
                 bench::TablePrinter::Ms(lat[2], 3),
                 bench::TablePrinter::Num(
                     100.0 * (lat[1] / lat[0] - 1.0), 0) + "%",
                 bench::TablePrinter::Num(
                     100.0 * (lat[2] / lat[1] - 1.0), 0) + "%"});
        }
        table.Print();
        std::printf("\n");
    }
    std::printf(
        "Expected shape (paper Fig. 10): moving the tree inside the\n"
        "enclave (Gramine) removes the ocall cost; inlining the oblivious\n"
        "select and enabling posmap recursion (Opt) cuts latency again —\n"
        "the paper reports 20%%/60%% then 29%%/54%% for Path/Circuit.\n");
    return 0;
}
