/**
 * @file
 * Counter/model cross-check: do the simulated cache model and the real
 * hardware agree about *relative* memory cost?
 *
 * For each oblivious subject (linear scan, DHE, Path ORAM) the bench
 * sweeps table sizes, and per size measures the same generation batch two
 * ways:
 *
 *   simulated  — record the address trace, replay it line-by-line through
 *                sidechannel::CacheModel, count hits/misses, and price
 *                them with the model's hit/miss latencies;
 *   hardware   — run the identical batch under a perfmon::CounterGroup
 *                and read the LLC-miss counter (plus wall time).
 *
 * It then reports the Pearson correlation across the sweep. A high
 * correlation says the model's miss accounting tracks the machine, which
 * is the empirical footing for every model-based conclusion in the repo
 * (the Fig. 3 attack, the footprint planner's latency estimates).
 *
 * On hosts without hardware counters (perf_event_paranoid, containers,
 * non-Linux) the LLC column is reported unavailable and the check falls
 * back to correlating the model's *priced* latency against measured wall
 * time — weaker, but still a trend check — and exits 0: availability is a
 * property of the host, not a bench failure.
 *
 *   $ ./perf01_xcheck [--dim D] [--batch B] [--reps R] [--json out.json]
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "core/factory.h"
#include "perfmon/perfmon.h"
#include "sidechannel/cache_model.h"
#include "sidechannel/trace.h"
#include "tensor/rng.h"

using namespace secemb;

namespace {

struct SimCost
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    double priced_ns = 0.0;
};

/** Replay a trace line-by-line, counting hits and misses. */
SimCost
SimulateTrace(const std::vector<sidechannel::MemoryAccess>& trace)
{
    sidechannel::CacheConfig cache_cfg;
    sidechannel::CacheModel cache(cache_cfg);
    SimCost cost;
    const uint64_t line = static_cast<uint64_t>(cache_cfg.line_bytes);
    for (const auto& a : trace) {
        const uint64_t first = cache.LineAddr(a.addr);
        const uint64_t last = cache.LineAddr(a.addr + a.size - 1);
        for (uint64_t addr = first; addr <= last; addr += line) {
            if (cache.Access(addr)) {
                ++cost.hits;
            } else {
                ++cost.misses;
            }
        }
    }
    cost.priced_ns = static_cast<double>(cost.hits) * cache_cfg.hit_ns +
                     static_cast<double>(cost.misses) * cache_cfg.miss_ns;
    return cost;
}

struct MeasuredCost
{
    double wall_ns = 0.0;
    uint64_t llc_misses = 0;
    bool llc_available = false;
};

/** Run `reps` generation batches under a counter group; averages/rep. */
MeasuredCost
MeasureHardware(core::EmbeddingGenerator& gen,
                const std::vector<int64_t>& ids, Tensor& out, int reps)
{
    gen.Generate(ids, out);  // warm the model state and code paths
    perfmon::CounterGroup counters;
    const perfmon::Sample begin = counters.Read();
    bench::WallTimer timer;
    for (int r = 0; r < reps; ++r) gen.Generate(ids, out);
    const double wall = timer.ElapsedNs();
    const perfmon::Sample end = counters.Read();
    const perfmon::Sample delta = perfmon::Sample::Delta(begin, end);

    MeasuredCost m;
    m.wall_ns = wall / reps;
    m.llc_available = delta.has(perfmon::Event::kLlcMisses);
    if (m.llc_available) {
        m.llc_misses = delta[perfmon::Event::kLlcMisses] /
                       static_cast<uint64_t>(reps);
    }
    return m;
}

double
Pearson(const std::vector<double>& x, const std::vector<double>& y)
{
    const size_t n = x.size();
    if (n < 2 || y.size() != n) return 0.0;
    double mx = 0.0, my = 0.0;
    for (size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx <= 0.0 || syy <= 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t dim = args.GetInt("--dim", 16);
    const int batch = static_cast<int>(args.GetInt("--batch", 8));
    const int reps = static_cast<int>(args.GetInt("--reps", 5));
    const std::string json_path = args.GetString("--json");

    const bool hw = perfmon::HardwareCountersAvailable();
    std::printf("=== perf01: cache model vs hardware counters ===\n");
    std::printf("counters: %s\n",
                perfmon::AvailabilitySummary().c_str());

    const std::vector<int64_t> sizes{256, 1024, 4096};
    const std::vector<std::pair<std::string, core::GenKind>> subjects{
        {"linear_scan", core::GenKind::kLinearScan},
        {"dhe", core::GenKind::kDheUniform},
        {"path_oram", core::GenKind::kPathOram},
    };

    bench::BenchReport report("perf01_xcheck");
    bench::TablePrinter table({"subject", "rows", "sim misses",
                               "model ns", hw ? "LLC misses" : "LLC (n/a)",
                               "wall us"});

    bool all_correlated = true;
    for (const auto& [name, kind] : subjects) {
        std::vector<double> sim_misses, model_ns, hw_misses, wall_ns;
        for (const int64_t rows : sizes) {
            Rng rng(23);
            core::GeneratorOptions opts;
            opts.batch_size = batch;
            auto gen = core::MakeGenerator(kind, rows, dim, rng, opts);

            std::vector<int64_t> ids(static_cast<size_t>(batch));
            Rng wl(41);
            for (auto& id : ids) {
                id = static_cast<int64_t>(wl.NextBounded(rows));
            }
            Tensor out({static_cast<int64_t>(batch), dim});

            sidechannel::TraceRecorder rec;
            gen->set_recorder(&rec);
            gen->Generate(ids, out);
            gen->set_recorder(nullptr);
            const SimCost sim = SimulateTrace(rec.trace());

            const MeasuredCost m = MeasureHardware(*gen, ids, out, reps);

            sim_misses.push_back(static_cast<double>(sim.misses));
            model_ns.push_back(sim.priced_ns);
            wall_ns.push_back(m.wall_ns);
            if (m.llc_available) {
                hw_misses.push_back(static_cast<double>(m.llc_misses));
            }

            table.AddRow(
                {name, std::to_string(rows), std::to_string(sim.misses),
                 bench::TablePrinter::Num(sim.priced_ns, 0),
                 m.llc_available ? std::to_string(m.llc_misses)
                                 : std::string("-"),
                 bench::TablePrinter::Num(m.wall_ns * 1e-3, 1)});
        }

        // Primary check: simulated misses vs hardware LLC misses.
        // Fallback: model-priced latency vs wall time.
        const bool used_hw = hw_misses.size() == sizes.size();
        const double corr = used_hw ? Pearson(sim_misses, hw_misses)
                                    : Pearson(model_ns, wall_ns);
        std::printf("%-12s correlation (%s): %.3f\n", name.c_str(),
                    used_hw ? "sim misses vs LLC misses"
                            : "model ns vs wall ns",
                    corr);
        all_correlated &= corr > 0.5;

        auto& res = report.AddResult("xcheck/" + name);
        res.num_params.emplace_back("dim", static_cast<double>(dim));
        res.num_params.emplace_back("batch", static_cast<double>(batch));
        res.num_params.emplace_back("correlation", corr);
        res.str_params.emplace_back("hw_available",
                                    used_hw ? "yes" : "no");
        res.str_params.emplace_back(
            "correlated_signal",
            used_hw ? "llc_misses" : "wall_time");
        res.latency = bench::LatencyStats::FromSamples(wall_ns);
        res.counters.emplace_back(
            "sim_misses_total",
            static_cast<uint64_t>(sim_misses.back()));
    }
    table.Print();

    std::printf("\nReading: the model is a *relative* cost oracle — "
                "correlation, not equality,\nis the claim. Low "
                "correlation on a quiet machine with real LLC counters\n"
                "would mean model-based latency conclusions need "
                "re-examination.\n");
    if (!all_correlated) {
        std::printf("WARNING: at least one subject correlated < 0.5 "
                    "(noisy host or model drift).\n");
    }

    if (!json_path.empty() && !report.WriteTo(json_path)) {
        std::fprintf(stderr, "perf01: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    // Counter availability is a host property, never a failure.
    return 0;
}
