/**
 * @file
 * Google-benchmark microbenchmarks for the primitives every scheme is
 * built from: constant-time selects, oblivious scans, hash encoding,
 * bucket encryption, and single ORAM accesses. These are the unit costs
 * behind every figure; regressions here shift every curve.
 */

#include <benchmark/benchmark.h>

#include "dhe/hashing.h"
#include "oblivious/ct_ops.h"
#include "oblivious/scan.h"
#include "oram/crypto.h"
#include "oram/tree_oram.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb {
namespace {

void
BM_SelectInline(benchmark::State& state)
{
    uint64_t acc = 1;
    for (auto _ : state) {
        acc = oblivious::Select(oblivious::EqMask(acc & 1, 1), acc + 1,
                                acc + 2);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SelectInline);

void
BM_SelectNoInline(benchmark::State& state)
{
    uint64_t acc = 1;
    for (auto _ : state) {
        acc = oblivious::SelectNoInline(
            oblivious::EqMask(acc & 1, 1), acc + 1, acc + 2);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SelectNoInline);

void
BM_LinearScanLookup(benchmark::State& state)
{
    const int64_t rows = state.range(0), cols = 64;
    Rng rng(1);
    const Tensor table = Tensor::Randn({rows, cols}, rng);
    std::vector<float> out(static_cast<size_t>(cols));
    int64_t idx = 0;
    for (auto _ : state) {
        oblivious::LinearScanLookup(table.flat(), rows, cols,
                                    idx++ % rows, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * rows * cols * 4);
}
BENCHMARK(BM_LinearScanLookup)->Arg(1024)->Arg(16384);

void
BM_ObliviousArgmax(benchmark::State& state)
{
    Rng rng(2);
    const Tensor v = Tensor::Randn({state.range(0)}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(oblivious::ObliviousArgmax(v.flat()));
    }
}
BENCHMARK(BM_ObliviousArgmax)->Arg(50257);

void
BM_HashEncode(benchmark::State& state)
{
    Rng rng(3);
    dhe::HashEncoder enc(state.range(0), 1000000, rng);
    std::vector<int64_t> ids(32);
    for (size_t i = 0; i < ids.size(); ++i) {
        ids[i] = static_cast<int64_t>(i * 977);
    }
    Tensor out({32, state.range(0)});
    for (auto _ : state) {
        enc.Encode(ids, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_HashEncode)->Arg(128)->Arg(1024);

void
BM_BucketCipher(benchmark::State& state)
{
    oram::BucketCipher cipher(42);
    std::vector<uint32_t> words(static_cast<size_t>(state.range(0)));
    uint64_t version = 0;
    for (auto _ : state) {
        cipher.Apply(3, ++version, words);
        benchmark::DoNotOptimize(words.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_BucketCipher)->Arg(256);

void
BM_OramAccess(benchmark::State& state)
{
    const auto kind = state.range(0) == 0 ? oram::OramKind::kPath
                                          : oram::OramKind::kCircuit;
    Rng rng(4);
    auto oram = oram::MakeOram(kind, 16384, 64, rng);
    std::vector<uint32_t> out(64);
    int64_t id = 0;
    for (auto _ : state) {
        oram->Read(id++ % 16384, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_OramAccess)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"kind(0=Path,1=Circuit)"});

}  // namespace
}  // namespace secemb

BENCHMARK_MAIN();
