/**
 * @file
 * Google-benchmark microbenchmarks for the primitives every scheme is
 * built from: constant-time selects, oblivious scans, hash encoding,
 * bucket encryption, and single ORAM accesses. These are the unit costs
 * behind every figure; regressions here shift every curve.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/json.h"
#include "dhe/hashing.h"
#include "oblivious/ct_ops.h"
#include "oblivious/scan.h"
#include "oram/crypto.h"
#include "oram/tree_oram.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb {
namespace {

void
BM_SelectInline(benchmark::State& state)
{
    uint64_t acc = 1;
    for (auto _ : state) {
        acc = oblivious::Select(oblivious::EqMask(acc & 1, 1), acc + 1,
                                acc + 2);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SelectInline);

void
BM_SelectNoInline(benchmark::State& state)
{
    uint64_t acc = 1;
    for (auto _ : state) {
        acc = oblivious::SelectNoInline(
            oblivious::EqMask(acc & 1, 1), acc + 1, acc + 2);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SelectNoInline);

void
BM_LinearScanLookup(benchmark::State& state)
{
    const int64_t rows = state.range(0), cols = 64;
    Rng rng(1);
    const Tensor table = Tensor::Randn({rows, cols}, rng);
    std::vector<float> out(static_cast<size_t>(cols));
    int64_t idx = 0;
    for (auto _ : state) {
        oblivious::LinearScanLookup(table.flat(), rows, cols,
                                    idx++ % rows, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * rows * cols * 4);
}
BENCHMARK(BM_LinearScanLookup)->Arg(1024)->Arg(16384);

void
BM_ObliviousArgmax(benchmark::State& state)
{
    Rng rng(2);
    const Tensor v = Tensor::Randn({state.range(0)}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(oblivious::ObliviousArgmax(v.flat()));
    }
}
BENCHMARK(BM_ObliviousArgmax)->Arg(50257);

void
BM_HashEncode(benchmark::State& state)
{
    Rng rng(3);
    dhe::HashEncoder enc(state.range(0), 1000000, rng);
    std::vector<int64_t> ids(32);
    for (size_t i = 0; i < ids.size(); ++i) {
        ids[i] = static_cast<int64_t>(i * 977);
    }
    Tensor out({32, state.range(0)});
    for (auto _ : state) {
        enc.Encode(ids, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_HashEncode)->Arg(128)->Arg(1024);

void
BM_BucketCipher(benchmark::State& state)
{
    oram::BucketCipher cipher(42);
    std::vector<uint32_t> words(static_cast<size_t>(state.range(0)));
    uint64_t version = 0;
    for (auto _ : state) {
        cipher.Apply(3, ++version, words);
        benchmark::DoNotOptimize(words.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_BucketCipher)->Arg(256);

void
BM_OramAccess(benchmark::State& state)
{
    const auto kind = state.range(0) == 0 ? oram::OramKind::kPath
                                          : oram::OramKind::kCircuit;
    Rng rng(4);
    auto oram = oram::MakeOram(kind, 16384, 64, rng);
    std::vector<uint32_t> out(64);
    int64_t id = 0;
    for (auto _ : state) {
        oram->Read(id++ % 16384, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_OramAccess)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"kind(0=Path,1=Circuit)"});

/**
 * Console reporter that additionally captures every run so main() can
 * emit the secemb-bench-v1 JSON document next to the usual table.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct CapturedRun
    {
        std::string name;
        int64_t iterations;
        double mean_ns;
        std::vector<std::pair<std::string, uint64_t>> counters;
    };

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.error_occurred || run.iterations <= 0) continue;
            CapturedRun captured;
            captured.name = run.benchmark_name();
            captured.iterations = run.iterations;
            captured.mean_ns = run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
            for (const auto& [cname, counter] : run.counters) {
                captured.counters.emplace_back(
                    cname, static_cast<uint64_t>(counter.value));
            }
            captured_.push_back(std::move(captured));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<CapturedRun>& captured() const { return captured_; }

  private:
    std::vector<CapturedRun> captured_;
};

}  // namespace
}  // namespace secemb

int
main(int argc, char** argv)
{
    // Peel off --json <path> (ours) before google-benchmark sees the
    // command line; everything else passes through untouched.
    std::string json_path;
    std::vector<char*> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    int filtered_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&filtered_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               passthrough.data())) {
        return 1;
    }

    secemb::CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!json_path.empty()) {
        secemb::bench::BenchReport report("micro_primitives");
        for (const auto& run : reporter.captured()) {
            auto& result = report.AddResult(run.name);
            result.latency = secemb::bench::LatencyStats::FromMean(
                run.mean_ns, static_cast<uint64_t>(run.iterations));
            result.counters = run.counters;
        }
        if (!report.WriteTo(json_path)) {
            std::fprintf(stderr, "micro_primitives: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
    }
    return 0;
}
