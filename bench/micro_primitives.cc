/**
 * @file
 * Google-benchmark microbenchmarks for the primitives every scheme is
 * built from: constant-time selects, oblivious scans, hash encoding,
 * bucket encryption, and single ORAM accesses. These are the unit costs
 * behind every figure; regressions here shift every curve.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/json.h"
#include "dhe/hashing.h"
#include "oblivious/ct_ops.h"
#include "oblivious/scan.h"
#include "oblivious/vector_scan.h"
#include "oram/crypto.h"
#include "oram/tree_oram.h"
#include "tensor/gemm.h"
#include "tensor/kernels/kernels.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb {
namespace {

/**
 * The pre-pool ParallelFor: spawn-and-join fresh std::threads per call.
 * Kept here as the baseline for the pool-vs-spawn comparison mode — the
 * per-region dispatch cost every Fig. 6 / Fig. 12 data point used to pay.
 */
void
SpawnParallelFor(int64_t n, int nthreads,
                 const std::function<void(int64_t, int64_t)>& fn)
{
    if (n <= 0) return;
    const int64_t workers =
        std::max<int64_t>(1, std::min<int64_t>(nthreads, n));
    if (workers == 1) {
        fn(0, n);
        return;
    }
    const int64_t chunk = (n + workers - 1) / workers;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int64_t w = 0; w < workers; ++w) {
        const int64_t begin = w * chunk;
        const int64_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        threads.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    for (auto& t : threads) t.join();
}

constexpr int kCmpThreads = 4;

// The pool-vs-spawn comparisons are registered with UseRealTime():
// the spawn caller sleeps through its region (joins) while the pool
// caller computes, so CPU-time iteration tuning would hand the two
// sides wildly different measurement windows. Wall clock is the
// quantity being compared anyway.

void
BM_ParallelDispatchPool(benchmark::State& state)
{
    // Empty-body region: isolates wake/dispatch overhead of the pool.
    for (auto _ : state) {
        ParallelFor(kCmpThreads, kCmpThreads, [](int64_t b, int64_t) {
            benchmark::DoNotOptimize(b);
        });
    }
}
BENCHMARK(BM_ParallelDispatchPool)->UseRealTime();

void
BM_ParallelDispatchSpawn(benchmark::State& state)
{
    for (auto _ : state) {
        SpawnParallelFor(kCmpThreads, kCmpThreads,
                         [](int64_t b, int64_t) {
                             benchmark::DoNotOptimize(b);
                         });
    }
}
BENCHMARK(BM_ParallelDispatchSpawn)->UseRealTime();

/** Shared body for the batch linear-scan pool-vs-spawn comparison. */
template <typename ParallelImpl>
void
RunBatchScan(benchmark::State& state, ParallelImpl&& parallel_for)
{
    const int64_t batch = state.range(0), rows = 1024, cols = 64;
    Rng rng(11);
    const Tensor table = Tensor::Randn({rows, cols}, rng);
    std::vector<int64_t> ids(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
        ids[static_cast<size_t>(i)] = (i * 131) % rows;
    }
    std::vector<float> out(static_cast<size_t>(batch * cols));
    for (auto _ : state) {
        parallel_for(batch, kCmpThreads, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
                oblivious::LinearScanLookupVec(
                    table.flat(), rows, cols,
                    ids[static_cast<size_t>(i)],
                    {out.data() + i * cols, static_cast<size_t>(cols)});
            }
        });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * batch * rows * cols * 4);
}

void
BM_BatchLinearScanPool(benchmark::State& state)
{
    RunBatchScan(state, [](int64_t n, int nt, const auto& fn) {
        ParallelFor(n, nt, fn);
    });
}
BENCHMARK(BM_BatchLinearScanPool)->Arg(32)->Arg(128)->UseRealTime();

void
BM_BatchLinearScanSpawn(benchmark::State& state)
{
    RunBatchScan(state, [](int64_t n, int nt, const auto& fn) {
        SpawnParallelFor(n, nt, fn);
    });
}
BENCHMARK(BM_BatchLinearScanSpawn)->Arg(32)->Arg(128)->UseRealTime();

/**
 * GEMM row-range kernel, deliberately out-of-line and shared: if it were
 * inlined into each benchmark's template instantiation, the pool and
 * spawn sides would execute *different copies* of the hot loop and the
 * comparison would measure code-placement luck instead of dispatch cost.
 */
__attribute__((noinline)) void
GemmRowRange(const float* ap, const float* bp, float* cp, int64_t k,
             int64_t n, int64_t rb, int64_t re)
{
    for (int64_t i = rb; i < re; ++i) {
        float* crow = cp + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
        const float* arow = ap + i * k;
        for (int64_t p = 0; p < k; ++p) {
            const float aval = arow[p];
            const float* brow = bp + p * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
    }
}

template <typename ParallelImpl>
void
RunGemmRows(benchmark::State& state, ParallelImpl&& parallel_for)
{
    const int64_t m = state.range(0), k = 256, n = 256;
    Rng rng(12);
    const Tensor a = Tensor::Randn({m, k}, rng);
    const Tensor b = Tensor::Randn({k, n}, rng);
    Tensor c({m, n});
    const float* ap = a.data();
    const float* bp = b.data();
    float* cp = c.data();
    for (auto _ : state) {
        parallel_for(m, kCmpThreads, [&](int64_t rb, int64_t re) {
            GemmRowRange(ap, bp, cp, k, n, rb, re);
        });
        benchmark::DoNotOptimize(cp);
    }
}

void
BM_GemmPool(benchmark::State& state)
{
    RunGemmRows(state, [](int64_t n, int nt, const auto& fn) {
        ParallelFor(n, nt, fn);
    });
}
BENCHMARK(BM_GemmPool)->Arg(32)->Arg(128)->UseRealTime();

void
BM_GemmSpawn(benchmark::State& state)
{
    RunGemmRows(state, [](int64_t n, int nt, const auto& fn) {
        SpawnParallelFor(n, nt, fn);
    });
}
BENCHMARK(BM_GemmSpawn)->Arg(32)->Arg(128)->UseRealTime();

void
BM_SelectInline(benchmark::State& state)
{
    uint64_t acc = 1;
    for (auto _ : state) {
        acc = oblivious::Select(oblivious::EqMask(acc & 1, 1), acc + 1,
                                acc + 2);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SelectInline);

void
BM_SelectNoInline(benchmark::State& state)
{
    uint64_t acc = 1;
    for (auto _ : state) {
        acc = oblivious::SelectNoInline(
            oblivious::EqMask(acc & 1, 1), acc + 1, acc + 2);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SelectNoInline);

void
BM_LinearScanLookup(benchmark::State& state)
{
    const int64_t rows = state.range(0), cols = 64;
    Rng rng(1);
    const Tensor table = Tensor::Randn({rows, cols}, rng);
    std::vector<float> out(static_cast<size_t>(cols));
    int64_t idx = 0;
    for (auto _ : state) {
        oblivious::LinearScanLookup(table.flat(), rows, cols,
                                    idx++ % rows, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * rows * cols * 4);
}
BENCHMARK(BM_LinearScanLookup)->Arg(1024)->Arg(16384);

void
BM_ObliviousArgmax(benchmark::State& state)
{
    Rng rng(2);
    const Tensor v = Tensor::Randn({state.range(0)}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(oblivious::ObliviousArgmax(v.flat()));
    }
}
BENCHMARK(BM_ObliviousArgmax)->Arg(50257);

void
BM_HashEncode(benchmark::State& state)
{
    Rng rng(3);
    dhe::HashEncoder enc(state.range(0), 1000000, rng);
    std::vector<int64_t> ids(32);
    for (size_t i = 0; i < ids.size(); ++i) {
        ids[i] = static_cast<int64_t>(i * 977);
    }
    Tensor out({32, state.range(0)});
    for (auto _ : state) {
        enc.Encode(ids, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_HashEncode)->Arg(128)->Arg(1024);

void
BM_BucketCipher(benchmark::State& state)
{
    oram::BucketCipher cipher(42);
    std::vector<uint32_t> words(static_cast<size_t>(state.range(0)));
    uint64_t version = 0;
    for (auto _ : state) {
        cipher.Apply(3, ++version, words);
        benchmark::DoNotOptimize(words.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_BucketCipher)->Arg(256);

void
BM_OramAccess(benchmark::State& state)
{
    const auto kind = state.range(0) == 0 ? oram::OramKind::kPath
                                          : oram::OramKind::kCircuit;
    Rng rng(4);
    auto oram = oram::MakeOram(kind, 16384, 64, rng);
    std::vector<uint32_t> out(64);
    int64_t id = 0;
    for (auto _ : state) {
        oram->Read(id++ % 16384, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_OramAccess)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"kind(0=Path,1=Circuit)"});

// ---------------------------------------------------------------------------
// gemm-kernel mode: naive vs packed vs packed+fused epilogue
//
// `micro_primitives gemm-kernel --json BENCH_gemm.json` runs only this
// group, at the DHE decoder FC shapes (batch 256, 1024->512->256->64).
// The three variants isolate where the speedup comes from: the blocked
// SIMD microkernels (naive -> packed) and the fused bias+activation
// epilogue replacing two extra passes over C (packed -> fused).
// ---------------------------------------------------------------------------

constexpr int64_t kDecoderBatch = 256;

/** Separate bias-broadcast + ReLU passes (what fusion eliminates). */
void
BiasReluPasses(Tensor& c, const Tensor& bias)
{
    const int64_t m = c.size(0), n = c.size(1);
    float* cp = c.data();
    const float* bp = bias.data();
    for (int64_t i = 0; i < m; ++i) {
        float* crow = cp + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += bp[j];
    }
    for (int64_t i = 0; i < m * n; ++i) cp[i] = std::max(0.0f, cp[i]);
}

void
SetGemmCounters(benchmark::State& state, int64_t m, int64_t k, int64_t n)
{
    state.counters["flops"] = benchmark::Counter(
        static_cast<double>(2 * m * k * n),
        benchmark::Counter::kIsIterationInvariantRate);
}

void
BM_GemmKernelNaive(benchmark::State& state)
{
    const int64_t m = kDecoderBatch, k = state.range(0), n = state.range(1);
    Rng rng(21);
    const Tensor x = Tensor::Randn({m, k}, rng);
    const Tensor w = Tensor::Randn({k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    Tensor c({m, n});
    for (auto _ : state) {
        GemmNaive(x, w, c);
        BiasReluPasses(c, bias);
        benchmark::DoNotOptimize(c.data());
    }
    SetGemmCounters(state, m, k, n);
}
BENCHMARK(BM_GemmKernelNaive)
    ->Args({1024, 512})
    ->Args({512, 256})
    ->Args({256, 64})
    ->ArgNames({"k", "n"});

void
BM_GemmKernelPacked(benchmark::State& state)
{
    // Packed SIMD kernels + persistent weight cache, but bias/ReLU still
    // run as separate passes — isolates the microkernel win.
    const int64_t m = kDecoderBatch, k = state.range(0), n = state.range(1);
    Rng rng(21);
    const Tensor x = Tensor::Randn({m, k}, rng);
    const Tensor w = Tensor::Randn({k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    Tensor c({m, n});
    for (auto _ : state) {
        const auto packed = kernels::PackedWeightCache::Instance().Get(
            w.data(), k, n, /*transposed_src=*/false);
        kernels::GemmArgs args;
        args.a = x.data();
        args.b = packed.get();
        args.c = c.data();
        args.m = m;
        kernels::GemmPacked(args);
        BiasReluPasses(c, bias);
        benchmark::DoNotOptimize(c.data());
    }
    SetGemmCounters(state, m, k, n);
    kernels::PackedWeightCache::Instance().Clear();
}
BENCHMARK(BM_GemmKernelPacked)
    ->Args({1024, 512})
    ->Args({512, 256})
    ->Args({256, 64})
    ->ArgNames({"k", "n"});

void
BM_GemmKernelPackedFused(benchmark::State& state)
{
    // The production path: packed kernels + bias/ReLU fused into the
    // GEMM's final store pass.
    const int64_t m = kDecoderBatch, k = state.range(0), n = state.range(1);
    Rng rng(21);
    const Tensor x = Tensor::Randn({m, k}, rng);
    const Tensor w = Tensor::Randn({k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    Tensor c({m, n});
    for (auto _ : state) {
        AffineActForward(x, w, bias, c, 1, kernels::Activation::kRelu);
        benchmark::DoNotOptimize(c.data());
    }
    SetGemmCounters(state, m, k, n);
    kernels::PackedWeightCache::Instance().Clear();
}
BENCHMARK(BM_GemmKernelPackedFused)
    ->Args({1024, 512})
    ->Args({512, 256})
    ->Args({256, 64})
    ->ArgNames({"k", "n"});

/**
 * Low-precision variants of the fused packed path: weights quantize on
 * pack (bf16 round-to-nearest-even / int8 per-column symmetric), int8 A
 * rows quantize dynamically per call, and dequant rides the fused
 * epilogue. Same decoder shapes as the f32 bench so the per-precision
 * speedup reads straight out of BENCH_gemm_kernel.json.
 */
void
GemmKernelPackedDtype(benchmark::State& state, kernels::Dtype dtype)
{
    const int64_t m = kDecoderBatch, k = state.range(0), n = state.range(1);
    Rng rng(21);
    const Tensor x = Tensor::Randn({m, k}, rng);
    const Tensor w = Tensor::Randn({k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    Tensor c({m, n});
    for (auto _ : state) {
        AffineActForward(x, w, bias, c, 1, kernels::Activation::kRelu,
                         nullptr, dtype);
        benchmark::DoNotOptimize(c.data());
    }
    SetGemmCounters(state, m, k, n);
    kernels::PackedWeightCache::Instance().Clear();
}

void
BM_GemmKernelPackedBf16(benchmark::State& state)
{
    GemmKernelPackedDtype(state, kernels::Dtype::kBf16);
}
BENCHMARK(BM_GemmKernelPackedBf16)
    ->Args({1024, 512})
    ->Args({512, 256})
    ->Args({256, 64})
    ->ArgNames({"k", "n"});

void
BM_GemmKernelPackedInt8(benchmark::State& state)
{
    GemmKernelPackedDtype(state, kernels::Dtype::kInt8);
}
BENCHMARK(BM_GemmKernelPackedInt8)
    ->Args({1024, 512})
    ->Args({512, 256})
    ->Args({256, 64})
    ->ArgNames({"k", "n"});

/**
 * Full decoder chain 1024->512->256->64; 0 = naive, 1 = packed+fused
 * f32, 2 = bf16, 3 = int8. The int8-vs-f32 ratio here is the
 * acceptance number for the low-precision tier (single-thread, decoder
 * shapes).
 */
void
BM_GemmKernelDecoderChain(benchmark::State& state)
{
    const int variant = static_cast<int>(state.range(0));
    const kernels::Dtype dtype = variant == 2   ? kernels::Dtype::kBf16
                                 : variant == 3 ? kernels::Dtype::kInt8
                                                : kernels::Dtype::kF32;
    static const int64_t kSizes[] = {1024, 512, 256, 64};
    Rng rng(22);
    const Tensor x = Tensor::Randn({kDecoderBatch, kSizes[0]}, rng);
    std::vector<Tensor> weights, biases, outs;
    for (int l = 0; l < 3; ++l) {
        weights.push_back(
            Tensor::Randn({kSizes[l], kSizes[l + 1]}, rng));
        biases.push_back(Tensor::Randn({kSizes[l + 1]}, rng));
        outs.push_back(Tensor({kDecoderBatch, kSizes[l + 1]}));
    }
    int64_t flops = 0;
    for (int l = 0; l < 3; ++l) {
        flops += 2 * kDecoderBatch * kSizes[l] * kSizes[l + 1];
    }
    for (auto _ : state) {
        const Tensor* in = &x;
        for (int l = 0; l < 3; ++l) {
            if (variant != 0) {
                AffineActForward(*in, weights[l], biases[l], outs[l], 1,
                                 kernels::Activation::kRelu, nullptr,
                                 dtype);
            } else {
                GemmNaive(*in, weights[l], outs[l]);
                BiasReluPasses(outs[l], biases[l]);
            }
            in = &outs[l];
        }
        benchmark::DoNotOptimize(outs.back().data());
    }
    state.counters["flops"] = benchmark::Counter(
        static_cast<double>(flops),
        benchmark::Counter::kIsIterationInvariantRate);
    kernels::PackedWeightCache::Instance().Clear();
}
BENCHMARK(BM_GemmKernelDecoderChain)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->ArgNames({"variant(0=naive,1=f32,2=bf16,3=int8)"});

/**
 * Skinny-m scaling: decoder GEMMs at serving batch sizes (m <= 8) have
 * tiles_m = 1, so only the 2-D column-panel split can use extra
 * threads. Registered from main() over the --threads sweep (default
 * 1/2/4/8) at the two big decoder layers; `hw_threads` is recorded per
 * run so cross-machine trajectory comparisons can tell "no cores" from
 * "no scaling".
 */
void
BM_GemmKernelSkinnyM(benchmark::State& state)
{
    const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
    const int nthreads = static_cast<int>(state.range(3));
    Rng rng(23);
    const Tensor x = Tensor::Randn({m, k}, rng);
    const Tensor w = Tensor::Randn({k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    Tensor c({m, n});
    for (auto _ : state) {
        AffineActForward(x, w, bias, c, nthreads,
                         kernels::Activation::kRelu);
        benchmark::DoNotOptimize(c.data());
    }
    SetGemmCounters(state, m, k, n);
    state.counters["hw_threads"] = benchmark::Counter(
        static_cast<double>(std::thread::hardware_concurrency()));
    kernels::PackedWeightCache::Instance().Clear();
}

/**
 * Console reporter that additionally captures every run so main() can
 * emit the secemb-bench-v1 JSON document next to the usual table.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct CapturedRun
    {
        std::string name;
        int64_t iterations;
        double mean_ns;
        std::vector<std::pair<std::string, uint64_t>> counters;
    };

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.error_occurred || run.iterations <= 0) continue;
            CapturedRun captured;
            captured.name = run.benchmark_name();
            captured.iterations = run.iterations;
            captured.mean_ns = run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
            for (const auto& [cname, counter] : run.counters) {
                captured.counters.emplace_back(
                    cname, static_cast<uint64_t>(counter.value));
            }
            captured_.push_back(std::move(captured));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<CapturedRun>& captured() const { return captured_; }

  private:
    std::vector<CapturedRun> captured_;
};

}  // namespace
}  // namespace secemb

int
main(int argc, char** argv)
{
    // Peel off --json <path>, --threads <list>, and the optional
    // `gemm-kernel` mode word (ours) before google-benchmark sees the
    // command line; everything else passes through untouched.
    std::string json_path;
    std::string threads_arg = "1,2,4,8";
    std::string report_name = "micro_primitives";
    bool gemm_mode = false;
    bool user_filter = false;
    std::vector<char*> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (i == 1 && std::strcmp(argv[i], "gemm-kernel") == 0) {
            gemm_mode = true;
            report_name = "gemm_kernel";
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads_arg = argv[++i];
        } else {
            if (std::strncmp(argv[i], "--benchmark_filter=", 19) == 0) {
                user_filter = true;
            }
            passthrough.push_back(argv[i]);
        }
    }
    // The mode restricts the run to the kernel comparison unless the
    // caller supplied an explicit filter of their own.
    static char gemm_filter[] = "--benchmark_filter=^BM_GemmKernel";
    if (gemm_mode && !user_filter) passthrough.push_back(gemm_filter);
    int filtered_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&filtered_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               passthrough.data())) {
        return 1;
    }

    // The skinny-m thread sweep registers here so --threads can change
    // the sweep list (default 1,2,4,8) without rebuilding.
    {
        std::vector<int64_t> threads;
        std::string tok;
        for (char ch : threads_arg + ",") {
            if (ch == ',') {
                if (!tok.empty()) threads.push_back(std::atoll(tok.c_str()));
                tok.clear();
            } else {
                tok.push_back(ch);
            }
        }
        static const int64_t kSkinnyShapes[][3] = {
            {1, 1024, 512}, {4, 1024, 512}, {8, 512, 256}};
        for (const auto& shape : kSkinnyShapes) {
            for (int64_t t : threads) {
                auto* bench = benchmark::RegisterBenchmark(
                    "BM_GemmKernelSkinnyM", secemb::BM_GemmKernelSkinnyM);
                bench->Args({shape[0], shape[1], shape[2], t})
                    ->ArgNames({"m", "k", "n", "threads"})
                    ->UseRealTime();
            }
        }
    }

    secemb::CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!json_path.empty()) {
        secemb::bench::BenchReport report(report_name);
        for (const auto& run : reporter.captured()) {
            auto& result = report.AddResult(run.name);
            result.latency = secemb::bench::LatencyStats::FromMean(
                run.mean_ns, static_cast<uint64_t>(run.iterations));
            result.counters = run.counters;
        }
        if (!report.WriteTo(json_path)) {
            std::fprintf(stderr, "micro_primitives: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
    }
    return 0;
}
