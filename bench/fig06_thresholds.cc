/**
 * @file
 * Fig. 6 reproduction: profiled linear-scan/DHE switching thresholds per
 * execution configuration (batch size x thread count), embedding dim 64.
 *
 * The paper's observations: thresholds decrease with batch size (DHE
 * amortises weight reuse) and increase with thread count (scan gains
 * cache reuse across threads).
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int reps = static_cast<int>(args.GetInt("--reps", 3));
    const bool varied = args.GetBool("--varied");

    std::printf("=== Fig. 6: linear-scan vs DHE switching thresholds "
                "(dim 64, DHE %s) ===\n\n",
                varied ? "Varied" : "Uniform");

    profile::ProfileConfig cfg;
    cfg.batch_sizes = {8, 32, 128};
    cfg.thread_counts = {1, 2, 4};
    cfg.table_sizes = {256, 1024, 4096, 16384, 65536};
    cfg.dim = 64;
    cfg.reps = reps;
    cfg.varied_dhe = varied;

    Rng rng(1);
    const profile::ProfileResult result =
        profile::ProfileThresholds(cfg, rng);

    bench::TablePrinter table(
        {"batch size", "threads", "threshold (table rows)"});
    for (const auto& e : result.thresholds.entries()) {
        table.AddRow({std::to_string(e.batch_size),
                      std::to_string(e.nthreads),
                      std::to_string(e.table_size_threshold)});
    }
    table.Print();

    std::printf("\nraw profile points (scan vs DHE latency):\n");
    bench::TablePrinter raw({"batch", "threads", "table size",
                             "scan (ms)", "DHE (ms)"});
    for (const auto& p : result.points) {
        raw.AddRow({std::to_string(p.batch_size),
                    std::to_string(p.nthreads),
                    std::to_string(p.table_size),
                    bench::TablePrinter::Ms(p.scan_ns, 3),
                    bench::TablePrinter::Ms(p.dhe_ns, 3)});
    }
    raw.Print();
    std::printf(
        "\nExpected shape (paper Fig. 6): thresholds fall as batch size\n"
        "rises, and rise as thread count rises (single-core host: the\n"
        "thread trend may flatten since threads timeshare one core).\n");
    return 0;
}
