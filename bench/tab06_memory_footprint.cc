/**
 * @file
 * Table VI reproduction: DLRM model memory footprint per representation,
 * Criteo Kaggle and Terabyte — at FULL paper scale.
 *
 * Footprints are closed-form (table bytes, ORAM tree+posmap estimator,
 * DHE decoder parameter counts), so no multi-GB allocation happens; the
 * estimator is asserted against live instances by the test suite.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/hybrid.h"
#include "dhe/dhe.h"
#include "dlrm/config.h"
#include "oram/footprint.h"

using namespace secemb;

namespace {

struct Row
{
    const char* name;
    int64_t bytes;
};

int64_t
DheBytes(const dlrm::DlrmConfig& cfg, bool varied)
{
    int64_t total = 0;
    for (int64_t s : cfg.table_sizes) {
        const dhe::DheConfig dc =
            varied ? dhe::DheConfig::Varied(s, cfg.emb_dim)
                   : dhe::DheConfig::Uniform(cfg.emb_dim);
        total += dc.DecoderParams() * 4 + dc.k * 16;
    }
    return total;
}

int64_t
HybridBytes(const dlrm::DlrmConfig& cfg, bool varied, int64_t threshold)
{
    int64_t total = 0;
    for (int64_t s : cfg.table_sizes) {
        if (core::ChooseTechnique(s, threshold) ==
            core::Technique::kLinearScan) {
            total += s * cfg.emb_dim * 4;  // materialised table
        } else {
            const dhe::DheConfig dc =
                varied ? dhe::DheConfig::Varied(s, cfg.emb_dim)
                       : dhe::DheConfig::Uniform(cfg.emb_dim);
            total += dc.DecoderParams() * 4 + dc.k * 16;
        }
    }
    return total;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    // Paper-regime threshold (Fig. 6 reports ~3300 at batch 32/1 thread).
    const int64_t threshold = args.GetInt("--threshold", 3300);

    std::printf("=== Table VI: DLRM model memory footprint (full paper "
                "scale, threshold %ld) ===\n\n", threshold);

    for (const bool terabyte : {false, true}) {
        const dlrm::DlrmConfig cfg =
            terabyte ? dlrm::DlrmConfig::CriteoTerabyte()
                     : dlrm::DlrmConfig::CriteoKaggle();
        std::printf("--- %s (dim %ld) ---\n",
                    terabyte ? "Criteo Terabyte" : "Criteo Kaggle",
                    cfg.emb_dim);

        int64_t table_bytes = 0, oram_bytes = 0;
        for (int64_t s : cfg.table_sizes) {
            table_bytes += s * cfg.emb_dim * 4;
            oram_bytes += oram::EstimateFootprintBytes(
                oram::OramKind::kCircuit, s, cfg.emb_dim);
        }
        const std::vector<Row> rows{
            {"Table", table_bytes},
            {"Tree-ORAM", oram_bytes},
            {"DHE Uniform", DheBytes(cfg, false)},
            {"DHE Varied", DheBytes(cfg, true)},
            {"Hybrid Uniform", HybridBytes(cfg, false, threshold)},
            {"Hybrid Varied", HybridBytes(cfg, true, threshold)},
        };
        bench::TablePrinter table(
            {"representation", "footprint (MB)", "vs table"});
        for (const Row& r : rows) {
            table.AddRow(
                {r.name, bench::TablePrinter::Mb(r.bytes, 1),
                 bench::TablePrinter::Num(
                     100.0 * static_cast<double>(r.bytes) /
                         static_cast<double>(table_bytes),
                     2) + "%"});
        }
        table.Print();
        const double oram_over_hybrid =
            static_cast<double>(oram_bytes) /
            static_cast<double>(HybridBytes(cfg, true, threshold));
        std::printf("Tree-ORAM / Hybrid Varied: %.0fx\n\n",
                    oram_over_hybrid);
    }
    std::printf(
        "Expected (paper Table VI): ORAM >3x the raw tables; DHE/Hybrid\n"
        "orders of magnitude smaller (paper: 0.3-3.3%% of the table,\n"
        "up to 1116x smaller than ORAM for Terabyte).\n");
    return 0;
}
