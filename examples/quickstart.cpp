/**
 * @file
 * Quickstart: protect one embedding table against memory side-channels.
 *
 * Builds the same feature four ways — non-secure lookup, oblivious
 * linear scan, Circuit ORAM, and DHE — checks that the protected
 * variants return the right embeddings, and shows the latency/footprint
 * trade-off the paper is about.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "profile/profiler.h"

using namespace secemb;

int
main()
{
    // A sparse feature: 20,000 categories, 64-dimensional embeddings.
    const int64_t rows = 20000, dim = 64;
    Rng rng(7);
    const Tensor trained_table = Tensor::Randn({rows, dim}, rng);

    std::printf("secemb quickstart: one %ld x %ld embedding table, four "
                "ways\n\n", rows, dim);

    bench::TablePrinter table({"method", "oblivious?",
                               "batch-32 latency (ms)", "memory (MB)"});
    for (auto kind :
         {core::GenKind::kIndexLookup, core::GenKind::kLinearScan,
          core::GenKind::kCircuitOram, core::GenKind::kDheVaried}) {
        core::GeneratorOptions opt;
        opt.table = &trained_table;  // ignored by DHE (compute-based)
        auto gen = core::MakeGenerator(kind, rows, dim, rng, opt);

        // Generate a batch of embeddings for some (secret) indices.
        const std::vector<int64_t> secret_indices{3, 17291, 42, 9999};
        const Tensor emb = gen->GenerateBatch(secret_indices);

        // Table-backed protections return the exact trained rows.
        if (kind != core::GenKind::kDheVaried) {
            for (size_t i = 0; i < secret_indices.size(); ++i) {
                for (int64_t j = 0; j < dim; ++j) {
                    const float expect =
                        trained_table.at(secret_indices[i], j);
                    if (std::abs(emb.at(static_cast<int64_t>(i), j) -
                                 expect) > 1e-5f) {
                        std::printf("MISMATCH in %s!\n",
                                    std::string(gen->name()).c_str());
                        return 1;
                    }
                }
            }
        }

        Rng idx(3);
        const double ns =
            profile::MeasureGeneratorLatencyNs(*gen, 32, idx, 3);
        table.AddRow({std::string(core::GenKindName(kind)),
                      gen->IsOblivious() ? "yes" : "NO",
                      bench::TablePrinter::Ms(ns, 3),
                      bench::TablePrinter::Mb(
                          gen->MemoryFootprintBytes(), 2)});
    }
    table.Print();

    std::printf(
        "\nNotes:\n"
        " * Index Lookup leaks the secret indices through its memory\n"
        "   access pattern (see examples/attack_demo).\n"
        " * DHE computes embeddings from the id (hash + FC decoder): its\n"
        "   trace is index-independent and its footprint does not grow\n"
        "   with the table. A deployed DHE is trained to match the\n"
        "   table's accuracy (see bench/tab05_dlrm_accuracy).\n");
    return 0;
}
