/**
 * @file
 * LLM scenario: autoregressive text generation where the user's (secret)
 * token ids never shape the memory trace — DHE token embeddings on the
 * way in, oblivious argmax on the way out (paper Sections IV-D, V-C).
 *
 *   $ ./llm_generate [--tokens N]
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dhe/dhe.h"
#include "llm/corpus.h"
#include "llm/gpt.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t gen_tokens = args.GetInt("--tokens", 12);

    // A small GPT with the architecture of the paper's case study.
    llm::GptConfig cfg;
    cfg.vocab_size = 1000;
    cfg.max_seq = 128;
    cfg.dim = 64;
    cfg.num_heads = 4;
    cfg.num_layers = 2;

    std::printf("secure LLM generation demo (vocab %ld, dim %ld, %ld "
                "layers)\n\n", cfg.vocab_size, cfg.dim, cfg.num_layers);

    // Token embeddings via DHE, sized by the paper's rule (2x dim).
    Rng rng(11);
    core::GeneratorOptions opt;
    opt.dhe = std::make_shared<dhe::DheEmbedding>(
        dhe::DheConfig::ForLlm(cfg.dim), rng);
    auto tok_gen = core::MakeGenerator(core::GenKind::kDheUniform,
                                       cfg.vocab_size, cfg.dim, rng, opt);
    std::printf("token embedding: %s, %.2f MB (table would be %.2f MB)\n",
                std::string(tok_gen->name()).c_str(),
                tok_gen->MemoryFootprintBytes() / (1024.0 * 1024.0),
                cfg.vocab_size * cfg.dim * 4 / (1024.0 * 1024.0));

    llm::SecureGpt model(cfg, std::move(tok_gen), rng);

    // A "user prompt" (synthetic token ids standing in for a tokenizer
    // that, per the threat model, runs on the trusted client).
    llm::SyntheticCorpus corpus(cfg.vocab_size, 5);
    const auto prompt_tokens = corpus.Sample(1, 16);
    std::vector<std::vector<int64_t>> prompts{
        {prompt_tokens.begin(), prompt_tokens.end()}};

    std::printf("prompt ids:    ");
    for (int64_t t : prompts[0]) std::printf("%ld ", t);
    std::printf("\n");

    bench::WallTimer timer;
    Tensor logits = model.Prefill(prompts);
    std::printf("prefill (TTFT): %.2f ms\n", timer.ElapsedMs());

    std::printf("generated ids: ");
    timer.Reset();
    for (int64_t s = 0; s < gen_tokens; ++s) {
        // Greedy decoding with the *oblivious* argmax: even the choice
        // of the output token does not branch on logit values.
        const auto next = model.GreedyTokens(logits);
        std::printf("%ld ", next[0]);
        std::fflush(stdout);
        logits = model.DecodeStep(next);
    }
    std::printf("\ndecode: %.2f ms/token (TBT)\n",
                timer.ElapsedMs() / static_cast<double>(gen_tokens));
    std::printf("\nEvery memory access in this run was independent of "
                "the prompt's\ntoken values: the embedding layer computes "
                "(hash + FC), and the\ngreedy sampler scans all logits "
                "with constant-time selects.\n");
    return 0;
}
