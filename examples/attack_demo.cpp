/**
 * @file
 * Attack scenario (paper Section III-A): a co-located attacker with
 * eviction sets recovers the victim's embedding index from the shared
 * cache — then fails against each protected generator.
 *
 *   $ ./attack_demo
 */

#include <cstdio>

#include "core/factory.h"
#include "core/table_generators.h"
#include "sidechannel/attacker.h"
#include "sidechannel/oblivious_check.h"

using namespace secemb;

namespace {

constexpr int64_t kRows = 256;
constexpr int64_t kDim = 64;
constexpr int kMonitored = 25;

/** One attacked inference: returns the attacker's index guess. */
int64_t
AttackOnce(core::EmbeddingGenerator& victim, uint64_t table_base,
           int64_t secret)
{
    sidechannel::TraceRecorder rec;
    victim.set_recorder(&rec);
    sidechannel::CacheConfig cache_cfg;
    cache_cfg.num_sets = 4096;
    cache_cfg.ways = 12;
    sidechannel::CacheModel cache(cache_cfg);
    sidechannel::EvictionSetAttacker attacker(cache, table_base,
                                              kDim * 4, kMonitored);
    std::vector<int64_t> batch{secret};
    Tensor out({1, kDim});
    victim.Generate(batch, out);
    const auto obs = attacker.Attack(rec.trace(), 10);
    victim.set_recorder(nullptr);
    return obs.guessed_index;
}

}  // namespace

int
main()
{
    std::printf("cache side-channel attack demo (victim: embedding "
                "lookup in a shared-cache machine)\n\n");

    Rng rng(1);
    const Tensor table = Tensor::Randn({kRows, kDim}, rng);
    const int64_t secret = 17;  // e.g. a user's age-bucket feature

    // --- Vulnerable baseline.
    {
        core::TableLookup victim(table);
        const int64_t guess =
            AttackOnce(victim, victim.trace_base(), secret);
        std::printf("non-secure lookup:  secret=%ld  attacker guessed=%ld"
                    "  -> %s\n", secret, guess,
                    guess == secret ? "LEAKED" : "missed");
    }

    // --- Linear scan.
    {
        core::LinearScanTable victim(table);
        const int64_t guess =
            AttackOnce(victim, victim.trace_base(), secret);
        std::printf("linear scan:        secret=%ld  attacker guessed=%ld"
                    "  -> %s\n", secret, guess,
                    guess == secret ? "LEAKED (coincidence)"
                                    : "nothing learned");
    }

    // --- DHE: there is no table in memory at all.
    std::printf("DHE:                no table exists; the trace contains "
                "only fixed-shape GEMMs\n");

    // --- Trace comparison: the formal check behind the demo.
    {
        core::LinearScanTable victim(table);
        sidechannel::TraceRecorder rec;
        victim.set_recorder(&rec);
        Tensor out({1, kDim});
        std::vector<int64_t> a{0};
        victim.Generate(a, out);
        auto trace_a = rec.trace();
        rec.Clear();
        std::vector<int64_t> b{255};
        victim.Generate(b, out);
        const auto r = sidechannel::CompareTraces(trace_a, rec.trace());
        std::printf("\nformal check: linear-scan traces for secrets 0 and "
                    "255 are %s\n",
                    r.identical ? "IDENTICAL (oblivious)" : "different");
    }
    return 0;
}
