/**
 * @file
 * Recommendation-model scenario, served through the fault-tolerant
 * pipeline: train a small DLRM with DHE embeddings, deploy each sparse
 * feature as a hybrid generator (paper Algorithm 2/3) behind a
 * bounded-queue batch server, and serve lookup traffic with deadlines,
 * typed load shedding, and oblivious graceful degradation.
 *
 *   $ ./dlrm_serving [--steps N] [--burst N]
 */

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "profile/profiler.h"
#include "serving/server.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int steps = static_cast<int>(args.GetInt("--steps", 200));
    const int burst = static_cast<int>(args.GetInt("--burst", 256));

    // A small Criteo-shaped model (8 sparse features).
    dlrm::DlrmConfig cfg = dlrm::DlrmConfig::CriteoKaggle().Scaled(10000);
    cfg.table_sizes.resize(8);
    cfg.bot_mlp = {64, 32, 16};
    cfg.top_mlp = {64};

    // ---- 1. Train with every sparse feature as a DHE (paper Section
    //         IV-C3: all-DHE training keeps the training trace oblivious
    //         too).
    std::printf("[1/5] training an all-DHE DLRM (%d steps)...\n", steps);
    Rng rng(1);
    dlrm::TrainableDlrm model(cfg, dlrm::EmbeddingMode::kDheVaried, rng,
                              /*dhe_size_divisor=*/8);
    dlrm::SyntheticCtrDataset train(cfg, 2);
    nn::Adam opt(model.Parameters(), 3e-3f);
    float loss = 0;
    for (int step = 0; step < steps; ++step) {
        loss = model.TrainStep(train.NextBatch(32), opt);
    }
    const float acc = model.Evaluate(train.NextBatch(512));
    std::printf("      final train loss %.4f, accuracy %.2f%%\n", loss,
                100.0f * acc);

    // ---- 2. Offline profiling: where does linear scan beat DHE on this
    //         machine (Algorithm 2, offline step 1)?
    std::printf("[2/5] profiling scan/DHE thresholds...\n");
    Rng prof_rng(3);
    const core::ThresholdTable thresholds = profile::QuickThresholds(
        32, 1, cfg.emb_dim, /*varied_dhe=*/true, prof_rng);
    std::printf("      threshold at batch 32 / 1 thread: %ld rows\n",
                thresholds.Lookup(32, 1));

    // ---- 3. Deploy: each feature becomes a HybridGenerator behind the
    //         batch server — bounded queue, deadline-aware batching,
    //         typed shedding, oblivious degradation under load.
    std::printf("[3/5] deploying hybrid generators behind the batch "
                "server...\n");
    std::vector<std::shared_ptr<core::EmbeddingGenerator>> gens;
    for (int64_t f = 0; f < cfg.num_sparse(); ++f) {
        auto hybrid = std::make_shared<core::HybridGenerator>(
            model.dhe(f), cfg.table_sizes[static_cast<size_t>(f)],
            thresholds, /*batch_size=*/32, /*nthreads=*/1);
        std::printf("      feature %ld (%ld rows) -> %s\n", f,
                    cfg.table_sizes[static_cast<size_t>(f)],
                    std::string(hybrid->name()).c_str());
        gens.push_back(std::move(hybrid));
    }
    serving::ServerConfig srv_cfg;
    srv_cfg.queue_capacity = 32;
    srv_cfg.max_batch = 8;
    srv_cfg.flush_deadline_us = 200;
    srv_cfg.default_deadline_us = 50000;  // 50 ms per lookup
    serving::Server server(gens, srv_cfg);

    // ---- 4. Serve one lookup per feature with a deadline attached.
    std::printf("[4/5] serving one embedding lookup per feature...\n");
    dlrm::SyntheticCtrDataset requests(cfg, 5);
    const dlrm::CtrBatch batch = requests.NextBatch(4);
    for (int f = 0; f < static_cast<int>(cfg.num_sparse()); ++f) {
        serving::Request req;
        req.feature = f;
        req.indices = batch.sparse[static_cast<size_t>(f)];
        const serving::Response resp =
            server.SubmitAndWait(std::move(req));
        std::printf("      feature %d: %s, %.1f us e2e, level %d\n", f,
                    serving::StatusCodeName(resp.status.code),
                    resp.e2e_ns * 1e-3, resp.degrade_level);
    }

    // ---- 5. Overload burst: submit far more than the queue holds in one
    //         go. Excess requests are shed with a typed status (never a
    //         blocked caller); sustained pressure degrades the server —
    //         smaller batch ceilings, per-slot pooling — in ways an
    //         attacker watching the memory trace cannot distinguish.
    std::printf("[5/5] overload burst of %d requests...\n", burst);
    std::vector<std::future<serving::Response>> futs;
    futs.reserve(static_cast<size_t>(burst));
    for (int i = 0; i < burst; ++i) {
        serving::Request req;
        req.feature = i % static_cast<int>(cfg.num_sparse());
        req.indices = {
            i % cfg.table_sizes[static_cast<size_t>(req.feature)]};
        futs.push_back(server.Submit(std::move(req)));
    }
    int ok = 0, shed = 0, late = 0, other = 0;
    for (auto& fut : futs) {
        const serving::Response resp = fut.get();
        switch (resp.status.code) {
            case serving::StatusCode::kOk: ++ok; break;
            case serving::StatusCode::kShed: ++shed; break;
            case serving::StatusCode::kDeadlineExceeded: ++late; break;
            default: ++other; break;
        }
    }
    server.Shutdown();
    const serving::ServerStats stats = server.GetStats();
    std::printf("      served %d, shed %d, deadline-exceeded %d, other "
                "%d\n",
                ok, shed, late, other);
    std::printf("      batches %lu (degraded %lu), retries %lu, final "
                "degrade level %d\n",
                static_cast<unsigned long>(stats.batches),
                static_cast<unsigned long>(stats.degraded_batches),
                static_cast<unsigned long>(stats.retries),
                stats.degrade_level);
    std::printf("\nembedding state deployed: %.2f MB (the raw tables "
                "would be %.2f MB)\n",
                [&] {
                    int64_t b = 0;
                    for (const auto& g : gens) {
                        b += g->MemoryFootprintBytes();
                    }
                    return b / (1024.0 * 1024.0);
                }(),
                [&] {
                    int64_t b = 0;
                    for (int64_t s : cfg.table_sizes) {
                        b += s * cfg.emb_dim * 4;
                    }
                    return b / (1024.0 * 1024.0);
                }());
    return 0;
}
