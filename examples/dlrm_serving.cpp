/**
 * @file
 * Recommendation-model scenario: train a small DLRM with DHE embeddings,
 * deploy it with the paper's hybrid protection (Algorithm 2/3), and
 * serve CTR predictions whose memory trace leaks nothing about the
 * user's categorical features.
 *
 *   $ ./dlrm_serving [--steps N]
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int steps = static_cast<int>(args.GetInt("--steps", 200));

    // A small Criteo-shaped model (8 sparse features).
    dlrm::DlrmConfig cfg = dlrm::DlrmConfig::CriteoKaggle().Scaled(10000);
    cfg.table_sizes.resize(8);
    cfg.bot_mlp = {64, 32, 16};
    cfg.top_mlp = {64};

    // ---- 1. Train with every sparse feature as a DHE (paper Section
    //         IV-C3: all-DHE training keeps the training trace oblivious
    //         too).
    std::printf("[1/4] training an all-DHE DLRM (%d steps)...\n", steps);
    Rng rng(1);
    dlrm::TrainableDlrm model(cfg, dlrm::EmbeddingMode::kDheVaried, rng,
                              /*dhe_size_divisor=*/8);
    dlrm::SyntheticCtrDataset train(cfg, 2);
    nn::Adam opt(model.Parameters(), 3e-3f);
    float loss = 0;
    for (int step = 0; step < steps; ++step) {
        loss = model.TrainStep(train.NextBatch(32), opt);
    }
    const float acc = model.Evaluate(train.NextBatch(512));
    std::printf("      final train loss %.4f, accuracy %.2f%%\n", loss,
                100.0f * acc);

    // ---- 2. Offline profiling: where does linear scan beat DHE on this
    //         machine (Algorithm 2, offline step 1)?
    std::printf("[2/4] profiling scan/DHE thresholds...\n");
    Rng prof_rng(3);
    const core::ThresholdTable thresholds = profile::QuickThresholds(
        32, 1, cfg.emb_dim, /*varied_dhe=*/true, prof_rng);
    std::printf("      threshold at batch 32 / 1 thread: %ld rows\n",
                thresholds.Lookup(32, 1));

    // ---- 3. Deploy: each feature becomes a HybridGenerator that
    //         materialises a table from its trained DHE when scan wins.
    std::printf("[3/4] deploying hybrid generators per feature...\n");
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
    for (int64_t f = 0; f < cfg.num_sparse(); ++f) {
        auto hybrid = std::make_unique<core::HybridGenerator>(
            model.dhe(f), cfg.table_sizes[static_cast<size_t>(f)],
            thresholds, /*batch_size=*/32, /*nthreads=*/1);
        std::printf("      feature %ld (%ld rows) -> %s\n", f,
                    cfg.table_sizes[static_cast<size_t>(f)],
                    std::string(hybrid->name()).c_str());
        gens.push_back(std::move(hybrid));
    }
    Rng serve_rng(4);
    dlrm::SecureDlrm serving(cfg, std::move(gens), serve_rng);

    // ---- 4. Serve a batch of requests.
    std::printf("[4/4] serving a batch of 4 requests...\n");
    dlrm::SyntheticCtrDataset requests(cfg, 5);
    const dlrm::CtrBatch batch = requests.NextBatch(4);
    const Tensor ctr = serving.Inference(batch.dense, batch.sparse);
    for (int64_t i = 0; i < ctr.numel(); ++i) {
        std::printf("      request %ld: click probability %.3f\n", i,
                    ctr.at(i));
    }
    std::printf("\nembedding state deployed: %.2f MB (the raw tables "
                "would be %.2f MB)\n",
                serving.EmbeddingFootprintBytes() / (1024.0 * 1024.0),
                [&] {
                    int64_t b = 0;
                    for (int64_t s : cfg.table_sizes) {
                        b += s * cfg.emb_dim * 4;
                    }
                    return b / (1024.0 * 1024.0);
                }());
    return 0;
}
