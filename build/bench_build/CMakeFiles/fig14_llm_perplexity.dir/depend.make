# Empty dependencies file for fig14_llm_perplexity.
# This may be replaced when dependencies are built.
