file(REMOVE_RECURSE
  "../bench/fig14_llm_perplexity"
  "../bench/fig14_llm_perplexity.pdb"
  "CMakeFiles/fig14_llm_perplexity.dir/fig14_llm_perplexity.cc.o"
  "CMakeFiles/fig14_llm_perplexity.dir/fig14_llm_perplexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_llm_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
