file(REMOVE_RECURSE
  "../bench/tab08_meta_dataset"
  "../bench/tab08_meta_dataset.pdb"
  "CMakeFiles/tab08_meta_dataset.dir/tab08_meta_dataset.cc.o"
  "CMakeFiles/tab08_meta_dataset.dir/tab08_meta_dataset.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab08_meta_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
