# Empty compiler generated dependencies file for tab08_meta_dataset.
# This may be replaced when dependencies are built.
