file(REMOVE_RECURSE
  "../bench/abl01_oram_encryption"
  "../bench/abl01_oram_encryption.pdb"
  "CMakeFiles/abl01_oram_encryption.dir/abl01_oram_encryption.cc.o"
  "CMakeFiles/abl01_oram_encryption.dir/abl01_oram_encryption.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_oram_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
