# Empty dependencies file for abl01_oram_encryption.
# This may be replaced when dependencies are built.
