file(REMOVE_RECURSE
  "../bench/fig10_zerotrace_ablation"
  "../bench/fig10_zerotrace_ablation.pdb"
  "CMakeFiles/fig10_zerotrace_ablation.dir/fig10_zerotrace_ablation.cc.o"
  "CMakeFiles/fig10_zerotrace_ablation.dir/fig10_zerotrace_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_zerotrace_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
