# Empty dependencies file for abl02_oram_bucket_size.
# This may be replaced when dependencies are built.
