file(REMOVE_RECURSE
  "../bench/abl02_oram_bucket_size"
  "../bench/abl02_oram_bucket_size.pdb"
  "CMakeFiles/abl02_oram_bucket_size.dir/abl02_oram_bucket_size.cc.o"
  "CMakeFiles/abl02_oram_bucket_size.dir/abl02_oram_bucket_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_oram_bucket_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
