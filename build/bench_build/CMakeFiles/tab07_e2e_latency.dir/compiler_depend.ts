# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab07_e2e_latency.
