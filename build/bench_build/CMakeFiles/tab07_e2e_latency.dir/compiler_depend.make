# Empty compiler generated dependencies file for tab07_e2e_latency.
# This may be replaced when dependencies are built.
