file(REMOVE_RECURSE
  "../bench/tab07_e2e_latency"
  "../bench/tab07_e2e_latency.pdb"
  "CMakeFiles/tab07_e2e_latency.dir/tab07_e2e_latency.cc.o"
  "CMakeFiles/tab07_e2e_latency.dir/tab07_e2e_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_e2e_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
