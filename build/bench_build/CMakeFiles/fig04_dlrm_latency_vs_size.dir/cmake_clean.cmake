file(REMOVE_RECURSE
  "../bench/fig04_dlrm_latency_vs_size"
  "../bench/fig04_dlrm_latency_vs_size.pdb"
  "CMakeFiles/fig04_dlrm_latency_vs_size.dir/fig04_dlrm_latency_vs_size.cc.o"
  "CMakeFiles/fig04_dlrm_latency_vs_size.dir/fig04_dlrm_latency_vs_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dlrm_latency_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
