# Empty compiler generated dependencies file for fig04_dlrm_latency_vs_size.
# This may be replaced when dependencies are built.
