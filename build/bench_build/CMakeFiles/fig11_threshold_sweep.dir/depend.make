# Empty dependencies file for fig11_threshold_sweep.
# This may be replaced when dependencies are built.
