file(REMOVE_RECURSE
  "../bench/fig03_attack"
  "../bench/fig03_attack.pdb"
  "CMakeFiles/fig03_attack.dir/fig03_attack.cc.o"
  "CMakeFiles/fig03_attack.dir/fig03_attack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
