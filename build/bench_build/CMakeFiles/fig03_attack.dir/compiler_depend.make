# Empty compiler generated dependencies file for fig03_attack.
# This may be replaced when dependencies are built.
