# Empty dependencies file for sec5c_argmax_overhead.
# This may be replaced when dependencies are built.
