file(REMOVE_RECURSE
  "../bench/sec5c_argmax_overhead"
  "../bench/sec5c_argmax_overhead.pdb"
  "CMakeFiles/sec5c_argmax_overhead.dir/sec5c_argmax_overhead.cc.o"
  "CMakeFiles/sec5c_argmax_overhead.dir/sec5c_argmax_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5c_argmax_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
