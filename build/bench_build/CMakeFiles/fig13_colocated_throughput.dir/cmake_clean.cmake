file(REMOVE_RECURSE
  "../bench/fig13_colocated_throughput"
  "../bench/fig13_colocated_throughput.pdb"
  "CMakeFiles/fig13_colocated_throughput.dir/fig13_colocated_throughput.cc.o"
  "CMakeFiles/fig13_colocated_throughput.dir/fig13_colocated_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_colocated_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
