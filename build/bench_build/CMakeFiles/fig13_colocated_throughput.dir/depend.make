# Empty dependencies file for fig13_colocated_throughput.
# This may be replaced when dependencies are built.
