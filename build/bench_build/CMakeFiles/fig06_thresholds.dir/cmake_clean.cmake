file(REMOVE_RECURSE
  "../bench/fig06_thresholds"
  "../bench/fig06_thresholds.pdb"
  "CMakeFiles/fig06_thresholds.dir/fig06_thresholds.cc.o"
  "CMakeFiles/fig06_thresholds.dir/fig06_thresholds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
