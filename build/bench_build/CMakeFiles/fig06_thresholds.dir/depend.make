# Empty dependencies file for fig06_thresholds.
# This may be replaced when dependencies are built.
