# Empty dependencies file for ext01_sqrt_oram.
# This may be replaced when dependencies are built.
