file(REMOVE_RECURSE
  "../bench/ext01_sqrt_oram"
  "../bench/ext01_sqrt_oram.pdb"
  "CMakeFiles/ext01_sqrt_oram.dir/ext01_sqrt_oram.cc.o"
  "CMakeFiles/ext01_sqrt_oram.dir/ext01_sqrt_oram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext01_sqrt_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
