# Empty compiler generated dependencies file for abl03_dhe_sizing.
# This may be replaced when dependencies are built.
