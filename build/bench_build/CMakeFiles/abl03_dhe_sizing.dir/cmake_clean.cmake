file(REMOVE_RECURSE
  "../bench/abl03_dhe_sizing"
  "../bench/abl03_dhe_sizing.pdb"
  "CMakeFiles/abl03_dhe_sizing.dir/abl03_dhe_sizing.cc.o"
  "CMakeFiles/abl03_dhe_sizing.dir/abl03_dhe_sizing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_dhe_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
