file(REMOVE_RECURSE
  "../bench/tab06_memory_footprint"
  "../bench/tab06_memory_footprint.pdb"
  "CMakeFiles/tab06_memory_footprint.dir/tab06_memory_footprint.cc.o"
  "CMakeFiles/tab06_memory_footprint.dir/tab06_memory_footprint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
