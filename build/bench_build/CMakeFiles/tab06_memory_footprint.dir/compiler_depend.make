# Empty compiler generated dependencies file for tab06_memory_footprint.
# This may be replaced when dependencies are built.
