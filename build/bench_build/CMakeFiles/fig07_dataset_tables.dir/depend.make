# Empty dependencies file for fig07_dataset_tables.
# This may be replaced when dependencies are built.
