file(REMOVE_RECURSE
  "../bench/fig07_dataset_tables"
  "../bench/fig07_dataset_tables.pdb"
  "CMakeFiles/fig07_dataset_tables.dir/fig07_dataset_tables.cc.o"
  "CMakeFiles/fig07_dataset_tables.dir/fig07_dataset_tables.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dataset_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
