file(REMOVE_RECURSE
  "../bench/fig05_llm_latency_vs_dim"
  "../bench/fig05_llm_latency_vs_dim.pdb"
  "CMakeFiles/fig05_llm_latency_vs_dim.dir/fig05_llm_latency_vs_dim.cc.o"
  "CMakeFiles/fig05_llm_latency_vs_dim.dir/fig05_llm_latency_vs_dim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_llm_latency_vs_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
