# Empty dependencies file for fig05_llm_latency_vs_dim.
# This may be replaced when dependencies are built.
