# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_llm_latency_vs_dim.
