file(REMOVE_RECURSE
  "../bench/fig09_colocation_split"
  "../bench/fig09_colocation_split.pdb"
  "CMakeFiles/fig09_colocation_split.dir/fig09_colocation_split.cc.o"
  "CMakeFiles/fig09_colocation_split.dir/fig09_colocation_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_colocation_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
