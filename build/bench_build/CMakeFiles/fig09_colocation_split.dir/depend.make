# Empty dependencies file for fig09_colocation_split.
# This may be replaced when dependencies are built.
