file(REMOVE_RECURSE
  "../bench/abl04_scan_vectorization"
  "../bench/abl04_scan_vectorization.pdb"
  "CMakeFiles/abl04_scan_vectorization.dir/abl04_scan_vectorization.cc.o"
  "CMakeFiles/abl04_scan_vectorization.dir/abl04_scan_vectorization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_scan_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
