# Empty compiler generated dependencies file for abl04_scan_vectorization.
# This may be replaced when dependencies are built.
