# Empty dependencies file for tab01_complexity.
# This may be replaced when dependencies are built.
