file(REMOVE_RECURSE
  "../bench/tab01_complexity"
  "../bench/tab01_complexity.pdb"
  "CMakeFiles/tab01_complexity.dir/tab01_complexity.cc.o"
  "CMakeFiles/tab01_complexity.dir/tab01_complexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
