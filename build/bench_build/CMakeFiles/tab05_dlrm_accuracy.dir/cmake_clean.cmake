file(REMOVE_RECURSE
  "../bench/tab05_dlrm_accuracy"
  "../bench/tab05_dlrm_accuracy.pdb"
  "CMakeFiles/tab05_dlrm_accuracy.dir/tab05_dlrm_accuracy.cc.o"
  "CMakeFiles/tab05_dlrm_accuracy.dir/tab05_dlrm_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_dlrm_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
