# Empty dependencies file for tab05_dlrm_accuracy.
# This may be replaced when dependencies are built.
