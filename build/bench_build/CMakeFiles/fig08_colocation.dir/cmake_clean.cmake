file(REMOVE_RECURSE
  "../bench/fig08_colocation"
  "../bench/fig08_colocation.pdb"
  "CMakeFiles/fig08_colocation.dir/fig08_colocation.cc.o"
  "CMakeFiles/fig08_colocation.dir/fig08_colocation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
