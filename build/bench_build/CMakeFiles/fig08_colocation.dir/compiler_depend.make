# Empty compiler generated dependencies file for fig08_colocation.
# This may be replaced when dependencies are built.
