file(REMOVE_RECURSE
  "../bench/fig15_llm_latency"
  "../bench/fig15_llm_latency.pdb"
  "CMakeFiles/fig15_llm_latency.dir/fig15_llm_latency.cc.o"
  "CMakeFiles/fig15_llm_latency.dir/fig15_llm_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_llm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
