# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("tensor")
subdirs("oblivious")
subdirs("nn")
subdirs("oram")
subdirs("dhe")
subdirs("sidechannel")
subdirs("tee")
subdirs("core")
subdirs("dlrm")
subdirs("llm")
subdirs("profile")
subdirs("bench_util")
