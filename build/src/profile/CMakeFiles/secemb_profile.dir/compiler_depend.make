# Empty compiler generated dependencies file for secemb_profile.
# This may be replaced when dependencies are built.
