file(REMOVE_RECURSE
  "libsecemb_profile.a"
)
