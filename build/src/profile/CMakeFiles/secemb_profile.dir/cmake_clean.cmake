file(REMOVE_RECURSE
  "CMakeFiles/secemb_profile.dir/profiler.cc.o"
  "CMakeFiles/secemb_profile.dir/profiler.cc.o.d"
  "libsecemb_profile.a"
  "libsecemb_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
