file(REMOVE_RECURSE
  "libsecemb_llm.a"
)
