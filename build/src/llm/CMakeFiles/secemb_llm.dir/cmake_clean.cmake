file(REMOVE_RECURSE
  "CMakeFiles/secemb_llm.dir/attention.cc.o"
  "CMakeFiles/secemb_llm.dir/attention.cc.o.d"
  "CMakeFiles/secemb_llm.dir/corpus.cc.o"
  "CMakeFiles/secemb_llm.dir/corpus.cc.o.d"
  "CMakeFiles/secemb_llm.dir/gpt.cc.o"
  "CMakeFiles/secemb_llm.dir/gpt.cc.o.d"
  "CMakeFiles/secemb_llm.dir/gpt_config.cc.o"
  "CMakeFiles/secemb_llm.dir/gpt_config.cc.o.d"
  "libsecemb_llm.a"
  "libsecemb_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
