# Empty compiler generated dependencies file for secemb_llm.
# This may be replaced when dependencies are built.
