file(REMOVE_RECURSE
  "libsecemb_nn.a"
)
