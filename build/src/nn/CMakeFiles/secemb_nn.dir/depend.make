# Empty dependencies file for secemb_nn.
# This may be replaced when dependencies are built.
