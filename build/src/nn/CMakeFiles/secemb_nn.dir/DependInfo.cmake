
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/secemb_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/secemb_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/secemb_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/secemb_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/secemb_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/secemb_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/secemb_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/secemb_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/secemb_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/secemb_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/secemb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/oblivious/CMakeFiles/secemb_oblivious.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
