file(REMOVE_RECURSE
  "CMakeFiles/secemb_nn.dir/embedding.cc.o"
  "CMakeFiles/secemb_nn.dir/embedding.cc.o.d"
  "CMakeFiles/secemb_nn.dir/layers.cc.o"
  "CMakeFiles/secemb_nn.dir/layers.cc.o.d"
  "CMakeFiles/secemb_nn.dir/loss.cc.o"
  "CMakeFiles/secemb_nn.dir/loss.cc.o.d"
  "CMakeFiles/secemb_nn.dir/optim.cc.o"
  "CMakeFiles/secemb_nn.dir/optim.cc.o.d"
  "CMakeFiles/secemb_nn.dir/serialize.cc.o"
  "CMakeFiles/secemb_nn.dir/serialize.cc.o.d"
  "libsecemb_nn.a"
  "libsecemb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
