# Empty compiler generated dependencies file for secemb_tee.
# This may be replaced when dependencies are built.
