file(REMOVE_RECURSE
  "CMakeFiles/secemb_tee.dir/tee_model.cc.o"
  "CMakeFiles/secemb_tee.dir/tee_model.cc.o.d"
  "libsecemb_tee.a"
  "libsecemb_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
