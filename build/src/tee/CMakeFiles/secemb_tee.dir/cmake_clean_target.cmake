file(REMOVE_RECURSE
  "libsecemb_tee.a"
)
