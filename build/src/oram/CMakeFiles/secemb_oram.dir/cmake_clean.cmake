file(REMOVE_RECURSE
  "CMakeFiles/secemb_oram.dir/crypto.cc.o"
  "CMakeFiles/secemb_oram.dir/crypto.cc.o.d"
  "CMakeFiles/secemb_oram.dir/footprint.cc.o"
  "CMakeFiles/secemb_oram.dir/footprint.cc.o.d"
  "CMakeFiles/secemb_oram.dir/sqrt_oram.cc.o"
  "CMakeFiles/secemb_oram.dir/sqrt_oram.cc.o.d"
  "CMakeFiles/secemb_oram.dir/tree_oram.cc.o"
  "CMakeFiles/secemb_oram.dir/tree_oram.cc.o.d"
  "libsecemb_oram.a"
  "libsecemb_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
