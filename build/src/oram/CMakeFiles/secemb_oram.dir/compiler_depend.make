# Empty compiler generated dependencies file for secemb_oram.
# This may be replaced when dependencies are built.
