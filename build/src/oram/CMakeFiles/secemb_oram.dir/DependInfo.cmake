
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oram/crypto.cc" "src/oram/CMakeFiles/secemb_oram.dir/crypto.cc.o" "gcc" "src/oram/CMakeFiles/secemb_oram.dir/crypto.cc.o.d"
  "/root/repo/src/oram/footprint.cc" "src/oram/CMakeFiles/secemb_oram.dir/footprint.cc.o" "gcc" "src/oram/CMakeFiles/secemb_oram.dir/footprint.cc.o.d"
  "/root/repo/src/oram/sqrt_oram.cc" "src/oram/CMakeFiles/secemb_oram.dir/sqrt_oram.cc.o" "gcc" "src/oram/CMakeFiles/secemb_oram.dir/sqrt_oram.cc.o.d"
  "/root/repo/src/oram/tree_oram.cc" "src/oram/CMakeFiles/secemb_oram.dir/tree_oram.cc.o" "gcc" "src/oram/CMakeFiles/secemb_oram.dir/tree_oram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oblivious/CMakeFiles/secemb_oblivious.dir/DependInfo.cmake"
  "/root/repo/build/src/sidechannel/CMakeFiles/secemb_sidechannel.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/secemb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/secemb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
