file(REMOVE_RECURSE
  "libsecemb_oram.a"
)
