file(REMOVE_RECURSE
  "libsecemb_dhe.a"
)
