# Empty dependencies file for secemb_dhe.
# This may be replaced when dependencies are built.
