file(REMOVE_RECURSE
  "CMakeFiles/secemb_dhe.dir/dhe.cc.o"
  "CMakeFiles/secemb_dhe.dir/dhe.cc.o.d"
  "CMakeFiles/secemb_dhe.dir/hashing.cc.o"
  "CMakeFiles/secemb_dhe.dir/hashing.cc.o.d"
  "libsecemb_dhe.a"
  "libsecemb_dhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_dhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
