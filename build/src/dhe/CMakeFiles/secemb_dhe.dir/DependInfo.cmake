
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dhe/dhe.cc" "src/dhe/CMakeFiles/secemb_dhe.dir/dhe.cc.o" "gcc" "src/dhe/CMakeFiles/secemb_dhe.dir/dhe.cc.o.d"
  "/root/repo/src/dhe/hashing.cc" "src/dhe/CMakeFiles/secemb_dhe.dir/hashing.cc.o" "gcc" "src/dhe/CMakeFiles/secemb_dhe.dir/hashing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/secemb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/oblivious/CMakeFiles/secemb_oblivious.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/secemb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
