
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dhe_generator.cc" "src/core/CMakeFiles/secemb_core.dir/dhe_generator.cc.o" "gcc" "src/core/CMakeFiles/secemb_core.dir/dhe_generator.cc.o.d"
  "/root/repo/src/core/embedding_generator.cc" "src/core/CMakeFiles/secemb_core.dir/embedding_generator.cc.o" "gcc" "src/core/CMakeFiles/secemb_core.dir/embedding_generator.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/core/CMakeFiles/secemb_core.dir/factory.cc.o" "gcc" "src/core/CMakeFiles/secemb_core.dir/factory.cc.o.d"
  "/root/repo/src/core/feature_set.cc" "src/core/CMakeFiles/secemb_core.dir/feature_set.cc.o" "gcc" "src/core/CMakeFiles/secemb_core.dir/feature_set.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/secemb_core.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/secemb_core.dir/hybrid.cc.o.d"
  "/root/repo/src/core/table_generators.cc" "src/core/CMakeFiles/secemb_core.dir/table_generators.cc.o" "gcc" "src/core/CMakeFiles/secemb_core.dir/table_generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oram/CMakeFiles/secemb_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/dhe/CMakeFiles/secemb_dhe.dir/DependInfo.cmake"
  "/root/repo/build/src/sidechannel/CMakeFiles/secemb_sidechannel.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/secemb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/secemb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/oblivious/CMakeFiles/secemb_oblivious.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/secemb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
