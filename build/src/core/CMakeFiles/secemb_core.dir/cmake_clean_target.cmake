file(REMOVE_RECURSE
  "libsecemb_core.a"
)
