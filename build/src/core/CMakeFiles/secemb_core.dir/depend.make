# Empty dependencies file for secemb_core.
# This may be replaced when dependencies are built.
