file(REMOVE_RECURSE
  "CMakeFiles/secemb_core.dir/dhe_generator.cc.o"
  "CMakeFiles/secemb_core.dir/dhe_generator.cc.o.d"
  "CMakeFiles/secemb_core.dir/embedding_generator.cc.o"
  "CMakeFiles/secemb_core.dir/embedding_generator.cc.o.d"
  "CMakeFiles/secemb_core.dir/factory.cc.o"
  "CMakeFiles/secemb_core.dir/factory.cc.o.d"
  "CMakeFiles/secemb_core.dir/feature_set.cc.o"
  "CMakeFiles/secemb_core.dir/feature_set.cc.o.d"
  "CMakeFiles/secemb_core.dir/hybrid.cc.o"
  "CMakeFiles/secemb_core.dir/hybrid.cc.o.d"
  "CMakeFiles/secemb_core.dir/table_generators.cc.o"
  "CMakeFiles/secemb_core.dir/table_generators.cc.o.d"
  "libsecemb_core.a"
  "libsecemb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
