# Empty dependencies file for secemb_bench_util.
# This may be replaced when dependencies are built.
