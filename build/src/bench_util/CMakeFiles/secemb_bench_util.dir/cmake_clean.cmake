file(REMOVE_RECURSE
  "CMakeFiles/secemb_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/secemb_bench_util.dir/bench_util.cc.o.d"
  "libsecemb_bench_util.a"
  "libsecemb_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
