file(REMOVE_RECURSE
  "libsecemb_bench_util.a"
)
