file(REMOVE_RECURSE
  "libsecemb_tensor.a"
)
