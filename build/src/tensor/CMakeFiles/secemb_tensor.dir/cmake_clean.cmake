file(REMOVE_RECURSE
  "CMakeFiles/secemb_tensor.dir/gemm.cc.o"
  "CMakeFiles/secemb_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/secemb_tensor.dir/parallel.cc.o"
  "CMakeFiles/secemb_tensor.dir/parallel.cc.o.d"
  "CMakeFiles/secemb_tensor.dir/rng.cc.o"
  "CMakeFiles/secemb_tensor.dir/rng.cc.o.d"
  "CMakeFiles/secemb_tensor.dir/tensor.cc.o"
  "CMakeFiles/secemb_tensor.dir/tensor.cc.o.d"
  "libsecemb_tensor.a"
  "libsecemb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
