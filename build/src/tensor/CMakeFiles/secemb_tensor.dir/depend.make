# Empty dependencies file for secemb_tensor.
# This may be replaced when dependencies are built.
