
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oblivious/ct_ops.cc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/ct_ops.cc.o" "gcc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/ct_ops.cc.o.d"
  "/root/repo/src/oblivious/scan.cc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/scan.cc.o" "gcc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/scan.cc.o.d"
  "/root/repo/src/oblivious/sort.cc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/sort.cc.o" "gcc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/sort.cc.o.d"
  "/root/repo/src/oblivious/vector_scan.cc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/vector_scan.cc.o" "gcc" "src/oblivious/CMakeFiles/secemb_oblivious.dir/vector_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/secemb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
