file(REMOVE_RECURSE
  "libsecemb_oblivious.a"
)
