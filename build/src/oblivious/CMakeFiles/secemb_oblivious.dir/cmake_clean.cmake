file(REMOVE_RECURSE
  "CMakeFiles/secemb_oblivious.dir/ct_ops.cc.o"
  "CMakeFiles/secemb_oblivious.dir/ct_ops.cc.o.d"
  "CMakeFiles/secemb_oblivious.dir/scan.cc.o"
  "CMakeFiles/secemb_oblivious.dir/scan.cc.o.d"
  "CMakeFiles/secemb_oblivious.dir/sort.cc.o"
  "CMakeFiles/secemb_oblivious.dir/sort.cc.o.d"
  "CMakeFiles/secemb_oblivious.dir/vector_scan.cc.o"
  "CMakeFiles/secemb_oblivious.dir/vector_scan.cc.o.d"
  "libsecemb_oblivious.a"
  "libsecemb_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
