# Empty dependencies file for secemb_oblivious.
# This may be replaced when dependencies are built.
