file(REMOVE_RECURSE
  "libsecemb_dlrm.a"
)
