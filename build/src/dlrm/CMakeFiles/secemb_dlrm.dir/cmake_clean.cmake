file(REMOVE_RECURSE
  "CMakeFiles/secemb_dlrm.dir/config.cc.o"
  "CMakeFiles/secemb_dlrm.dir/config.cc.o.d"
  "CMakeFiles/secemb_dlrm.dir/dataset.cc.o"
  "CMakeFiles/secemb_dlrm.dir/dataset.cc.o.d"
  "CMakeFiles/secemb_dlrm.dir/interaction.cc.o"
  "CMakeFiles/secemb_dlrm.dir/interaction.cc.o.d"
  "CMakeFiles/secemb_dlrm.dir/model.cc.o"
  "CMakeFiles/secemb_dlrm.dir/model.cc.o.d"
  "libsecemb_dlrm.a"
  "libsecemb_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
