# Empty dependencies file for secemb_dlrm.
# This may be replaced when dependencies are built.
