
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sidechannel/attacker.cc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/attacker.cc.o" "gcc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/attacker.cc.o.d"
  "/root/repo/src/sidechannel/cache_model.cc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/cache_model.cc.o" "gcc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/cache_model.cc.o.d"
  "/root/repo/src/sidechannel/oblivious_check.cc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/oblivious_check.cc.o" "gcc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/oblivious_check.cc.o.d"
  "/root/repo/src/sidechannel/page_channel.cc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/page_channel.cc.o" "gcc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/page_channel.cc.o.d"
  "/root/repo/src/sidechannel/trace.cc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/trace.cc.o" "gcc" "src/sidechannel/CMakeFiles/secemb_sidechannel.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/secemb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
