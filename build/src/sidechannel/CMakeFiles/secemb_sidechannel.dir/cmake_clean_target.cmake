file(REMOVE_RECURSE
  "libsecemb_sidechannel.a"
)
