# Empty compiler generated dependencies file for secemb_sidechannel.
# This may be replaced when dependencies are built.
