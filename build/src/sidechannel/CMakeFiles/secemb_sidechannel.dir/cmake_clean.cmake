file(REMOVE_RECURSE
  "CMakeFiles/secemb_sidechannel.dir/attacker.cc.o"
  "CMakeFiles/secemb_sidechannel.dir/attacker.cc.o.d"
  "CMakeFiles/secemb_sidechannel.dir/cache_model.cc.o"
  "CMakeFiles/secemb_sidechannel.dir/cache_model.cc.o.d"
  "CMakeFiles/secemb_sidechannel.dir/oblivious_check.cc.o"
  "CMakeFiles/secemb_sidechannel.dir/oblivious_check.cc.o.d"
  "CMakeFiles/secemb_sidechannel.dir/page_channel.cc.o"
  "CMakeFiles/secemb_sidechannel.dir/page_channel.cc.o.d"
  "CMakeFiles/secemb_sidechannel.dir/trace.cc.o"
  "CMakeFiles/secemb_sidechannel.dir/trace.cc.o.d"
  "libsecemb_sidechannel.a"
  "libsecemb_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secemb_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
