file(REMOVE_RECURSE
  "CMakeFiles/sidechannel_test.dir/sidechannel_test.cc.o"
  "CMakeFiles/sidechannel_test.dir/sidechannel_test.cc.o.d"
  "sidechannel_test"
  "sidechannel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidechannel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
