# Empty compiler generated dependencies file for sidechannel_test.
# This may be replaced when dependencies are built.
