# Empty compiler generated dependencies file for page_channel_test.
# This may be replaced when dependencies are built.
