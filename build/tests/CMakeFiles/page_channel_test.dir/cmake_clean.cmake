file(REMOVE_RECURSE
  "CMakeFiles/page_channel_test.dir/page_channel_test.cc.o"
  "CMakeFiles/page_channel_test.dir/page_channel_test.cc.o.d"
  "page_channel_test"
  "page_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
