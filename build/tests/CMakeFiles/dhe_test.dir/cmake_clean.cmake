file(REMOVE_RECURSE
  "CMakeFiles/dhe_test.dir/dhe_test.cc.o"
  "CMakeFiles/dhe_test.dir/dhe_test.cc.o.d"
  "dhe_test"
  "dhe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
