# Empty dependencies file for dhe_test.
# This may be replaced when dependencies are built.
