file(REMOVE_RECURSE
  "CMakeFiles/sqrt_oram_test.dir/sqrt_oram_test.cc.o"
  "CMakeFiles/sqrt_oram_test.dir/sqrt_oram_test.cc.o.d"
  "sqrt_oram_test"
  "sqrt_oram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqrt_oram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
