# Empty dependencies file for sqrt_oram_test.
# This may be replaced when dependencies are built.
