file(REMOVE_RECURSE
  "CMakeFiles/oblivious_test.dir/oblivious_test.cc.o"
  "CMakeFiles/oblivious_test.dir/oblivious_test.cc.o.d"
  "oblivious_test"
  "oblivious_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblivious_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
