# Empty dependencies file for oblivious_test.
# This may be replaced when dependencies are built.
