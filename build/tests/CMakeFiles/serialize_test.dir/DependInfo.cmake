
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/serialize_test.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/serialize_test.dir/serialize_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/secemb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dlrm/CMakeFiles/secemb_dlrm.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/secemb_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/secemb_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_util/CMakeFiles/secemb_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/secemb_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/secemb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/dhe/CMakeFiles/secemb_dhe.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/secemb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/oblivious/CMakeFiles/secemb_oblivious.dir/DependInfo.cmake"
  "/root/repo/build/src/sidechannel/CMakeFiles/secemb_sidechannel.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/secemb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
