file(REMOVE_RECURSE
  "CMakeFiles/dlrm_test.dir/dlrm_test.cc.o"
  "CMakeFiles/dlrm_test.dir/dlrm_test.cc.o.d"
  "dlrm_test"
  "dlrm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
