file(REMOVE_RECURSE
  "CMakeFiles/threshold_persist_test.dir/threshold_persist_test.cc.o"
  "CMakeFiles/threshold_persist_test.dir/threshold_persist_test.cc.o.d"
  "threshold_persist_test"
  "threshold_persist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_persist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
