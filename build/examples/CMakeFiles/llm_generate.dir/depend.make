# Empty dependencies file for llm_generate.
# This may be replaced when dependencies are built.
