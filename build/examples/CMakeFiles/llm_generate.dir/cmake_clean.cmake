file(REMOVE_RECURSE
  "CMakeFiles/llm_generate.dir/llm_generate.cpp.o"
  "CMakeFiles/llm_generate.dir/llm_generate.cpp.o.d"
  "llm_generate"
  "llm_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
