file(REMOVE_RECURSE
  "CMakeFiles/dlrm_serving.dir/dlrm_serving.cpp.o"
  "CMakeFiles/dlrm_serving.dir/dlrm_serving.cpp.o.d"
  "dlrm_serving"
  "dlrm_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
