# Empty compiler generated dependencies file for dlrm_serving.
# This may be replaced when dependencies are built.
