/**
 * @file
 * Tests for the profiling module (threshold finding, contention model)
 * and the TEE cost model.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "profile/profiler.h"
#include "tee/tee_model.h"

namespace secemb::profile {
namespace {

TEST(ProfilerTest, MeasuresPositiveLatency)
{
    Rng rng(1);
    auto gen = core::MakeGenerator(core::GenKind::kLinearScan, 256, 16,
                                   rng);
    const double ns = MeasureGeneratorLatencyNs(*gen, 8, rng, 2);
    EXPECT_GT(ns, 0.0);
}

TEST(ProfilerTest, ThresholdsProducedForEveryConfiguration)
{
    ProfileConfig cfg;
    cfg.batch_sizes = {8, 32};
    cfg.thread_counts = {1};
    cfg.table_sizes = {64, 512, 4096};
    cfg.dim = 16;
    cfg.reps = 1;
    Rng rng(2);
    const ProfileResult r = ProfileThresholds(cfg, rng);
    EXPECT_EQ(r.thresholds.entries().size(), 2u);
    EXPECT_EQ(r.points.size(), 2u * 3u);
    for (const auto& e : r.thresholds.entries()) {
        EXPECT_GE(e.table_size_threshold, 64);
        EXPECT_LE(e.table_size_threshold, 4096);
    }
}

TEST(ProfilerTest, ScanLatencyGrowsWithTableSize)
{
    // The structural fact behind Fig. 4: scan cost is O(n), DHE is O(1).
    ProfileConfig cfg;
    cfg.batch_sizes = {8};
    cfg.thread_counts = {1};
    cfg.table_sizes = {128, 8192};
    cfg.dim = 16;
    cfg.reps = 2;
    Rng rng(3);
    const ProfileResult r = ProfileThresholds(cfg, rng);
    ASSERT_EQ(r.points.size(), 2u);
    EXPECT_GT(r.points[1].scan_ns, 4.0 * r.points[0].scan_ns);
    // DHE latency is size-independent (Uniform config).
    EXPECT_LT(std::abs(r.points[1].dhe_ns - r.points[0].dhe_ns),
              3.0 * std::min(r.points[0].dhe_ns, r.points[1].dhe_ns));
}

TEST(ContentionModelTest, MonotoneInCopies)
{
    ContentionModel m;
    const double base = 1e6;
    double prev = 0.0;
    for (int copies = 1; copies <= 48; copies *= 2) {
        const double l = m.Latency(base, copies, true);
        EXPECT_GT(l, prev);
        prev = l;
    }
}

TEST(ContentionModelTest, MemoryBoundSuffersMore)
{
    ContentionModel m;
    EXPECT_GT(m.Latency(1e6, 24, true), m.Latency(1e6, 24, false));
    EXPECT_DOUBLE_EQ(m.Latency(1e6, 1, true), 1e6);
}

TEST(ContentionModelTest, OversubscriptionTimeshares)
{
    ContentionModel m;
    m.cores = 4;
    const double l8 = m.Latency(1e6, 8, false);
    EXPECT_GT(l8, 2.0 * 1e6 * 0.99);  // at least the 2x timeshare factor
}

TEST(ContentionModelTest, MixedLatencyInterpolates)
{
    ContentionModel m;
    const double all_scan = m.MixedLatency(1e6, 24, 0, true);
    const double all_dhe_neighbours = m.MixedLatency(1e6, 1, 23, true);
    EXPECT_GT(all_scan, all_dhe_neighbours);
}

TEST(ContentionModelTest, MixedLatencyDegeneratesToHomogeneous)
{
    // A mixed fleet with only one technique present must agree exactly
    // with the homogeneous model.
    ContentionModel m;
    for (int copies : {1, 4, 24, 48}) {
        EXPECT_DOUBLE_EQ(m.MixedLatency(1e6, copies, 0, true),
                         m.Latency(1e6, copies, true))
            << "all-scan, copies=" << copies;
        EXPECT_DOUBLE_EQ(m.MixedLatency(1e6, 0, copies, false),
                         m.Latency(1e6, copies, false))
            << "all-DHE, copies=" << copies;
    }
}

TEST(ContentionModelTest, MixedLatencySingleCopyIsBaseline)
{
    ContentionModel m;
    EXPECT_DOUBLE_EQ(m.MixedLatency(1e6, 1, 0, true), 1e6);
    EXPECT_DOUBLE_EQ(m.MixedLatency(1e6, 0, 1, false), 1e6);
}

TEST(ContentionModelTest, MixedLatencyMonotoneInScanNeighbours)
{
    // Adding memory-bound neighbours can only slow a model down, and
    // swapping a DHE neighbour for a scan neighbour slows it further
    // (scan_interference > dhe_interference).
    ContentionModel m;
    double prev = 0.0;
    for (int scan_copies = 1; scan_copies <= 32; scan_copies *= 2) {
        const double l = m.MixedLatency(1e6, scan_copies, 4, true);
        EXPECT_GT(l, prev) << "scan_copies=" << scan_copies;
        prev = l;
    }
    EXPECT_GT(m.MixedLatency(1e6, 8, 4, true),
              m.MixedLatency(1e6, 4, 8, true));
}

TEST(ProfilerTest, ThresholdsDeterministicUnderFixedSeed)
{
    // ProfileThresholds is documented "deterministic given rng's seed".
    // Wall-clock latencies are inherently noisy, so determinism here means
    // (a) the RNG stream is consumed identically — a second run from the
    // same seed leaves the generator in the same state — and (b) the
    // result structure (points, threshold keys, threshold bounds) is
    // identical across runs.
    ProfileConfig cfg;
    cfg.batch_sizes = {8};
    cfg.thread_counts = {1};
    cfg.table_sizes = {64, 512};
    cfg.dim = 16;
    cfg.reps = 1;

    Rng rng_a(77), rng_b(77);
    const ProfileResult a = ProfileThresholds(cfg, rng_a);
    const ProfileResult b = ProfileThresholds(cfg, rng_b);

    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(rng_a.Next(), rng_b.Next()) << "draw " << i;
    }

    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].batch_size, b.points[i].batch_size);
        EXPECT_EQ(a.points[i].nthreads, b.points[i].nthreads);
        EXPECT_EQ(a.points[i].table_size, b.points[i].table_size);
    }
    ASSERT_EQ(a.thresholds.entries().size(),
              b.thresholds.entries().size());
    for (size_t i = 0; i < a.thresholds.entries().size(); ++i) {
        const auto& ea = a.thresholds.entries()[i];
        const auto& eb = b.thresholds.entries()[i];
        EXPECT_EQ(ea.batch_size, eb.batch_size);
        EXPECT_EQ(ea.nthreads, eb.nthreads);
        EXPECT_GE(ea.table_size_threshold, 64);
        EXPECT_LE(ea.table_size_threshold, 512);
        EXPECT_GE(eb.table_size_threshold, 64);
        EXPECT_LE(eb.table_size_threshold, 512);
    }
}

}  // namespace
}  // namespace secemb::profile

namespace secemb::tee {
namespace {

TEST(TeeModelTest, VariantKnobs)
{
    const auto orig = TeeCostModel::ForVariant(ZtVariant::kOriginal);
    EXPECT_GT(orig.ocall_ns, 0.0);
    EXPECT_FALSE(orig.inline_select);
    EXPECT_FALSE(orig.enable_recursion);

    const auto gramine = TeeCostModel::ForVariant(ZtVariant::kGramine);
    EXPECT_EQ(gramine.ocall_ns, 0.0);
    EXPECT_FALSE(gramine.inline_select);

    const auto opt = TeeCostModel::ForVariant(ZtVariant::kGramineOpt);
    EXPECT_EQ(opt.ocall_ns, 0.0);
    EXPECT_TRUE(opt.inline_select);
    EXPECT_TRUE(opt.enable_recursion);
}

TEST(TeeModelTest, SpinWaitsApproximately)
{
    const auto start = std::chrono::steady_clock::now();
    Spin(2e6);  // 2 ms
    const double elapsed =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(elapsed, 1.8e6);
}

TEST(TeeModelTest, SpinZeroReturnsImmediately)
{
    const auto start = std::chrono::steady_clock::now();
    Spin(0.0);
    Spin(-5.0);
    const double elapsed =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed, 1e6);
}

TEST(TeeModelTest, VariantNames)
{
    EXPECT_STREQ(ZtVariantName(ZtVariant::kOriginal), "ZT-Original");
    EXPECT_STREQ(ZtVariantName(ZtVariant::kGramine), "ZT-Gramine");
    EXPECT_STREQ(ZtVariantName(ZtVariant::kGramineOpt),
                 "ZT-Gramine-Opt");
}

}  // namespace
}  // namespace secemb::tee
