/**
 * @file
 * Page-cache property tests (`ctest -L concurrency`): thousands of seeded
 * operations checked against a naive reference model (the store is just
 * an array; the cache must never serve anything else), pin semantics
 * (pinned frames excluded from eviction, all-pinned is a typed error, not
 * a hang), dirty write-back on eviction, and a TSan-facing stress case of
 * concurrent readers, writers, and a flush/invalidate thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/page_cache.h"
#include "tensor/rng.h"

namespace secemb::store {
namespace {

constexpr int64_t kPages = 64;
constexpr int64_t kPageBytes = 64;

std::unique_ptr<PageCache>
MakeCache(int64_t cache_pages)
{
    StoreConfig config;
    config.backend = StoreBackend::kMemory;
    config.page_bytes = kPageBytes;
    config.cache_pages = cache_pages;
    std::unique_ptr<PageCache> cache;
    ThrowIfError(MakePageCache(config, kPages, &cache));
    return cache;
}

/** Reference model: the store is an array of pages, nothing more. */
struct Model
{
    std::vector<std::vector<uint8_t>> pages;

    explicit Model()
        : pages(static_cast<size_t>(kPages),
                std::vector<uint8_t>(static_cast<size_t>(kPageBytes), 0))
    {
    }
};

TEST(PageCacheTest, SeededOpsMatchReferenceModel)
{
    // 2000 operations drawn from {read, write, pinned-mutate, flush,
    // invalidate-clean, sync} with a hot-page bias so frames genuinely
    // churn through hit / miss / evict / write-back transitions.
    auto cache = MakeCache(/*cache_pages=*/8);
    Model model;
    Rng rng(0x9a6e0cacULL);

    std::vector<uint8_t> buf(static_cast<size_t>(kPageBytes));
    for (int op = 0; op < 2000; ++op) {
        // 3/4 of page draws land in an 12-page hot set.
        const int64_t page =
            rng.NextBounded(4) != 0
                ? static_cast<int64_t>(rng.NextBounded(12))
                : static_cast<int64_t>(rng.NextBounded(kPages));
        switch (rng.NextBounded(8)) {
          case 0:
          case 1:
          case 2: {  // read, verify against the model
              ASSERT_TRUE(cache->ReadPage(page, buf).ok());
              EXPECT_EQ(0, std::memcmp(buf.data(),
                                       model.pages[static_cast<size_t>(
                                                       page)]
                                           .data(),
                                       static_cast<size_t>(kPageBytes)))
                  << "op " << op << " page " << page;
              break;
          }
          case 3:
          case 4: {  // whole-page write
              for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
              model.pages[static_cast<size_t>(page)].assign(buf.begin(),
                                                            buf.end());
              ASSERT_TRUE(cache->WritePage(page, buf).ok());
              break;
          }
          case 5: {  // pinned in-place mutation
              PinnedPage pin;
              ASSERT_TRUE(cache->Pin(page, &pin).ok());
              ASSERT_TRUE(pin.valid());
              EXPECT_EQ(pin.page(), page);
              const auto at =
                  static_cast<size_t>(rng.NextBounded(kPageBytes));
              const auto value = static_cast<uint8_t>(rng.Next());
              pin.data()[at] = value;
              model.pages[static_cast<size_t>(page)][at] = value;
              pin.MarkDirty();
              break;
          }
          case 6:
              ASSERT_TRUE(op % 2 == 0 ? cache->FlushDirty().ok()
                                      : cache->Sync().ok());
              break;
          default:
              cache->InvalidateClean();
              break;
        }
    }

    // Drain the cache and audit the store directly: every page must hold
    // exactly the model's bytes (dirty frames written back, clean frames
    // never corrupted).
    ASSERT_TRUE(cache->FlushDirty().ok());
    for (int64_t p = 0; p < kPages; ++p) {
        ASSERT_TRUE(cache->store().ReadPage(p, buf).ok());
        EXPECT_EQ(0, std::memcmp(buf.data(),
                                 model.pages[static_cast<size_t>(p)]
                                     .data(),
                                 static_cast<size_t>(kPageBytes)))
            << "store page " << p;
    }

    const PageCacheStats stats = cache->stats();
    EXPECT_GT(stats.hits, 0);
    EXPECT_GT(stats.misses, 0);
    EXPECT_GT(stats.evictions, 0);
    EXPECT_GT(stats.writebacks, 0);
}

TEST(PageCacheTest, CapacityClampsToStoreSize)
{
    auto cache = MakeCache(/*cache_pages=*/10000);
    EXPECT_EQ(cache->capacity_pages(), kPages);
    auto tiny = MakeCache(/*cache_pages=*/0);
    EXPECT_EQ(tiny->capacity_pages(), 1);
}

TEST(PageCacheTest, PinnedFramesSurviveEvictionPressure)
{
    auto cache = MakeCache(/*cache_pages=*/4);
    std::vector<uint8_t> buf(static_cast<size_t>(kPageBytes), 0xAB);
    ASSERT_TRUE(cache->WritePage(0, buf).ok());

    PinnedPage pin;
    ASSERT_TRUE(cache->Pin(0, &pin).ok());
    // Stream every other page through the 4-frame cache; frame 0 must
    // neither move nor be recycled while pinned.
    const uint8_t* before = pin.data();
    std::vector<uint8_t> out(static_cast<size_t>(kPageBytes));
    for (int64_t p = 1; p < kPages; ++p) {
        ASSERT_TRUE(cache->ReadPage(p, out).ok());
    }
    EXPECT_EQ(pin.data(), before);
    EXPECT_EQ(pin.data()[0], 0xAB);
}

TEST(PageCacheTest, AllFramesPinnedIsTypedNotAHang)
{
    auto cache = MakeCache(/*cache_pages=*/2);
    PinnedPage pin_a, pin_b;
    ASSERT_TRUE(cache->Pin(0, &pin_a).ok());
    ASSERT_TRUE(cache->Pin(1, &pin_b).ok());

    std::vector<uint8_t> out(static_cast<size_t>(kPageBytes));
    EXPECT_EQ(cache->ReadPage(2, out).code,
              serving::StatusCode::kResourceExhausted);

    // Releasing one pin frees a frame and the same read succeeds.
    pin_a.Release();
    EXPECT_TRUE(cache->ReadPage(2, out).ok());
}

TEST(PageCacheTest, DirtyPageWrittenBackOnEviction)
{
    auto cache = MakeCache(/*cache_pages=*/2);
    std::vector<uint8_t> buf(static_cast<size_t>(kPageBytes), 0x5A);
    ASSERT_TRUE(cache->WritePage(7, buf).ok());

    // Two more distinct pages force page 7's frame to be recycled; the
    // dirty payload must land in the store without any explicit flush.
    std::vector<uint8_t> out(static_cast<size_t>(kPageBytes));
    ASSERT_TRUE(cache->ReadPage(1, out).ok());
    ASSERT_TRUE(cache->ReadPage(2, out).ok());
    ASSERT_TRUE(cache->store().ReadPage(7, out).ok());
    EXPECT_EQ(out, buf);
}

TEST(PageCacheTest, ConcurrentReadersWritersAndFlusher)
{
    // Writers own disjoint page sets and stamp word 0 with the page
    // index; readers assert any page they observe is internally
    // consistent (a complete write, never a torn mix); a maintenance
    // thread flushes, syncs, and invalidates concurrently. Run under
    // -DSECEMB_SANITIZE=thread via `ctest -L concurrency`.
    auto cache = MakeCache(/*cache_pages=*/4);
    constexpr int kWriters = 2, kReaders = 2, kOpsPerThread = 400;

    std::vector<uint8_t> init(static_cast<size_t>(kPageBytes), 0);
    for (int64_t p = 0; p < kPages; ++p) {
        uint32_t tag = static_cast<uint32_t>(p);
        std::memcpy(init.data(), &tag, sizeof(tag));
        ASSERT_TRUE(cache->WritePage(p, init).ok());
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&cache, &failures, w] {
            Rng rng(1000 + static_cast<uint64_t>(w));
            std::vector<uint8_t> page(static_cast<size_t>(kPageBytes));
            for (int i = 0; i < kOpsPerThread; ++i) {
                const int64_t p = static_cast<int64_t>(
                    rng.NextBounded(kPages / kWriters) * kWriters + w);
                const uint32_t tag = static_cast<uint32_t>(p);
                const auto fill = static_cast<uint8_t>(rng.Next());
                std::fill(page.begin(), page.end(), fill);
                std::memcpy(page.data(), &tag, sizeof(tag));
                if (!cache->WritePage(p, page).ok()) failures++;
            }
        });
    }
    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&cache, &failures, r] {
            Rng rng(2000 + static_cast<uint64_t>(r));
            std::vector<uint8_t> page(static_cast<size_t>(kPageBytes));
            for (int i = 0; i < kOpsPerThread; ++i) {
                const auto p =
                    static_cast<int64_t>(rng.NextBounded(kPages));
                if (!cache->ReadPage(p, page).ok()) {
                    failures++;
                    continue;
                }
                uint32_t tag = 0;
                std::memcpy(&tag, page.data(), sizeof(tag));
                if (tag != static_cast<uint32_t>(p)) failures++;
                // Bytes past the tag must be one writer's fill value.
                for (size_t b = sizeof(tag) + 1; b < page.size(); ++b) {
                    if (page[b] != page[sizeof(tag)]) {
                        failures++;
                        break;
                    }
                }
            }
        });
    }
    threads.emplace_back([&cache] {
        for (int i = 0; i < kOpsPerThread; ++i) {
            switch (i % 3) {
              case 0: (void)cache->FlushDirty(); break;
              case 1: (void)cache->Sync(); break;
              default: cache->InvalidateClean(); break;
            }
        }
    });
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);

    // Post-quiescence audit: the store holds a consistent page image.
    ASSERT_TRUE(cache->FlushDirty().ok());
    std::vector<uint8_t> page(static_cast<size_t>(kPageBytes));
    for (int64_t p = 0; p < kPages; ++p) {
        ASSERT_TRUE(cache->store().ReadPage(p, page).ok());
        uint32_t tag = 0;
        std::memcpy(&tag, page.data(), sizeof(tag));
        EXPECT_EQ(tag, static_cast<uint32_t>(p));
    }
}

TEST(PageCacheTest, ReattachAfterAbandonUnderLoadSeesNoTornPages)
{
    // Crash-abandonment under concurrent load: writers keep every page
    // self-consistent (tag word + uniform fill), a flusher syncs
    // concurrently, and then the cache is dropped WITHOUT a final flush —
    // the dirty frames die with the "process". Reattaching (create=false)
    // must find every page either never-flushed (zero) or exactly one
    // self-consistent image: the CRC'd page-atomic store may lose recent
    // writes on a crash but may never expose a torn mix of two.
    const std::string path =
        testing::TempDir() + "secemb_reattach_load.store";
    std::remove(path.c_str());
    StoreConfig config;
    config.backend = StoreBackend::kFile;
    config.path = path;
    config.page_bytes = kPageBytes;
    config.cache_pages = 8;
    {
        std::unique_ptr<PageCache> cache;
        ThrowIfError(MakePageCache(config, kPages, &cache));
        std::atomic<int> failures{0};
        std::vector<std::thread> threads;
        for (int w = 0; w < 4; ++w) {
            threads.emplace_back([&cache, &failures, w] {
                Rng rng(3000 + static_cast<uint64_t>(w));
                std::vector<uint8_t> page(
                    static_cast<size_t>(kPageBytes));
                for (int i = 0; i < 300; ++i) {
                    const int64_t p = static_cast<int64_t>(
                        rng.NextBounded(kPages / 4) * 4 + w);
                    const uint32_t tag = static_cast<uint32_t>(p);
                    std::fill(page.begin(), page.end(),
                              static_cast<uint8_t>(rng.Next()));
                    std::memcpy(page.data(), &tag, sizeof(tag));
                    if (!cache->WritePage(p, page).ok()) failures++;
                }
            });
        }
        threads.emplace_back([&cache] {
            for (int i = 0; i < 100; ++i) {
                (void)(i % 2 == 0 ? cache->FlushDirty() : cache->Sync());
            }
        });
        for (auto& t : threads) t.join();
        ASSERT_EQ(failures.load(), 0);
    }  // dirty frames abandoned here

    config.create = false;
    std::unique_ptr<PageCache> reattached;
    ThrowIfError(MakePageCache(config, kPages, &reattached));
    std::vector<uint8_t> page(static_cast<size_t>(kPageBytes));
    for (int64_t p = 0; p < kPages; ++p) {
        ASSERT_TRUE(reattached->ReadPage(p, page).ok())
            << "page " << p << " failed CRC after reattach";
        uint32_t tag = 0;
        std::memcpy(&tag, page.data(), sizeof(tag));
        const bool never_flushed = tag == 0 && page[sizeof(tag)] == 0;
        bool consistent = tag == static_cast<uint32_t>(p);
        for (size_t b = sizeof(tag) + 1; consistent && b < page.size();
             ++b) {
            consistent = page[b] == page[sizeof(tag)];
        }
        EXPECT_TRUE(never_flushed || consistent) << "page " << p;
    }
    std::remove(path.c_str());
}

}  // namespace
}  // namespace secemb::store
