/**
 * @file
 * Tests for Deep Hash Embedding: hash encoder properties, config sizing
 * rules, decoder behaviour, training, and table materialisation.
 */

#include <gtest/gtest.h>

#include <climits>
#include <cmath>
#include <cstring>
#include <set>

#include "dhe/dhe.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "tensor/kernels/kernels.h"

namespace secemb::dhe {
namespace {

TEST(HashEncoderTest, ValuesInRange)
{
    Rng rng(1);
    HashEncoder enc(64, 1000000, rng);
    std::vector<int64_t> ids{0, 1, 42, 999999, 10000000};
    const Tensor out = enc.Encode(ids);
    EXPECT_EQ(out.shape(), (Shape{5, 64}));
    for (int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_GE(out.at(i), -1.0f);
        EXPECT_LE(out.at(i), 1.0f);
    }
}

TEST(HashEncoderTest, Deterministic)
{
    Rng rng1(7), rng2(7);
    HashEncoder a(32, 1000000, rng1), b(32, 1000000, rng2);
    std::vector<int64_t> ids{5, 123456};
    EXPECT_TRUE(a.Encode(ids).AllClose(b.Encode(ids)));
}

TEST(HashEncoderTest, DistinctIdsGetDistinctCodes)
{
    Rng rng(2);
    HashEncoder enc(16, 1000000, rng);
    std::set<std::vector<float>> codes;
    for (int64_t id = 0; id < 200; ++id) {
        const Tensor c = enc.Encode(std::vector<int64_t>{id});
        codes.insert(
            std::vector<float>(c.data(), c.data() + c.numel()));
    }
    // Universal hashing with k=16 over m=1e6 collides with negligible
    // probability across 200 ids.
    EXPECT_EQ(codes.size(), 200u);
}

TEST(HashEncoderTest, MarginalRoughlyUniform)
{
    Rng rng(3);
    HashEncoder enc(1, 1000, rng);
    // With one hash function, bucket occupancy over many ids should be
    // roughly uniform: mean of encoded value ~ 0.
    std::vector<int64_t> ids;
    for (int64_t i = 0; i < 20000; ++i) ids.push_back(i);
    const Tensor out = enc.Encode(ids);
    EXPECT_NEAR(out.Mean(), 0.0f, 0.05f);
}

TEST(HashEncoderTest, LargeIdsDoNotOverflow)
{
    Rng rng(4);
    HashEncoder enc(8, 1000000, rng);
    std::vector<int64_t> ids{(int64_t{1} << 62), (int64_t{1} << 62) + 1};
    const Tensor out = enc.Encode(ids);
    for (int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(out.at(i)));
        EXPECT_GE(out.at(i), -1.0f);
        EXPECT_LE(out.at(i), 1.0f);
    }
}

/**
 * Id-domain edge cases pinned against the kept __int128 scalar
 * reference: negatives hash via the two's-complement bit pattern (the
 * header's contract), zero and INT64_MAX are in-domain, and the
 * vectorized tiers must match the reference bit-exactly — not merely
 * within tolerance — at every thread count.
 */
TEST(HashEncoderTest, EdgeIdsMatchReferenceBitExactlyOnEveryTier)
{
    Rng rng(5);
    using kernels::Isa;
    // Odd k exercises the SIMD kernels' scalar tail; m values cover the
    // Barrett path (1e6, 2), m = p, and the identity path (m > p).
    for (int64_t m : std::vector<int64_t>{1000000, 2, HashEncoder::kPrime,
                                          int64_t{1} << 40}) {
        HashEncoder enc(67, m, rng);
        const std::vector<int64_t> ids{
            0,        1,         -1,       -42,
            LLONG_MIN, LLONG_MAX, -1000000, HashEncoder::kPrime,
            HashEncoder::kPrime + 1};
        Tensor ref({static_cast<int64_t>(ids.size()), 67});
        enc.EncodeReference(ids, ref);
        for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
            if (!kernels::IsaSupported(isa)) continue;
            kernels::SetIsaForTest(static_cast<int>(isa));
            for (int nthreads : {1, 4}) {
                const Tensor got = enc.Encode(ids, nthreads);
                EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                                      sizeof(float) *
                                          static_cast<size_t>(
                                              got.numel())),
                          0)
                    << "m=" << m << " isa=" << kernels::IsaName(isa)
                    << " nthreads=" << nthreads;
            }
            kernels::SetIsaForTest(-1);
        }
    }
}

TEST(HashEncoderTest, NegativeIdsDoNotCollideWithPositives)
{
    // id -> uint64_t(id) is a bijection: -1 hashes as 2^64 - 1, not as
    // 1, so the sign bit carries hash information.
    Rng rng(6);
    HashEncoder enc(16, 1000000, rng);
    const Tensor neg = enc.Encode(std::vector<int64_t>{-1});
    const Tensor pos = enc.Encode(std::vector<int64_t>{1});
    bool any_diff = false;
    for (int64_t j = 0; j < 16; ++j) {
        if (neg.at(j) != pos.at(j)) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(DheConfigTest, UniformMatchesPaper)
{
    const DheConfig c = DheConfig::Uniform(64);
    EXPECT_EQ(c.k, 1024);
    EXPECT_EQ(c.fc_hidden, (std::vector<int64_t>{512, 256}));
    EXPECT_EQ(c.out_dim, 64);
    EXPECT_EQ(c.hash_buckets, 1000000);
}

TEST(DheConfigTest, VariedShrinksWithTableSize)
{
    const DheConfig big = DheConfig::Varied(10000000, 64);
    const DheConfig mid = DheConfig::Varied(100000, 64);
    const DheConfig small = DheConfig::Varied(100, 64);
    EXPECT_EQ(big.k, 1024);  // at/above 1e7: full size
    EXPECT_LT(mid.k, big.k);
    EXPECT_LE(small.k, mid.k);
    EXPECT_GE(small.k, 128);  // floor
    EXPECT_LT(mid.DecoderParams(), big.DecoderParams());
}

TEST(DheConfigTest, VariedScalesEighthPerDecade)
{
    const DheConfig c6 = DheConfig::Varied(1000000, 64);
    EXPECT_EQ(c6.k, 128);  // 1024 * 0.125
    const DheConfig c6h = DheConfig::Varied(3162278, 64);  // 10^6.5
    EXPECT_NEAR(static_cast<double>(c6h.k), 362.0, 3.0);  // geometric
    const DheConfig c5 = DheConfig::Varied(100000, 64);
    EXPECT_EQ(c5.k, 128);  // floored: accuracy-preserving minimum
}

TEST(DheConfigTest, ForLlmDoublesDim)
{
    const DheConfig c = DheConfig::ForLlm(1024);
    EXPECT_EQ(c.k, 2048);
    EXPECT_EQ(c.fc_hidden, (std::vector<int64_t>{2048, 2048, 2048}));
    EXPECT_EQ(c.out_dim, 1024);
}

TEST(DheConfigTest, DecoderParamsFormula)
{
    DheConfig c;
    c.k = 10;
    c.fc_hidden = {4};
    c.out_dim = 3;
    EXPECT_EQ(c.DecoderParams(), 10 * 4 + 4 + 4 * 3 + 3);
}

TEST(DheEmbeddingTest, OutputShapeAndDeterminism)
{
    Rng rng(5);
    DheConfig cfg;
    cfg.k = 32;
    cfg.fc_hidden = {16};
    cfg.out_dim = 8;
    DheEmbedding dhe(cfg, rng);
    std::vector<int64_t> ids{1, 2, 3};
    const Tensor a = dhe.Forward(ids);
    const Tensor b = dhe.Forward(ids);
    EXPECT_EQ(a.shape(), (Shape{3, 8}));
    EXPECT_TRUE(a.AllClose(b));
}

TEST(DheEmbeddingTest, DifferentIdsDifferentEmbeddings)
{
    Rng rng(6);
    DheConfig cfg;
    cfg.k = 32;
    cfg.fc_hidden = {16};
    cfg.out_dim = 8;
    DheEmbedding dhe(cfg, rng);
    const Tensor a = dhe.Forward(std::vector<int64_t>{10});
    const Tensor b = dhe.Forward(std::vector<int64_t>{11});
    EXPECT_FALSE(a.AllClose(b));
}

TEST(DheEmbeddingTest, ToTableMatchesForward)
{
    Rng rng(7);
    DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    DheEmbedding dhe(cfg, rng);
    const Tensor table = dhe.ToTable(20);
    EXPECT_EQ(table.shape(), (Shape{20, 4}));
    for (int64_t id : {0, 7, 19}) {
        const Tensor row = dhe.Forward(std::vector<int64_t>{id});
        for (int64_t j = 0; j < 4; ++j) {
            EXPECT_NEAR(table.at(id, j), row.at(0, j), 1e-5f)
                << "id " << id;
        }
    }
}

TEST(DheEmbeddingTest, ParamBytesCountsDecoderAndHashes)
{
    Rng rng(8);
    DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    DheEmbedding dhe(cfg, rng);
    EXPECT_EQ(dhe.ParamBytes(),
              cfg.DecoderParams() * 4 + cfg.k * 16);
}

TEST(DheEmbeddingTest, TrainsToFitTargets)
{
    // DHE should be able to memorise a small table of target embeddings,
    // the mechanism behind the paper's "sized for no loss" claim.
    Rng rng(9);
    DheConfig cfg;
    cfg.k = 64;
    cfg.fc_hidden = {64};
    cfg.out_dim = 4;
    DheEmbedding dhe(cfg, rng);
    const Tensor targets = Tensor::Randn({16, 4}, rng);
    std::vector<int64_t> ids;
    for (int64_t i = 0; i < 16; ++i) ids.push_back(i);

    nn::Adam opt(dhe.Parameters(), 0.01f);
    float mse = 0.0f;
    for (int step = 0; step < 400; ++step) {
        opt.ZeroGrad();
        Tensor out = dhe.Forward(ids);
        Tensor grad = out.Sub(targets);
        mse = grad.SquaredNorm() / grad.numel();
        grad.ScaleInPlace(2.0f / grad.numel());
        dhe.Backward(grad);
        opt.Step();
    }
    EXPECT_LT(mse, 0.02f);
}

TEST(DheEmbeddingTest, FootprintIndependentOfTableSize)
{
    // The core memory claim: DHE footprint does not grow with the
    // feature cardinality it serves.
    Rng rng(10);
    DheEmbedding dhe(DheConfig::Uniform(16), rng);
    const int64_t bytes = dhe.ParamBytes();
    // A 1e7-row table at dim 16 would be 640 MB; the uniform DHE is
    // under 4 MB.
    EXPECT_LT(bytes, int64_t{4} * 1024 * 1024);
    EXPECT_GT(bytes, 0);
}

}  // namespace
}  // namespace secemb::dhe
