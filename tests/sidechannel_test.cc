/**
 * @file
 * Tests for the side-channel substrate: cache model, eviction-set
 * attacker (Fig. 3 reproduction), and the obliviousness checkers.
 */

#include <gtest/gtest.h>

#include "core/table_generators.h"
#include "sidechannel/attacker.h"
#include "sidechannel/cache_model.h"
#include "sidechannel/oblivious_check.h"
#include "sidechannel/trace.h"

namespace secemb::sidechannel {
namespace {

CacheConfig
SmallCache()
{
    CacheConfig c;
    c.num_sets = 64;
    c.ways = 4;
    c.line_bytes = 64;
    return c;
}

TEST(CacheModelTest, MissThenHit)
{
    CacheModel cache(SmallCache());
    EXPECT_FALSE(cache.Access(0x1000));
    EXPECT_TRUE(cache.Access(0x1000));
    EXPECT_TRUE(cache.Access(0x1004));  // same line
    EXPECT_FALSE(cache.Access(0x1040));  // next line
}

TEST(CacheModelTest, SetIndexWrapsBySets)
{
    CacheModel cache(SmallCache());
    const uint64_t span = 64ULL * 64ULL;
    EXPECT_EQ(cache.SetIndex(0x0), cache.SetIndex(span));
    EXPECT_NE(cache.SetIndex(0x0), cache.SetIndex(0x40));
}

TEST(CacheModelTest, LruEvictsOldest)
{
    CacheModel cache(SmallCache());
    const uint64_t span = 64ULL * 64ULL;  // same-set stride
    // Fill the 4 ways of set 0.
    for (int i = 0; i < 4; ++i) cache.Access(i * span);
    // All hits now.
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(cache.Access(i * span));
    // Fifth line evicts the LRU (line 0).
    cache.Access(4 * span);
    EXPECT_FALSE(cache.Access(0));
}

TEST(CacheModelTest, FlushInvalidatesEverything)
{
    CacheModel cache(SmallCache());
    cache.Access(0x2000);
    cache.Flush();
    EXPECT_FALSE(cache.Access(0x2000));
}

TEST(CacheModelTest, AccessRangeTouchesAllLines)
{
    CacheModel cache(SmallCache());
    cache.AccessRange(0x1000, 200);  // spans 4 lines (0x1000..0x10c0)
    EXPECT_TRUE(cache.Access(0x1000));
    EXPECT_TRUE(cache.Access(0x1040));
    EXPECT_TRUE(cache.Access(0x1080));
    EXPECT_TRUE(cache.Access(0x10c0));
}

TEST(TraceTest, AddressSpaceRegionsDisjoint)
{
    AddressSpace space;
    const uint64_t a = space.Reserve(1000);
    const uint64_t b = space.Reserve(1000);
    EXPECT_GE(b, a + 1000);
    EXPECT_EQ(a % 64, 0u);
}

TEST(TraceTest, RecorderCollectsAndClears)
{
    TraceRecorder rec;
    rec.Record(0x10, 4, false);
    rec.Record(0x20, 8, true);
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.trace()[1].addr, 0x20u);
    EXPECT_TRUE(rec.trace()[1].is_write);
    rec.Clear();
    EXPECT_EQ(rec.size(), 0u);
}

TEST(ObliviousCheckTest, CompareTracesIdentical)
{
    std::vector<MemoryAccess> a{{1, 4, false}, {2, 4, true}};
    const auto r = CompareTraces(a, a);
    EXPECT_TRUE(r.identical);
    EXPECT_TRUE(r.same_shape);
}

TEST(ObliviousCheckTest, CompareTracesDivergence)
{
    std::vector<MemoryAccess> a{{1, 4, false}, {2, 4, true}};
    std::vector<MemoryAccess> b{{1, 4, false}, {3, 4, true}};
    const auto r = CompareTraces(a, b);
    EXPECT_FALSE(r.identical);
    EXPECT_TRUE(r.same_shape);  // same sizes and r/w pattern
    EXPECT_EQ(r.first_divergence, 1u);
}

TEST(ObliviousCheckTest, ChiSquaredUniformSmallForUniform)
{
    std::vector<int64_t> counts(16, 1000);
    EXPECT_NEAR(ChiSquaredUniform(counts), 0.0, 1e-9);
    counts[0] = 5000;
    EXPECT_GT(ChiSquaredUniform(counts), 100.0);
}

TEST(ObliviousCheckTest, MutualInformationExtremes)
{
    // Perfect leak: guess == secret.
    std::vector<int64_t> secrets, guesses;
    for (int64_t i = 0; i < 400; ++i) {
        secrets.push_back(i % 4);
        guesses.push_back(i % 4);
    }
    EXPECT_NEAR(EmpiricalMutualInformation(secrets, guesses, 4), 2.0,
                1e-6);
    // No leak: constant guess.
    std::fill(guesses.begin(), guesses.end(), 0);
    EXPECT_NEAR(EmpiricalMutualInformation(secrets, guesses, 4), 0.0,
                1e-6);
}

// --- The Fig. 3 attack, against this library's own generators ----------

class AttackFixture : public ::testing::Test
{
  protected:
    static constexpr int64_t kRows = 256;
    static constexpr int64_t kDim = 16;  // 64-byte rows = 1 line

    CacheConfig
    AttackCache()
    {
        CacheConfig c;
        c.num_sets = 1024;
        c.ways = 8;
        return c;
    }
};

TEST_F(AttackFixture, RecoversIndexFromNonSecureLookup)
{
    Rng rng(42);
    core::TableLookup victim(Tensor::Randn({kRows, kDim}, rng));
    TraceRecorder rec;
    victim.set_recorder(&rec);

    CacheModel cache(AttackCache());
    EvictionSetAttacker attacker(cache, victim.trace_base(), kDim * 4,
                                 /*monitored_rows=*/25);

    int correct = 0;
    for (int64_t secret = 0; secret < 25; ++secret) {
        rec.Clear();
        std::vector<int64_t> batch{secret};
        Tensor out({1, kDim});
        victim.Generate(batch, out);
        const auto obs = attacker.Attack(rec.trace(), /*repeats=*/10);
        correct += (obs.guessed_index == secret) ? 1 : 0;
    }
    // The paper's attack recovers the index reliably; our model attack
    // should too (it is noise-free).
    EXPECT_GE(correct, 24);
}

TEST_F(AttackFixture, LearnsNothingFromLinearScan)
{
    Rng rng(43);
    core::LinearScanTable victim(Tensor::Randn({kRows, kDim}, rng));
    TraceRecorder rec;
    victim.set_recorder(&rec);

    CacheModel cache(AttackCache());
    EvictionSetAttacker attacker(cache, victim.trace_base(), kDim * 4, 25);

    std::vector<int64_t> secrets, guesses;
    for (int64_t secret = 0; secret < 25; ++secret) {
        rec.Clear();
        std::vector<int64_t> batch{secret};
        Tensor out({1, kDim});
        victim.Generate(batch, out);
        const auto obs = attacker.Attack(rec.trace(), 10);
        secrets.push_back(secret);
        guesses.push_back(obs.guessed_index);
    }
    // Linear scan touches every set identically: the guess carries no
    // information about the secret.
    EXPECT_LT(EmpiricalMutualInformation(secrets, guesses, 25), 0.1);
}

TEST_F(AttackFixture, LinearScanTraceIdenticalAcrossSecrets)
{
    Rng rng(44);
    core::LinearScanTable victim(Tensor::Randn({kRows, kDim}, rng));
    TraceRecorder rec;
    victim.set_recorder(&rec);

    std::vector<int64_t> a{3};
    Tensor out({1, kDim});
    victim.Generate(a, out);
    const auto trace_a = rec.trace();
    rec.Clear();
    std::vector<int64_t> b{200};
    victim.Generate(b, out);
    const auto r = CompareTraces(trace_a, rec.trace());
    EXPECT_TRUE(r.identical) << r.detail;
}

TEST_F(AttackFixture, NonSecureTraceDiffersAcrossSecrets)
{
    Rng rng(45);
    core::TableLookup victim(Tensor::Randn({kRows, kDim}, rng));
    TraceRecorder rec;
    victim.set_recorder(&rec);

    std::vector<int64_t> a{3};
    Tensor out({1, kDim});
    victim.Generate(a, out);
    const auto trace_a = rec.trace();
    rec.Clear();
    std::vector<int64_t> b{200};
    victim.Generate(b, out);
    EXPECT_FALSE(CompareTraces(trace_a, rec.trace()).identical);
}

}  // namespace
}  // namespace secemb::sidechannel
