/**
 * @file
 * Tests for the FeatureSet multi-feature embedding layer.
 */

#include <gtest/gtest.h>

#include "core/feature_set.h"

namespace secemb::core {
namespace {

const std::vector<int64_t> kSizes{16, 200, 5000};
constexpr int64_t kDim = 8;

TEST(FeatureSetTest, HomogeneousBuildsOnePerFeature)
{
    Rng rng(1);
    FeatureSet set = FeatureSet::Homogeneous(GenKind::kLinearScan,
                                             kSizes, kDim, rng);
    EXPECT_EQ(set.size(), 3);
    for (int64_t f = 0; f < 3; ++f) {
        EXPECT_EQ(set.feature(f).num_rows(), kSizes[static_cast<size_t>(f)]);
        EXPECT_EQ(set.feature(f).dim(), kDim);
    }
    EXPECT_TRUE(set.IsOblivious());
}

TEST(FeatureSetTest, GenerateShapesAndValues)
{
    Rng rng(2);
    FeatureSet set = FeatureSet::Homogeneous(GenKind::kIndexLookup,
                                             kSizes, kDim, rng);
    const std::vector<std::vector<int64_t>> indices{{0, 1}, {5, 6},
                                                    {7, 4999}};
    const auto embs = set.Generate(indices);
    ASSERT_EQ(embs.size(), 3u);
    for (const auto& e : embs) {
        EXPECT_EQ(e.shape(), (Shape{2, kDim}));
    }
    // Per-feature values match direct generation.
    const Tensor direct = set.feature(2).GenerateBatch(indices[2]);
    EXPECT_TRUE(embs[2].AllClose(direct));
}

TEST(FeatureSetTest, GeneratePooledShapes)
{
    Rng rng(3);
    FeatureSet set = FeatureSet::Homogeneous(GenKind::kLinearScan,
                                             kSizes, kDim, rng);
    const std::vector<std::vector<int64_t>> indices{
        {0, 1, 2}, {5}, {7, 8, 9, 10}};
    const std::vector<std::vector<int64_t>> offsets{
        {0, 2, 3}, {0, 1}, {0, 0, 4}};
    const auto embs = set.GeneratePooled(indices, offsets);
    EXPECT_EQ(embs[0].shape(), (Shape{2, kDim}));
    EXPECT_EQ(embs[1].shape(), (Shape{1, kDim}));
    EXPECT_EQ(embs[2].shape(), (Shape{2, kDim}));
    // Empty first bag of feature 2 is all zeros.
    for (int64_t j = 0; j < kDim; ++j) {
        EXPECT_FLOAT_EQ(embs[2].at(0, j), 0.0f);
    }
}

TEST(FeatureSetTest, HybridAllocatesByThreshold)
{
    ThresholdTable thresholds;
    thresholds.Add({32, 1, 1000});
    Rng rng(4);
    FeatureSet set = FeatureSet::Hybrid(kSizes, kDim, /*varied=*/true,
                                        thresholds, 32, 1, rng);
    const auto census = set.TechniqueCensus();
    int scans = 0, dhes = 0;
    for (const auto& [name, count] : census) {
        if (name == "Hybrid(LinearScan)") scans = count;
        if (name == "Hybrid(DHE)") dhes = count;
    }
    EXPECT_EQ(scans, 2);  // 16 and 200 < 1000
    EXPECT_EQ(dhes, 1);   // 5000 >= 1000
    EXPECT_TRUE(set.IsOblivious());
}

TEST(FeatureSetTest, ReconfigureFlipsTechniques)
{
    ThresholdTable low, high;
    low.Add({32, 1, 10});
    high.Add({32, 1, 100000});
    Rng rng(5);
    FeatureSet set = FeatureSet::Hybrid(kSizes, kDim, true, low, 32, 1,
                                        rng);
    // With a tiny threshold everything runs on DHE.
    for (const auto& [name, count] : set.TechniqueCensus()) {
        EXPECT_EQ(name, "Hybrid(DHE)");
        EXPECT_EQ(count, 3);
    }
    set.Reconfigure(high, 32, 1);
    for (const auto& [name, count] : set.TechniqueCensus()) {
        EXPECT_EQ(name, "Hybrid(LinearScan)");
        EXPECT_EQ(count, 3);
    }
}

TEST(FeatureSetTest, FootprintIsSumOfFeatures)
{
    Rng rng(6);
    FeatureSet set = FeatureSet::Homogeneous(GenKind::kIndexLookup,
                                             kSizes, kDim, rng);
    int64_t expect = 0;
    for (int64_t s : kSizes) expect += s * kDim * 4;
    EXPECT_EQ(set.MemoryFootprintBytes(), expect);
}

TEST(FeatureSetTest, NonObliviousDetected)
{
    Rng rng(7);
    FeatureSet set = FeatureSet::Homogeneous(GenKind::kLinearScan,
                                             {16}, kDim, rng);
    EXPECT_TRUE(set.IsOblivious());
    set.Add(MakeGenerator(GenKind::kIndexLookup, 16, kDim, rng));
    EXPECT_FALSE(set.IsOblivious());
}

TEST(FeatureSetTest, TakeGeneratorsTransfersOwnership)
{
    Rng rng(8);
    FeatureSet set = FeatureSet::Homogeneous(GenKind::kLinearScan,
                                             kSizes, kDim, rng);
    auto gens = set.TakeGenerators();
    EXPECT_EQ(gens.size(), 3u);
    EXPECT_EQ(set.size(), 0);
}

}  // namespace
}  // namespace secemb::core
