/**
 * @file
 * Unit tests for the obliviousness certification harness: trace
 * canonicalization, divergence reporting, golden serialization, the
 * statistical leakage check, and — crucially — negative tests proving the
 * engine actually catches planted secret-dependent behaviour.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/table_generators.h"
#include "verify/golden.h"
#include "verify/harness.h"

namespace secemb::verify {
namespace {

// --- AddressSpace ---------------------------------------------------------

TEST(AddressSpaceTest, ReserveFindRoundTrip)
{
    sidechannel::AddressSpace space;
    const uint64_t a = space.Reserve(100, 64, "alpha");
    const uint64_t b = space.Reserve(256, 64, "beta");
    ASSERT_NE(a, b);

    const sidechannel::AddressRegion* ra = space.Find(a + 99);
    ASSERT_NE(ra, nullptr);
    EXPECT_EQ(ra->name, "alpha");
    EXPECT_EQ(ra->base, a);

    const sidechannel::AddressRegion* rb = space.Find(b);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(rb->name, "beta");

    EXPECT_EQ(space.Find(0), nullptr);
    EXPECT_EQ(space.Regions().size(), 2u);
}

TEST(AddressSpaceTest, RegionsDoNotOverlap)
{
    sidechannel::AddressSpace space;
    std::vector<uint64_t> bases;
    for (int i = 0; i < 16; ++i) {
        bases.push_back(space.Reserve(1000 + i * 7, 64, "r"));
    }
    const auto regions = space.Regions();
    for (size_t i = 1; i < regions.size(); ++i) {
        EXPECT_GE(regions[i].base,
                  regions[i - 1].base + regions[i - 1].bytes);
    }
}

// --- canonicalization -----------------------------------------------------

std::vector<sidechannel::MemoryAccess>
Trace(std::initializer_list<sidechannel::MemoryAccess> list)
{
    return list;
}

TEST(CanonicalTest, FirstTouchRenumberingIsInstanceIndependent)
{
    // Two "runs" touch equivalent regions reserved at different absolute
    // addresses; canonical form must agree.
    sidechannel::AddressSpace space;
    const uint64_t t1 = space.Reserve(512, 64, "table");
    const uint64_t s1 = space.Reserve(128, 64, "stash");
    const uint64_t t2 = space.Reserve(512, 64, "table");
    const uint64_t s2 = space.Reserve(128, 64, "stash");

    const CanonicalTrace a = Canonicalize(
        Trace({{t1 + 64, 32, false}, {s1, 16, true}, {t1, 32, false}}),
        space);
    const CanonicalTrace b = Canonicalize(
        Trace({{t2 + 64, 32, false}, {s2, 16, true}, {t2, 32, false}}),
        space);

    EXPECT_FALSE(CompareCanonical(a, b).diverged);
    ASSERT_EQ(a.accesses.size(), 3u);
    EXPECT_EQ(a.accesses[0].region, 0);
    EXPECT_EQ(a.accesses[0].offset, 64u);
    EXPECT_EQ(a.accesses[1].region, 1);
    EXPECT_EQ(a.RegionName(0), "table");
    EXPECT_EQ(a.RegionName(1), "stash");
}

TEST(CanonicalTest, RegionIdentityIncludesNameAndSize)
{
    sidechannel::AddressSpace space;
    const uint64_t t = space.Reserve(512, 64, "table");
    const uint64_t s = space.Reserve(512, 64, "stash");
    const CanonicalTrace a =
        Canonicalize(Trace({{t, 32, false}}), space);
    const CanonicalTrace b =
        Canonicalize(Trace({{s, 32, false}}), space);
    const TraceDivergence d = CompareCanonical(a, b);
    EXPECT_TRUE(d.diverged);
    EXPECT_NE(d.detail.find("region mismatch"), std::string::npos);
}

TEST(CanonicalTest, UnregisteredAddressNeverPassesComparison)
{
    sidechannel::AddressSpace space;
    const CanonicalTrace a =
        Canonicalize(Trace({{0xdead, 4, false}}), space);
    EXPECT_EQ(a.accesses[0].region, -1);
    // Even self-comparison fails: instrumentation holes must be loud.
    const TraceDivergence d = CompareCanonical(a, a);
    EXPECT_TRUE(d.diverged);
    EXPECT_NE(d.detail.find("unregistered"), std::string::npos);
}

TEST(CanonicalTest, DivergenceDetailNamesRegionOffsetAndOp)
{
    sidechannel::AddressSpace space;
    const uint64_t t = space.Reserve(512, 64, "oram.tree");
    const CanonicalTrace a =
        Canonicalize(Trace({{t + 0x40, 64, false}}), space);
    const CanonicalTrace b =
        Canonicalize(Trace({{t + 0x80, 64, true}}), space);
    const TraceDivergence d = CompareCanonical(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.index, 0u);
    EXPECT_NE(d.detail.find("oram.tree+0x40"), std::string::npos);
    EXPECT_NE(d.detail.find("oram.tree+0x80"), std::string::npos);
    EXPECT_NE(d.detail.find("R"), std::string::npos);
    EXPECT_NE(d.detail.find("W"), std::string::npos);
}

TEST(CanonicalTest, ShapeComparisonFreesOffsetsOnly)
{
    sidechannel::AddressSpace space;
    const uint64_t t = space.Reserve(512, 64, "table");
    const CanonicalTrace a =
        Canonicalize(Trace({{t, 64, false}, {t + 64, 64, true}}), space);
    const CanonicalTrace b =
        Canonicalize(Trace({{t + 128, 64, false}, {t, 64, true}}), space);
    EXPECT_FALSE(CompareCanonicalShape(a, b).diverged);
    EXPECT_TRUE(CompareCanonical(a, b).diverged);

    const CanonicalTrace c =
        Canonicalize(Trace({{t, 64, false}}), space);
    const TraceDivergence d = CompareCanonicalShape(a, c);
    EXPECT_TRUE(d.diverged);
    EXPECT_NE(d.detail.find("length mismatch"), std::string::npos);

    const CanonicalTrace e =
        Canonicalize(Trace({{t, 32, false}, {t + 64, 64, true}}), space);
    EXPECT_TRUE(CompareCanonicalShape(a, e).diverged);
}

TEST(CanonicalTest, ToModelTracePlacesRegionsOnDisjointStrides)
{
    sidechannel::AddressSpace space;
    const uint64_t t = space.Reserve(512, 64, "table");
    const uint64_t s = space.Reserve(128, 64, "stash");
    const auto model = ToModelTrace(Canonicalize(
        Trace({{t + 8, 4, false}, {s + 16, 4, true}}), space));
    ASSERT_EQ(model.size(), 2u);
    EXPECT_EQ(model[0].addr, kCanonicalRegionStride + 8);
    EXPECT_EQ(model[1].addr, 2 * kCanonicalRegionStride + 16);
    EXPECT_TRUE(model[1].is_write);
}

// --- golden serialization -------------------------------------------------

TEST(GoldenTest, SerializeParseRoundTrip)
{
    sidechannel::AddressSpace space;
    const uint64_t t = space.Reserve(512, 64, "table");
    const CanonicalTrace original = Canonicalize(
        Trace({{t, 64, false}, {t + 0x1c0, 4, true}}), space);

    const std::string text = SerializeTrace(original, "some_config");
    CanonicalTrace parsed;
    std::string name, error;
    ASSERT_TRUE(ParseTrace(text, &parsed, &name, &error)) << error;
    EXPECT_EQ(name, "some_config");
    EXPECT_FALSE(CompareCanonical(original, parsed).diverged);
    EXPECT_EQ(parsed.region_bytes, original.region_bytes);
}

TEST(GoldenTest, ParseRejectsCorruptInput)
{
    CanonicalTrace out;
    std::string error;
    EXPECT_FALSE(ParseTrace("not a trace", &out, nullptr, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(ParseTrace(
        "secemb-canonical-trace v1\nconfig x\nregions 1\n", &out, nullptr,
        &error));
}

TEST(GoldenTest, FileRoundTrip)
{
    VerifyConfig config;
    config.subject = Subject::kLinearScan;
    config.rows = 8;
    config.dim = 4;
    config.batch = 2;
    const CanonicalTrace trace = GoldenRun(config);
    const std::string path =
        ::testing::TempDir() + "/" + GoldenFileName(config.Name());
    std::string error;
    ASSERT_TRUE(WriteTraceFile(path, trace, config.Name(), &error))
        << error;
    CanonicalTrace loaded;
    ASSERT_TRUE(ReadTraceFile(path, &loaded, nullptr, &error)) << error;
    EXPECT_FALSE(CompareCanonical(trace, loaded).diverged);
}

// --- harness plumbing -----------------------------------------------------

TEST(HarnessTest, SecretSetsAreDeterministicAndInRange)
{
    VerifyConfig config;
    config.rows = 33;
    config.batch = 16;
    config.seed = 7;
    const auto a = MakeSecretSet(config, 3);
    const auto b = MakeSecretSet(config, 3);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, MakeSecretSet(config, 4));
    for (const int64_t s : a) {
        EXPECT_GE(s, 0);
        EXPECT_LT(s, config.rows);
    }
}

TEST(HarnessTest, FuzzCorpusIsDeterministicAndLargeEnough)
{
    for (const Subject s : AllSecureSubjects()) {
        const auto a = FuzzCorpus(s, 1);
        const auto b = FuzzCorpus(s, 1);
        ASSERT_GE(a.size(), 8u) << SubjectName(s);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].Name(), b[i].Name());
            EXPECT_EQ(a[i].seed, b[i].seed);
        }
    }
}

TEST(HarnessTest, HybridCorpusCoversBothSidesOfThreshold)
{
    int scan_side = 0, dhe_side = 0;
    for (const VerifyConfig& c : FuzzCorpus(Subject::kHybrid, 1)) {
        (c.rows < 128 ? scan_side : dhe_side)++;
    }
    EXPECT_GT(scan_side, 0);
    EXPECT_GT(dhe_side, 0);
}

TEST(HarnessTest, TreeOramCorpusCoversBothVariants)
{
    int path = 0, circuit = 0;
    for (const VerifyConfig& c : FuzzCorpus(Subject::kTreeOram, 1)) {
        (c.variant == 0 ? path : circuit)++;
    }
    EXPECT_GT(path, 0);
    EXPECT_GT(circuit, 0);
}

// --- negative tests: the engine must catch real leaks ---------------------

TEST(NegativeTest, DifferentialCatchesIndexLookup)
{
    VerifyConfig config;
    config.subject = Subject::kIndexLookup;
    config.rows = 64;
    config.dim = 8;
    config.batch = 8;
    config.secret_sets = 4;
    const DifferentialResult r = RunDifferential(config);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.detail.find("table.lookup"), std::string::npos)
        << r.detail;
}

/**
 * The planted-leak fixture of the acceptance criteria: an otherwise
 * oblivious linear scan with a deliberately secret-dependent branch that
 * issues one extra recorded access whenever an index is even.
 */
class PlantedLeakGenerator : public core::EmbeddingGenerator
{
  public:
    PlantedLeakGenerator(Tensor table, sidechannel::TraceRecorder* rec)
        : scan_(std::move(table)), recorder_(rec)
    {
        scan_.set_recorder(rec);
        leak_base_ = sidechannel::ProcessAddressSpace().Reserve(
            64, 64, "planted.leak");
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        for (const int64_t idx : indices) {
            if (idx % 2 == 0 && recorder_ != nullptr) {
                recorder_->Record(leak_base_, 4, false);  // the leak
            }
        }
        scan_.Generate(indices, out);
    }

    int64_t dim() const override { return scan_.dim(); }
    int64_t num_rows() const override { return scan_.num_rows(); }
    int64_t MemoryFootprintBytes() const override
    {
        return scan_.MemoryFootprintBytes();
    }
    std::string_view name() const override { return "Planted Leak"; }
    bool IsOblivious() const override { return false; }

  private:
    core::LinearScanTable scan_;
    sidechannel::TraceRecorder* recorder_;
    uint64_t leak_base_;
};

TEST(NegativeTest, DifferentialCatchesPlantedSecretDependentBranch)
{
    VerifyConfig config;
    config.subject = Subject::kLinearScan;
    config.rows = 64;
    config.dim = 8;
    config.batch = 8;
    config.secret_sets = 6;
    config.seed = 5;
    const GeneratorFactory factory =
        [&config](uint64_t seed, sidechannel::TraceRecorder* rec) {
            Rng rng(seed);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::make_unique<PlantedLeakGenerator>(
                    Tensor::Randn({config.rows, config.dim}, rng), rec));
        };
    const DifferentialResult r =
        RunDifferentialWith(config, factory, /*expect_bit_identical=*/true);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.detail.find("secret set"), std::string::npos) << r.detail;

    // The identical construction without the leak branch certifies clean,
    // proving the failure above is the planted branch and nothing else.
    const DifferentialResult clean = RunDifferential(config);
    EXPECT_TRUE(clean.passed) << clean.detail;
}

TEST(NegativeTest, StatisticalCatchesIndexLookup)
{
    VerifyConfig config;
    config.subject = Subject::kIndexLookup;
    config.rows = 64;
    config.dim = 16;
    config.batch = 8;
    config.secret_sets = 6;
    const StatisticalResult r = RunStatistical(config);
    EXPECT_FALSE(r.passed) << "cache chi2=" << r.cache_chi2;
    EXPECT_GT(r.cache_chi2, r.cache_df + 10.0);
}

TEST(StatisticalTest, AcceptsRandomizedOrams)
{
    for (const Subject s : {Subject::kTreeOram, Subject::kSqrtOram}) {
        VerifyConfig config;
        config.subject = s;
        config.rows = 32;
        config.dim = 4;
        config.batch = 4;
        config.secret_sets = 6;
        const StatisticalResult r = RunStatistical(config);
        EXPECT_TRUE(r.passed) << SubjectName(s) << ": " << r.detail;
    }
}

TEST(StatisticalTest, AcceptsDeterministicObliviousSubjects)
{
    // Scan and DHE traces are secret-independent outright; their fixed
    // and random histograms are identical and chi2 collapses to zero.
    for (const Subject s : {Subject::kLinearScan, Subject::kDhe}) {
        VerifyConfig config;
        config.subject = s;
        config.rows = 32;
        config.dim = 8;
        config.batch = 4;
        const StatisticalResult r = RunStatistical(config);
        EXPECT_TRUE(r.passed) << SubjectName(s) << ": " << r.detail;
        EXPECT_EQ(r.cache_chi2, 0.0);
    }
}

}  // namespace
}  // namespace secemb::verify
