/**
 * @file
 * Deterministic chaos matrix for the serving pipeline: every fault class
 * (allocation failure, worker stall, worker exception, generation fault,
 * corrupt/truncated checkpoint, deadline overrun via clock skew, queue
 * overflow) is forced from a seeded FaultPlan and must resolve to a typed
 * outcome — error, shed, retry-then-success, or degraded-success — with no
 * crash, hang, or leak. A replay test re-runs a faulted workload from the
 * same seed and asserts the outcome vector is bit-identical.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/table_generators.h"
#include "fault/fault.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "serving/clock.h"
#include "serving/queue.h"
#include "serving/server.h"
#include "tensor/rng.h"

namespace secemb::serving {
namespace {

using fault::FaultPlan;
using fault::FaultSite;
using fault::ScopedFaultInjection;
using fault::ScopedWorkerFaults;

std::shared_ptr<core::LinearScanTable>
MakeScan(int64_t rows, int64_t dim, uint64_t seed)
{
    Rng rng(seed);
    return std::make_shared<core::LinearScanTable>(
        Tensor::Randn({rows, dim}, rng));
}

ServerConfig
QuietConfig()
{
    ServerConfig cfg;
    cfg.default_deadline_us = 0;  // no wall-clock deadlines in unit tests
    cfg.flush_deadline_us = 50;
    cfg.nthreads = 1;  // inline ParallelFor: one chunk-hook hit per region
    return cfg;
}

/** Spin until `pred` holds; fails the test after `ms` milliseconds. */
template <typename Pred>
void
AwaitOrFail(Pred pred, int ms, const char* what)
{
    for (int i = 0; i < ms * 10; ++i) {
        if (pred()) return;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    FAIL() << "timed out waiting for: " << what;
}

// --- fault class: allocation failure --------------------------------------

TEST(ChaosTest, AllocFailureInQueueReplaysFromSeed)
{
    // Push ints through a FaultAllocator-backed queue until the armed
    // allocation fault fires; the failing push index must replay exactly.
    FaultPlan plan(101);
    plan.ArmCountdown(FaultSite::kAlloc, /*first_hit=*/2, /*period=*/0,
                      /*max_fires=*/1);

    auto run = [&plan]() -> int {
        BoundedQueue<int, fault::FaultAllocator<int>> q(100000);
        plan.ResetCounters();
        ScopedFaultInjection scope(&plan);
        for (int i = 0; i < 3000; ++i) {
            const StatusCode code = q.TryPush(int{i});
            if (code == StatusCode::kResourceExhausted) return i;
            EXPECT_EQ(code, StatusCode::kOk);
        }
        return -1;
    };

    const int first = run();
    ASSERT_GE(first, 0) << "armed allocation fault never fired";
    EXPECT_EQ(run(), first) << "alloc fault did not replay from its seed";
    EXPECT_EQ(plan.fires(FaultSite::kAlloc), 1u);
}

TEST(ChaosTest, AllocFailureAtAdmissionIsTypedNotFatal)
{
    auto scan = MakeScan(32, 4, 1);
    ServerConfig cfg = QuietConfig();
    Server server({scan}, cfg);  // construct before faults are live

    FaultPlan plan(102);
    plan.ArmRate(FaultSite::kAlloc, 1.0);  // every queue allocation fails
    int exhausted = 0, ok = 0;
    {
        ScopedFaultInjection scope(&plan);
        for (int i = 0; i < 8; ++i) {
            Request r;
            r.indices = {i % 32};
            const Response resp = server.SubmitAndWait(std::move(r));
            if (resp.status.code == StatusCode::kResourceExhausted) {
                ++exhausted;
            } else if (resp.status.ok()) {
                ++ok;
            } else {
                ADD_FAILURE() << "unexpected status "
                              << resp.status.ToString();
            }
        }
    }
    // A deque node fills within a handful of pushes, so at least one
    // admission had to allocate — and got the typed error, not an abort.
    EXPECT_GE(exhausted, 1);
    EXPECT_EQ(server.GetStats().submitted, 8u);

    // With faults gone the server serves normally again.
    Request r;
    r.indices = {3};
    EXPECT_TRUE(server.SubmitAndWait(std::move(r)).status.ok());
}

// --- fault class: worker stall / worker exception -------------------------

TEST(ChaosTest, WorkerStallSlowsButSucceeds)
{
    auto scan = MakeScan(64, 8, 2);
    Server server({scan}, QuietConfig());

    FaultPlan plan(103);
    plan.ArmRate(FaultSite::kWorkerStall, 1.0, /*max_fires=*/8);
    ScopedFaultInjection scope(&plan);
    ScopedWorkerFaults worker_faults(/*stall_us=*/200);

    Request r;
    r.indices = {5, 6, 7};
    const Response resp = server.SubmitAndWait(std::move(r));
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_GE(plan.fires(FaultSite::kWorkerStall), 1u);
    EXPECT_TRUE(resp.embeddings.AllClose(
        scan->GenerateBatch(std::vector<int64_t>{5, 6, 7}), 0.0f));
}

TEST(ChaosTest, WorkerExceptionRetriesThenSucceeds)
{
    auto scan = MakeScan(64, 8, 3);
    ServerConfig cfg = QuietConfig();
    cfg.max_retries = 2;
    cfg.retry_backoff_us = 1;
    Server server({scan}, cfg);

    FaultPlan plan(104);
    // Exactly the first chunk of the first attempt throws; the retry runs
    // clean. Typed outcome: retry-then-success.
    plan.ArmCountdown(FaultSite::kWorkerException, 1, 0, /*max_fires=*/1);
    ScopedFaultInjection scope(&plan);
    ScopedWorkerFaults worker_faults;

    Request r;
    r.indices = {1, 2, 3, 4};
    const Response resp = server.SubmitAndWait(std::move(r));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_GE(resp.retries, 1);
    EXPECT_EQ(plan.fires(FaultSite::kWorkerException), 1u);
    EXPECT_GE(server.GetStats().retries, 1u);
    EXPECT_TRUE(resp.embeddings.AllClose(
        scan->GenerateBatch(std::vector<int64_t>{1, 2, 3, 4}), 0.0f));
}

TEST(ChaosTest, WorkerExceptionExhaustingRetriesFailsTyped)
{
    auto scan = MakeScan(64, 8, 4);
    ServerConfig cfg = QuietConfig();
    cfg.max_retries = 1;
    cfg.retry_backoff_us = 1;
    Server server({scan}, cfg);

    FaultPlan plan(105);
    plan.ArmRate(FaultSite::kWorkerException, 1.0);  // every chunk throws
    ScopedFaultInjection scope(&plan);
    ScopedWorkerFaults worker_faults;

    Request r;
    r.indices = {1};
    const Response resp = server.SubmitAndWait(std::move(r));
    EXPECT_EQ(resp.status.code, StatusCode::kInternal)
        << resp.status.ToString();
    EXPECT_EQ(resp.retries, 1);
    EXPECT_EQ(server.GetStats().failed, 1u);
}

// --- fault class: generation fault + degrade controller -------------------

TEST(ChaosTest, GenerationFaultRetriesThenSucceeds)
{
    auto scan = MakeScan(32, 4, 5);
    ServerConfig cfg = QuietConfig();
    cfg.max_retries = 2;
    cfg.retry_backoff_us = 1;
    Server server({scan}, cfg);

    FaultPlan plan(106);
    plan.ArmCountdown(FaultSite::kGenerate, 1, 0, /*max_fires=*/1);
    ScopedFaultInjection scope(&plan);

    Request r;
    r.indices = {9, 10};
    const Response resp = server.SubmitAndWait(std::move(r));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.retries, 1);
}

TEST(ChaosTest, FaultStreakEscalatesDegradeThenRecovers)
{
    auto scan = MakeScan(32, 4, 6);
    ServerConfig cfg = QuietConfig();
    cfg.max_retries = 2;
    cfg.retry_backoff_us = 1;
    cfg.fault_streak_escalate = 1;   // one faulted batch escalates
    cfg.recover_after_batches = 2;   // two calm batches recover
    Server server({scan}, cfg);

    FaultPlan plan(107);
    plan.ArmCountdown(FaultSite::kGenerate, 1, 0, /*max_fires=*/1);
    ScopedFaultInjection scope(&plan);

    // Batch 0 faults (retry-success) -> level escalates to 1 after it.
    // Batches 1 and 2 are calm and served degraded (typed outcome:
    // degraded-success); after the second calm batch the level recovers.
    std::vector<int> served_at;
    for (int i = 0; i < 4; ++i) {
        Request r;
        r.indices = {i};
        const Response resp = server.SubmitAndWait(std::move(r));
        ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
        served_at.push_back(resp.degrade_level);
    }
    EXPECT_EQ(served_at, (std::vector<int>{0, 1, 1, 0}));
    const ServerStats s = server.GetStats();
    EXPECT_GE(s.degraded_batches, 2u);
    EXPECT_EQ(s.degrade_level, 0);
}

// --- fault class: corrupt / truncated checkpoint --------------------------

class ChaosCheckpointTest : public ::testing::Test
{
  protected:
    std::string
    TmpPath(const char* name)
    {
        return (std::filesystem::temp_directory_path() /
                (std::string("secemb_chaos_") + name))
            .string();
    }

    void
    TearDown() override
    {
        for (const auto& p : paths_) std::remove(p.c_str());
    }

    std::string
    Track(std::string p)
    {
        paths_.push_back(p);
        return p;
    }

    std::vector<std::string> paths_;
};

TEST_F(ChaosCheckpointTest, SeededByteFlipsNeverCrashTheLoader)
{
    // File layout: magic(8) version(8) count(8) ndims(8) dims(8 each),
    // payload after. A flip in the metadata must yield a typed error; a
    // flip in the float payload loads fine with the same shape. Either
    // way: no crash, no giant allocation, and the flip offset is a pure
    // function of the seed.
    constexpr uint64_t kMetaBytes = 8 * 4 + 8 * 2;  // header + 2 dims
    Rng rng(7);
    const Tensor original = Tensor::Randn({6, 5}, rng);

    int typed_errors = 0, clean_loads = 0;
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        const std::string path = Track(
            TmpPath(("flip_" + std::to_string(seed) + ".bin").c_str()));
        nn::SaveTensor(original, path);
        const uint64_t off = fault::CorruptFileBytes(path, seed);
        try {
            const Tensor loaded = nn::LoadTensor(path);
            EXPECT_GE(off, kMetaBytes)
                << "metadata flip at " << off << " loaded silently";
            EXPECT_EQ(loaded.shape(), original.shape());
            ++clean_loads;
        } catch (const std::runtime_error& err) {
            EXPECT_NE(std::string(err.what()).find(path),
                      std::string::npos)
                << "error must name the file: " << err.what();
            ++typed_errors;
        }
    }
    // The sweep exercised both regimes.
    EXPECT_GT(typed_errors, 0);
    EXPECT_GT(clean_loads, 0);
}

TEST_F(ChaosCheckpointTest, TruncatedCheckpointFailsTyped)
{
    Rng rng_a(8), rng_b(9);
    nn::Linear model(6, 4, rng_a);
    const std::string path = Track(TmpPath("truncated_params.bin"));
    nn::SaveParameters(model.Parameters(), path);
    fault::TruncateFile(path, 0.6);

    nn::Linear target(6, 4, rng_b);
    try {
        nn::LoadParameters(target.Parameters(), path);
        FAIL() << "expected a truncation error";
    } catch (const std::runtime_error& err) {
        EXPECT_NE(std::string(err.what()).find(path), std::string::npos)
            << err.what();
    }
}

// --- fault class: deadline overrun via clock skew -------------------------

TEST(ChaosTest, ClockSkewForcesDeadlineOverrunTyped)
{
    auto scan = MakeScan(32, 4, 10);
    FaultSkewedClock skewed_clock;
    ServerConfig cfg = QuietConfig();
    cfg.clock = &skewed_clock;
    Server server({scan}, cfg);

    // Sanity: with no plan installed the skewed clock is transparent.
    Request fine;
    fine.indices = {1};
    fine.deadline_ns = DefaultClock().NowNs() + 5'000'000'000ull;
    EXPECT_TRUE(server.SubmitAndWait(std::move(fine)).status.ok());

    FaultPlan plan(108);
    plan.set_clock_skew_ns(3'600'000'000'000);  // batcher sees +1 hour
    ScopedFaultInjection scope(&plan);

    Request r;
    r.indices = {2};
    r.deadline_ns = DefaultClock().NowNs() + 5'000'000'000ull;  // +5s real
    const Response resp = server.SubmitAndWait(std::move(r));
    EXPECT_EQ(resp.status.code, StatusCode::kDeadlineExceeded)
        << resp.status.ToString();
    EXPECT_EQ(server.GetStats().deadline_exceeded, 1u);
}

// --- fault class: queue overflow ------------------------------------------

TEST(ChaosTest, StalledBatcherOverflowsQueueIntoTypedShed)
{
    auto scan = MakeScan(32, 4, 11);
    ServerConfig cfg = QuietConfig();
    cfg.queue_capacity = 2;
    cfg.max_batch = 1;
    Server server({scan}, cfg);

    FaultPlan plan(109);
    plan.ArmRate(FaultSite::kWorkerStall, 1.0);  // every chunk stalls
    ScopedFaultInjection scope(&plan);
    ScopedWorkerFaults worker_faults(/*stall_us=*/20000);

    Request r0;
    r0.indices = {0};
    auto f0 = server.Submit(std::move(r0));
    // Wait until the batcher has popped r0 and is stalled inside it.
    AwaitOrFail([&] { return server.queue_depth() == 0; }, 2000,
                "batcher to pick up the stalled request");

    std::vector<std::future<Response>> queued;
    for (int i = 0; i < 2; ++i) {
        Request r;
        r.indices = {1 + i};
        queued.push_back(server.Submit(std::move(r)));
    }
    Request overflow;
    overflow.indices = {9};
    const Response shed = server.SubmitAndWait(std::move(overflow));
    EXPECT_EQ(shed.status.code, StatusCode::kShed);
    EXPECT_EQ(server.GetStats().shed, 1u);

    EXPECT_TRUE(f0.get().status.ok());
    for (auto& f : queued) EXPECT_TRUE(f.get().status.ok());
}

// --- replay determinism ----------------------------------------------------

TEST(ChaosTest, FaultedWorkloadOutcomeVectorReplaysFromSeed)
{
    // A mixed workload against a 30% generation-fault rate with retries
    // disabled: each request's fate is a pure function of (seed, hit
    // ordinal), so two runs from the same seed must produce the identical
    // typed-outcome vector.
    FaultPlan plan(110);
    plan.ArmRate(FaultSite::kGenerate, 0.3);

    auto run = [&plan]() -> std::vector<StatusCode> {
        auto scan = MakeScan(32, 4, 12);
        ServerConfig cfg = QuietConfig();
        cfg.max_retries = 0;
        Server server({scan}, cfg);
        plan.ResetCounters();
        ScopedFaultInjection scope(&plan);
        std::vector<StatusCode> outcomes;
        for (int i = 0; i < 24; ++i) {
            Request r;
            r.indices = {i % 32};
            outcomes.push_back(
                server.SubmitAndWait(std::move(r)).status.code);
        }
        return outcomes;
    };

    const std::vector<StatusCode> first = run();
    const std::vector<StatusCode> second = run();
    EXPECT_EQ(first, second) << "chaos outcomes must replay from the seed";

    int ok = 0, internal = 0;
    for (const StatusCode c : first) {
        ok += c == StatusCode::kOk;
        internal += c == StatusCode::kInternal;
    }
    EXPECT_EQ(ok + internal, 24);
    EXPECT_GT(ok, 0) << "rate 0.3 should let some requests through";
    EXPECT_GT(internal, 0) << "rate 0.3 should fail some requests";
}

}  // namespace
}  // namespace secemb::serving
