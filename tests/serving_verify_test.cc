/**
 * @file
 * Obliviousness certification of the serving path.
 *
 * The secemb-verify differential and statistical engines run against an
 * EmbeddingGenerator adapter that routes every query through a full
 * Server (queue, batcher, retry, degradation) — with fault injection
 * armed, replayed identically per run via FaultPlan::ResetCounters in the
 * generator factory. The certified properties:
 *
 *  - serving traces are bit-identical across secret index sets even when
 *    every request suffers an injected generation fault and a worker
 *    exception before succeeding (failed attempts record into a scratch
 *    buffer that is discarded, so retries leave no scheduling-dependent
 *    residue);
 *  - level-2 degradation (pooled requests served per-slot) produces a
 *    trace bit-identical to the native pooled path, i.e. whether the
 *    server is degraded is not observable through the memory channel;
 *  - a planted value-dependent fallback — a generator that switches
 *    technique (linear scan vs DHE) on the parity of a secret index — is
 *    rejected by the differential engine when served through the same
 *    pipeline (negative control: the engine still has teeth here).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/dhe_generator.h"
#include "core/table_generators.h"
#include "dhe/dhe.h"
#include "fault/fault.h"
#include "serving/clock.h"
#include "serving/server.h"
#include "tensor/rng.h"
#include "verify/canonical.h"
#include "verify/harness.h"

namespace secemb::verify {
namespace {

using fault::FaultPlan;
using fault::FaultSite;
using fault::ScopedFaultInjection;
using fault::ScopedWorkerFaults;

uint64_t
Mix(uint64_t a, uint64_t b)
{
    uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::shared_ptr<core::LinearScanTable>
MakeScan(int64_t rows, int64_t dim, uint64_t construction_seed)
{
    Rng rng(Mix(construction_seed, 0x7ab1eULL));
    return std::make_shared<core::LinearScanTable>(
        Tensor::Randn({rows, dim}, rng));
}

std::shared_ptr<core::DheGenerator>
MakeDhe(int64_t rows, int64_t dim, uint64_t construction_seed)
{
    dhe::DheConfig cfg;
    cfg.k = 8;
    cfg.fc_hidden = {8};
    cfg.out_dim = dim;
    cfg.hash_buckets = 1 << 16;
    Rng rng(Mix(construction_seed, 0xd4eULL));
    auto model = std::make_shared<dhe::DheEmbedding>(cfg, rng, 1);
    return std::make_shared<core::DheGenerator>(std::move(model), rows);
}

/**
 * Routes Generate/GeneratePooled through a Server so the harness
 * certifies the full pipeline: admission, batching, retry, degradation.
 * Uses a FaultSkewedClock (transparent while no skew is armed) and no
 * request deadlines, so fault-induced retries can never time a request
 * out mid-certification.
 */
class ServingAdapter : public core::EmbeddingGenerator
{
  public:
    ServingAdapter(std::shared_ptr<core::EmbeddingGenerator> inner,
                   sidechannel::TraceRecorder* recorder,
                   int min_degrade_level)
        : inner_(std::move(inner))
    {
        serving::ServerConfig cfg;
        cfg.queue_capacity = 8;
        cfg.max_batch = 4;
        cfg.flush_deadline_us = 20;
        cfg.default_deadline_us = 0;
        cfg.max_retries = 3;
        cfg.retry_backoff_us = 1;
        cfg.min_degrade_level = min_degrade_level;
        cfg.nthreads = 1;
        cfg.clock = &clock_;
        server_ = std::make_unique<serving::Server>(
            std::vector<std::shared_ptr<core::EmbeddingGenerator>>{inner_},
            cfg);
        server_->set_recorder(0, recorder);
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        serving::Request req;
        req.indices.assign(indices.begin(), indices.end());
        out = Roundtrip(std::move(req));
    }

    void
    GeneratePooled(std::span<const int64_t> indices,
                   std::span<const int64_t> offsets, Tensor& out) override
    {
        serving::Request req;
        req.indices.assign(indices.begin(), indices.end());
        req.pooled_offsets.assign(offsets.begin(), offsets.end());
        out = Roundtrip(std::move(req));
    }

    int64_t dim() const override { return inner_->dim(); }
    int64_t num_rows() const override { return inner_->num_rows(); }
    int64_t MemoryFootprintBytes() const override
    {
        return inner_->MemoryFootprintBytes();
    }
    std::string_view name() const override { return "ServingAdapter"; }
    bool IsOblivious() const override { return inner_->IsOblivious(); }

  private:
    Tensor
    Roundtrip(serving::Request req)
    {
        serving::Response resp = server_->SubmitAndWait(std::move(req));
        if (!resp.status.ok()) {
            throw std::runtime_error("serving adapter: " +
                                     resp.status.ToString());
        }
        return std::move(resp.embeddings);
    }

    std::shared_ptr<core::EmbeddingGenerator> inner_;
    serving::FaultSkewedClock clock_;
    std::unique_ptr<serving::Server> server_;
};

/**
 * The planted leak: picks the generation *technique* from a secret value
 * (scan for even first index, DHE for odd). The two techniques touch
 * different regions ("table.scan" vs "dhe.params"), so any secret set
 * pair with differing parity diverges at the first canonical access —
 * exactly the class of value-dependent fallback the serving layer is
 * forbidden from implementing.
 */
class TechniqueSwitchGenerator : public core::EmbeddingGenerator
{
  public:
    TechniqueSwitchGenerator(int64_t rows, int64_t dim, uint64_t cseed)
        : scan_(MakeScan(rows, dim, cseed)), dhe_(MakeDhe(rows, dim, cseed))
    {
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        Pick(indices).Generate(indices, out);
    }

    void
    GeneratePooled(std::span<const int64_t> indices,
                   std::span<const int64_t> offsets, Tensor& out) override
    {
        Pick(indices).GeneratePooled(indices, offsets, out);
    }

    void
    set_recorder(sidechannel::TraceRecorder* recorder) override
    {
        scan_->set_recorder(recorder);
        dhe_->set_recorder(recorder);
    }

    int64_t dim() const override { return scan_->dim(); }
    int64_t num_rows() const override { return scan_->num_rows(); }
    int64_t MemoryFootprintBytes() const override
    {
        return scan_->MemoryFootprintBytes();
    }
    std::string_view name() const override { return "TechniqueSwitch"; }
    bool IsOblivious() const override { return false; }

  private:
    core::EmbeddingGenerator&
    Pick(std::span<const int64_t> indices)
    {
        const bool even = !indices.empty() && indices[0] % 2 == 0;
        return even ? static_cast<core::EmbeddingGenerator&>(*scan_)
                    : static_cast<core::EmbeddingGenerator&>(*dhe_);
    }

    std::shared_ptr<core::LinearScanTable> scan_;
    std::shared_ptr<core::DheGenerator> dhe_;
};

VerifyConfig
ServingConfig(bool pooled)
{
    VerifyConfig config;
    config.rows = 32;
    config.dim = 4;
    config.batch = 8;
    config.nthreads = 1;
    config.pooled = pooled;
    config.secret_sets = 4;
    config.seed = 7;
    return config;
}

/** Factory serving `inner(cseed)` through a Server, with the plan's
 *  counters reset so every run replays the identical fault schedule. */
template <typename MakeInner>
GeneratorFactory
ServingFactory(FaultPlan* plan, int min_degrade_level, MakeInner make_inner)
{
    return [plan, min_degrade_level, make_inner](
               uint64_t cseed, sidechannel::TraceRecorder* rec)
               -> std::unique_ptr<core::EmbeddingGenerator> {
        if (plan != nullptr) plan->ResetCounters();
        return std::make_unique<ServingAdapter>(make_inner(cseed), rec,
                                                min_degrade_level);
    };
}

TEST(ServingVerifyTest, DifferentialPassesUnderInjectedFaults)
{
    // Every run: attempt 1 dies at the generation gate, attempt 2 dies to
    // a worker exception mid-region, attempt 3 succeeds. The appended
    // trace must still be bit-identical across secret sets.
    FaultPlan plan(201);
    plan.ArmCountdown(FaultSite::kGenerate, 1, 0, /*max_fires=*/1);
    plan.ArmCountdown(FaultSite::kWorkerException, 1, 0, /*max_fires=*/1);
    ScopedFaultInjection scope(&plan);
    ScopedWorkerFaults worker_faults;

    const VerifyConfig config = ServingConfig(/*pooled=*/false);
    const DifferentialResult r = RunDifferentialWith(
        config,
        ServingFactory(&plan, /*min_degrade_level=*/0,
                       [&config](uint64_t cseed) {
                           return MakeScan(config.rows, config.dim, cseed);
                       }),
        /*expect_bit_identical=*/true);
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_GT(r.trace_len, 0u);
    EXPECT_GE(plan.fires(FaultSite::kGenerate), 1u);
    EXPECT_GE(plan.fires(FaultSite::kWorkerException), 1u);
}

TEST(ServingVerifyTest, DifferentialPassesOnDegradedPooledPath)
{
    // min_degrade_level = 2 pins the degraded per-slot pooled fallback;
    // injected faults ride along. Degraded serving must stay oblivious.
    FaultPlan plan(202);
    plan.ArmCountdown(FaultSite::kGenerate, 1, 0, /*max_fires=*/1);
    ScopedFaultInjection scope(&plan);

    const VerifyConfig config = ServingConfig(/*pooled=*/true);
    const DifferentialResult r = RunDifferentialWith(
        config,
        ServingFactory(&plan, /*min_degrade_level=*/2,
                       [&config](uint64_t cseed) {
                           return MakeScan(config.rows, config.dim, cseed);
                       }),
        /*expect_bit_identical=*/true);
    EXPECT_TRUE(r.passed) << r.detail;
}

TEST(ServingVerifyTest, DifferentialPassesForDheThroughServer)
{
    const VerifyConfig config = ServingConfig(/*pooled=*/false);
    const DifferentialResult r = RunDifferentialWith(
        config,
        ServingFactory(nullptr, /*min_degrade_level=*/0,
                       [&config](uint64_t cseed) {
                           return MakeDhe(config.rows, config.dim, cseed);
                       }),
        /*expect_bit_identical=*/true);
    EXPECT_TRUE(r.passed) << r.detail;
}

TEST(ServingVerifyTest, DegradedTraceIsBitIdenticalToNativePooledTrace)
{
    // The obliviousness-of-degradation argument, checked directly: the
    // level-2 per-slot fallback and the native pooled path must record the
    // exact same canonical trace — an observer cannot tell whether the
    // server was degraded.
    const int64_t rows = 32, dim = 4;
    const uint64_t cseed = 99;
    const std::vector<int64_t> secrets{3, 3, 17, 0, 31, 8, 8, 5};
    const std::vector<int64_t> offsets{0, 2, 2, 5, 8};  // one empty bag

    auto trace_of = [&](int min_degrade_level) {
        sidechannel::TraceRecorder rec;
        ServingAdapter adapter(MakeScan(rows, dim, cseed), &rec,
                               min_degrade_level);
        Tensor out({static_cast<int64_t>(offsets.size()) - 1, dim});
        adapter.GeneratePooled(secrets, offsets, out);
        return std::make_pair(Canonicalize(rec.trace()), std::move(out));
    };
    auto [native_trace, native_out] = trace_of(/*min_degrade_level=*/0);
    auto [degraded_trace, degraded_out] = trace_of(/*min_degrade_level=*/2);

    const TraceDivergence d =
        CompareCanonical(native_trace, degraded_trace);
    EXPECT_FALSE(d.diverged) << d.detail;
    ASSERT_GT(native_trace.accesses.size(), 0u);
    // And the degraded values are the same embeddings.
    EXPECT_TRUE(degraded_out.AllClose(native_out, 1e-5f));
}

TEST(ServingVerifyTest, StatisticalPassesOnServingPathWithFaults)
{
    FaultPlan plan(203);
    plan.ArmCountdown(FaultSite::kGenerate, 1, 0, /*max_fires=*/1);
    ScopedFaultInjection scope(&plan);

    VerifyConfig config = ServingConfig(/*pooled=*/false);
    config.secret_sets = 4;  // 12 runs per group
    const StatisticalResult r = RunStatisticalWith(
        config, ServingFactory(&plan, /*min_degrade_level=*/0,
                               [&config](uint64_t cseed) {
                                   return MakeScan(config.rows, config.dim,
                                                   cseed);
                               }));
    EXPECT_TRUE(r.passed) << r.detail;
}

TEST(ServingVerifyTest, ValueDependentFallbackThroughServerIsRejected)
{
    // Precondition: the engine only sees the leak if secret sets disagree
    // on the parity of their first index. Pick a corpus seed where they
    // do (deterministically — MakeSecretSet is a pure function of seed).
    VerifyConfig config = ServingConfig(/*pooled=*/false);
    bool found = false;
    for (uint64_t seed = 1; seed <= 32 && !found; ++seed) {
        config.seed = seed;
        const int64_t base = MakeSecretSet(config, 0)[0] % 2;
        for (int s = 1; s < config.secret_sets; ++s) {
            if (MakeSecretSet(config, s)[0] % 2 != base) {
                found = true;
                break;
            }
        }
    }
    ASSERT_TRUE(found) << "no corpus seed with mixed first-index parity";

    const DifferentialResult r = RunDifferentialWith(
        config,
        ServingFactory(nullptr, /*min_degrade_level=*/0,
                       [&config](uint64_t cseed) {
                           return std::make_shared<
                               TechniqueSwitchGenerator>(
                               config.rows, config.dim, cseed);
                       }),
        /*expect_bit_identical=*/true);
    EXPECT_FALSE(r.passed)
        << "a technique switch keyed on a secret index must be caught";
    EXPECT_FALSE(r.detail.empty());
}

}  // namespace
}  // namespace secemb::verify
