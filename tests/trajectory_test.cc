/**
 * @file
 * Bench-trajectory harness tests: secemb-bench-v1 / summary schema
 * validation, summary building (verbatim report embedding), the
 * regression gate (catches a 2x slowdown, tolerates within-gate noise,
 * never fails on added/removed benches, zero-mean baseline rows are
 * excluded with a NaN/null ratio rather than faking a speedup, JSON
 * report), and an end-to-end exec of the secemb-bench-all driver
 * in --compare mode: it must exit non-zero exactly when a shared result
 * regressed past the gate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util/json.h"
#include "bench_util/trajectory.h"

namespace secemb::bench {
namespace {

/** A minimal valid secemb-bench-v1 document with one result. */
std::string
BenchDoc(const std::string& bench, const std::string& result,
         double mean_ns)
{
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").Value("secemb-bench-v1");
    w.Key("bench").Value(bench);
    w.Key("results").BeginArray();
    w.BeginObject();
    w.Key("name").Value(result);
    w.Key("params").BeginObject();
    w.Key("n").Value(int64_t{64});
    w.EndObject();
    w.Key("latency_ns").BeginObject();
    w.Key("count").Value(int64_t{10});
    w.Key("mean").Value(mean_ns);
    w.Key("min").Value(mean_ns * 0.9);
    w.Key("max").Value(mean_ns * 1.1);
    w.Key("p50").Value(mean_ns);
    w.Key("p95").Value(mean_ns * 1.05);
    w.Key("p99").Value(mean_ns * 1.1);
    w.EndObject();
    w.Key("counters").BeginObject();
    w.Key("calls").Value(uint64_t{10});
    w.EndObject();
    w.EndObject();
    w.EndArray();
    w.EndObject();
    return w.str();
}

MachineInfo
FakeMachine()
{
    MachineInfo m;
    m.os = "TestOS 1.0";
    m.arch = "test64";
    m.cpu = "Test CPU";
    m.isa = "scalar";
    m.nproc = 1;
    return m;
}

/** Build a one-report-per-bench summary from (bench, result, mean) rows. */
std::string
Summary(const std::vector<std::tuple<std::string, std::string, double>>&
            rows)
{
    std::vector<BenchSource> sources;
    for (const auto& [bench, result, mean] : rows) {
        BenchSource src;
        src.source = bench + ".json";
        src.report = BenchDoc(bench, result, mean);
        sources.push_back(std::move(src));
    }
    std::string err;
    const std::string summary =
        BuildSummaryJson(FakeMachine(), sources, &err);
    EXPECT_FALSE(summary.empty()) << err;
    return summary;
}

JsonValue
Parse(const std::string& text)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(JsonParse(text, &doc, &err)) << err;
    return doc;
}

// --- schema validation -----------------------------------------------------

TEST(TrajectoryTest, ValidateBenchDocAcceptsWellFormed)
{
    std::string err;
    EXPECT_TRUE(ValidateBenchDoc(Parse(BenchDoc("b", "r", 100.0)), &err))
        << err;
}

TEST(TrajectoryTest, ValidateBenchDocRejectsViolations)
{
    std::string err;
    EXPECT_FALSE(ValidateBenchDoc(Parse("{\"schema\":\"wrong\"}"), &err));
    EXPECT_NE(err.find("secemb-bench-v1"), std::string::npos) << err;

    // Missing latency field.
    EXPECT_FALSE(ValidateBenchDoc(
        Parse("{\"schema\":\"secemb-bench-v1\",\"bench\":\"b\","
              "\"results\":[{\"name\":\"r\",\"params\":{},"
              "\"counters\":{},\"latency_ns\":{\"count\":1}}]}"),
        &err));
    EXPECT_NE(err.find("latency_ns"), std::string::npos) << err;
}

TEST(TrajectoryTest, ValidateBenchDocAcceptsNullPercentiles)
{
    // Empty-histogram stats serialise NaN as null; the schema admits it.
    std::string err;
    EXPECT_TRUE(ValidateBenchDoc(
        Parse("{\"schema\":\"secemb-bench-v1\",\"bench\":\"b\","
              "\"results\":[{\"name\":\"r\",\"params\":{},"
              "\"counters\":{},\"latency_ns\":{\"count\":0,"
              "\"mean\":null,\"min\":null,\"max\":null,\"p50\":null,"
              "\"p95\":null,\"p99\":null}}]}"),
        &err))
        << err;
}

TEST(TrajectoryTest, BuildSummaryRoundTripsAndValidates)
{
    const std::string summary =
        Summary({{"micro", "gemm/64", 1000.0}, {"srv", "load/1.0", 5e6}});
    const JsonValue doc = Parse(summary);
    std::string err;
    EXPECT_TRUE(ValidateSummary(doc, &err)) << err;

    const JsonValue* machine = doc.Find("machine");
    ASSERT_NE(machine, nullptr);
    EXPECT_EQ(machine->Find("isa")->str_v, "scalar");
    EXPECT_EQ(machine->Find("nproc")->num_v, 1.0);

    const JsonValue* benches = doc.Find("benches");
    ASSERT_NE(benches, nullptr);
    ASSERT_EQ(benches->array_v.size(), 2u);
    // Reports are embedded verbatim (re-validated, not re-serialised).
    EXPECT_EQ(benches->array_v[0].Find("report")->Find("bench")->str_v,
              "micro");
}

TEST(TrajectoryTest, BuildSummaryRejectsMalformedReport)
{
    std::vector<BenchSource> sources;
    sources.push_back({"bad.json", "{\"schema\":\"wrong\"}"});
    std::string err;
    EXPECT_TRUE(BuildSummaryJson(FakeMachine(), sources, &err).empty());
    EXPECT_NE(err.find("bad.json"), std::string::npos) << err;
}

TEST(TrajectoryTest, CollectMachineInfoPopulatesHostFields)
{
    const MachineInfo m = CollectMachineInfo();
    EXPECT_FALSE(m.isa.empty());
    EXPECT_GT(m.nproc, 0);
#if defined(__linux__)
    EXPECT_FALSE(m.os.empty());
    EXPECT_FALSE(m.arch.empty());
#endif
}

// --- regression gate -------------------------------------------------------

TEST(TrajectoryTest, GateCatchesSlowdown)
{
    const JsonValue baseline = Parse(Summary(
        {{"micro", "gemm/64", 1000.0}, {"srv", "load/1.0", 5e6}}));
    const JsonValue current = Parse(Summary(
        {{"micro", "gemm/64", 2000.0}, {"srv", "load/1.0", 5e6}}));
    CompareReport report;
    std::string err;
    ASSERT_TRUE(
        CompareSummaries(baseline, current, 1.15, &report, &err))
        << err;
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.rows.size(), 2u);
    EXPECT_EQ(report.rows[0].key, "micro/gemm/64");
    EXPECT_TRUE(report.rows[0].regression);
    EXPECT_DOUBLE_EQ(report.rows[0].ratio, 2.0);
    EXPECT_FALSE(report.rows[1].regression);
    EXPECT_NE(report.ToText().find("RESULT: FAIL"), std::string::npos);
    EXPECT_NE(report.ToText().find("REGRESSION"), std::string::npos);
}

TEST(TrajectoryTest, GateToleratesNoiseAndImprovement)
{
    const JsonValue baseline =
        Parse(Summary({{"micro", "gemm/64", 1000.0}}));
    // 10% slower is inside the 15% gate; faster is always fine.
    for (const double mean : {1100.0, 400.0}) {
        const JsonValue current =
            Parse(Summary({{"micro", "gemm/64", mean}}));
        CompareReport report;
        std::string err;
        ASSERT_TRUE(
            CompareSummaries(baseline, current, 1.15, &report, &err))
            << err;
        EXPECT_TRUE(report.ok) << report.ToText();
    }
}

TEST(TrajectoryTest, AddedAndRemovedBenchesNeverFailTheGate)
{
    const JsonValue baseline = Parse(Summary(
        {{"micro", "gemm/64", 1000.0}, {"old", "gone", 50.0}}));
    const JsonValue current = Parse(Summary(
        {{"micro", "gemm/64", 1000.0}, {"shiny", "added", 9e9}}));
    CompareReport report;
    std::string err;
    ASSERT_TRUE(
        CompareSummaries(baseline, current, 1.15, &report, &err))
        << err;
    EXPECT_TRUE(report.ok);
    ASSERT_EQ(report.only_in_baseline.size(), 1u);
    EXPECT_EQ(report.only_in_baseline[0], "old/gone");
    ASSERT_EQ(report.only_in_current.size(), 1u);
    EXPECT_EQ(report.only_in_current[0], "shiny/added");
}

TEST(TrajectoryTest, ZeroBaselineMeanIsExcludedNotASpeedup)
{
    const JsonValue baseline =
        Parse(Summary({{"micro", "gemm/64", 0.0}}));
    const JsonValue current =
        Parse(Summary({{"micro", "gemm/64", 1e9}}));
    CompareReport report;
    std::string err;
    ASSERT_TRUE(
        CompareSummaries(baseline, current, 1.15, &report, &err))
        << err;
    EXPECT_TRUE(report.ok);
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_FALSE(report.rows[0].regression);
    // A degenerate-timer baseline used to report ratio 0.0 — rendered as
    // a 100% speedup. It must now be NaN and explicitly excluded.
    EXPECT_TRUE(report.rows[0].excluded);
    EXPECT_TRUE(std::isnan(report.rows[0].ratio));

    // Table output: no "0.000" ratio, an explicit "excluded" verdict.
    const std::string text = report.ToText();
    EXPECT_NE(text.find("n/a"), std::string::npos) << text;
    EXPECT_NE(text.find("excluded"), std::string::npos) << text;
    EXPECT_EQ(text.find("0.000"), std::string::npos) << text;

    // JSON output: NaN serialises as null, never as 0.
    const JsonValue doc = Parse(report.ToJson());
    ASSERT_TRUE(doc.IsObject());
    EXPECT_EQ(doc.Find("schema")->str_v, "secemb-bench-compare-v1");
    const JsonValue& row = doc.Find("rows")->array_v.at(0);
    EXPECT_EQ(row.Find("ratio")->kind, JsonValue::Kind::kNull);
    EXPECT_TRUE(row.Find("excluded")->bool_v);
    EXPECT_FALSE(row.Find("regression")->bool_v);
}

TEST(TrajectoryTest, CompareReportJsonRoundTrips)
{
    const JsonValue baseline = Parse(Summary(
        {{"micro", "gemm/64", 1000.0}, {"old", "gone", 50.0}}));
    const JsonValue current = Parse(Summary(
        {{"micro", "gemm/64", 2000.0}, {"shiny", "added", 10.0}}));
    CompareReport report;
    std::string err;
    ASSERT_TRUE(
        CompareSummaries(baseline, current, 1.15, &report, &err))
        << err;
    const JsonValue doc = Parse(report.ToJson());
    EXPECT_FALSE(doc.Find("ok")->bool_v);
    EXPECT_DOUBLE_EQ(doc.Find("gate")->num_v, 1.15);
    const JsonValue& row = doc.Find("rows")->array_v.at(0);
    EXPECT_EQ(row.Find("key")->str_v, "micro/gemm/64");
    EXPECT_DOUBLE_EQ(row.Find("ratio")->num_v, 2.0);
    EXPECT_TRUE(row.Find("regression")->bool_v);
    EXPECT_EQ(doc.Find("only_in_baseline")->array_v.at(0).str_v,
              "old/gone");
    EXPECT_EQ(doc.Find("only_in_current")->array_v.at(0).str_v,
              "shiny/added");
}

TEST(TrajectoryTest, CompareRejectsInvalidSummaries)
{
    const JsonValue good = Parse(Summary({{"micro", "gemm/64", 1.0}}));
    const JsonValue bad = Parse("{\"schema\":\"wrong\"}");
    CompareReport report;
    std::string err;
    EXPECT_FALSE(CompareSummaries(bad, good, 1.15, &report, &err));
    EXPECT_NE(err.find("baseline"), std::string::npos) << err;
    EXPECT_FALSE(CompareSummaries(good, bad, 1.15, &report, &err));
    EXPECT_NE(err.find("current"), std::string::npos) << err;
}

// --- end-to-end: the driver's compare mode ---------------------------------

#ifdef SECEMB_BENCH_ALL_BIN

std::string
WriteTemp(const std::string& name, const std::string& content)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(path, std::ios::trunc);
    out << content;
    EXPECT_TRUE(bool(out));
    return path;
}

int
RunCompare(const std::string& baseline, const std::string& current,
           const char* gate)
{
    const std::string cmd = std::string("\"") + SECEMB_BENCH_ALL_BIN +
                            "\" --compare \"" + current +
                            "\" --baseline \"" + baseline + "\" --gate " +
                            gate + " > /dev/null";
    const int rc = std::system(cmd.c_str());
    return rc;
}

TEST(TrajectoryDriverTest, CompareModeGatesSlowedKernel)
{
    // A synthetically 2x-slowed gemm kernel must trip the driver.
    const std::string baseline = WriteTemp(
        "secemb_traj_base.json",
        Summary({{"micro", "gemm/64", 1000.0}, {"srv", "load", 5e6}}));
    const std::string slowed = WriteTemp(
        "secemb_traj_slow.json",
        Summary({{"micro", "gemm/64", 2000.0}, {"srv", "load", 5e6}}));
    const std::string same = WriteTemp(
        "secemb_traj_same.json",
        Summary({{"micro", "gemm/64", 1000.0}, {"srv", "load", 5e6}}));

    EXPECT_NE(RunCompare(baseline, slowed, "1.15"), 0);
    EXPECT_EQ(RunCompare(baseline, same, "1.15"), 0);
    // A generous gate lets the same slowdown through.
    EXPECT_EQ(RunCompare(baseline, slowed, "2.5"), 0);

    for (const std::string& p : {baseline, slowed, same}) {
        std::remove(p.c_str());
    }
}

TEST(TrajectoryDriverTest, CompareModeFailsOnMalformedInput)
{
    const std::string baseline = WriteTemp(
        "secemb_traj_base2.json", Summary({{"micro", "gemm/64", 1.0}}));
    const std::string garbage =
        WriteTemp("secemb_traj_garbage.json", "not json at all");
    EXPECT_NE(RunCompare(baseline, garbage, "1.15"), 0);
    std::remove(baseline.c_str());
    std::remove(garbage.c_str());
}

#endif  // SECEMB_BENCH_ALL_BIN

}  // namespace
}  // namespace secemb::bench
