/**
 * @file
 * Tests for the DLRM module: dataset presets, synthetic data, feature
 * interaction (values + gradient checks), trainable model, and the
 * secure inference model with every generator kind.
 */

#include <gtest/gtest.h>

#include "core/factory.h"
#include "dlrm/config.h"
#include "dlrm/dataset.h"
#include "dlrm/interaction.h"
#include "dlrm/model.h"
#include "test_util.h"

namespace secemb::dlrm {
namespace {

DlrmConfig
TinyConfig()
{
    DlrmConfig c;
    c.num_dense = 4;
    c.table_sizes = {16, 8, 32};
    c.emb_dim = 6;
    c.bot_mlp = {8, 6};
    c.top_mlp = {16};
    c.interaction = Interaction::kDot;
    return c;
}

TEST(DlrmConfigTest, CriteoPresetsMatchPaper)
{
    const DlrmConfig kaggle = DlrmConfig::CriteoKaggle();
    EXPECT_EQ(kaggle.num_sparse(), 26);
    EXPECT_EQ(kaggle.emb_dim, 16);
    EXPECT_EQ(kaggle.bot_mlp.back(), 16);
    const DlrmConfig tb = DlrmConfig::CriteoTerabyte();
    EXPECT_EQ(tb.num_sparse(), 26);
    EXPECT_EQ(tb.emb_dim, 64);
    // Terabyte tables are capped at 1e7 (Section VI-C).
    for (int64_t s : tb.table_sizes) EXPECT_LE(s, 10000000);
    EXPECT_GT(*std::max_element(tb.table_sizes.begin(),
                                tb.table_sizes.end()),
              9000000);
}

TEST(DlrmConfigTest, InteractionOutputDims)
{
    DlrmConfig c = TinyConfig();
    // dot: emb_dim + f(f-1)/2 with f = 3 embs + 1 dense = 4.
    EXPECT_EQ(c.InteractionOutputDim(), 6 + 4 * 3 / 2);
    c.interaction = Interaction::kConcat;
    EXPECT_EQ(c.InteractionOutputDim(), 6 * 4);
}

TEST(DlrmConfigTest, ScaledDividesAndFloors)
{
    const DlrmConfig c = DlrmConfig::CriteoKaggle().Scaled(1000);
    EXPECT_EQ(c.table_sizes[2], 10131227 / 1000);
    for (int64_t s : c.table_sizes) EXPECT_GE(s, 4);
}

TEST(DlrmConfigTest, MetaDatasetShape)
{
    const auto sizes = MetaDatasetTableSizes();
    EXPECT_EQ(sizes.size(), 788u);
    EXPECT_EQ(sizes.front(), 40000000);  // max 4e7
    EXPECT_GE(sizes.back(), 1);
    // Sorted descending, heavy-tailed: beyond-Criteo sizes exist.
    EXPECT_GT(sizes[5], 5000000);
}

TEST(DatasetTest, BatchShapesAndLabelRange)
{
    SyntheticCtrDataset ds(TinyConfig(), 1);
    const CtrBatch b = ds.NextBatch(10);
    EXPECT_EQ(b.dense.shape(), (Shape{10, 4}));
    EXPECT_EQ(b.sparse.size(), 3u);
    EXPECT_EQ(b.labels.numel(), 10);
    for (int64_t i = 0; i < 10; ++i) {
        const float l = b.labels.at(i);
        EXPECT_TRUE(l == 0.0f || l == 1.0f);
    }
    for (size_t f = 0; f < 3; ++f) {
        for (int64_t idx : b.sparse[f]) {
            EXPECT_GE(idx, 0);
            EXPECT_LT(idx, TinyConfig().table_sizes[f]);
        }
    }
}

TEST(DatasetTest, IndicesAreSkewed)
{
    SyntheticCtrDataset ds(TinyConfig(), 2);
    int64_t low = 0, total = 0;
    for (int round = 0; round < 50; ++round) {
        const CtrBatch b = ds.NextBatch(32);
        for (int64_t idx : b.sparse[2]) {  // table of 32 rows
            low += idx < 8 ? 1 : 0;
            ++total;
        }
    }
    // Power-law skew: the bottom quarter of ids gets most of the mass.
    EXPECT_GT(static_cast<double>(low) / total, 0.5);
}

TEST(DatasetTest, DeterministicGivenSeed)
{
    SyntheticCtrDataset a(TinyConfig(), 3), b(TinyConfig(), 3);
    const CtrBatch ba = a.NextBatch(8), bb = b.NextBatch(8);
    EXPECT_TRUE(ba.dense.AllClose(bb.dense));
    EXPECT_EQ(ba.sparse, bb.sparse);
}

TEST(InteractionTest, ConcatLayout)
{
    Rng rng(4);
    const Tensor dense = Tensor::Randn({2, 3}, rng);
    std::vector<Tensor> embs{Tensor::Randn({2, 3}, rng)};
    const Tensor out =
        InteractionForward(Interaction::kConcat, dense, embs);
    EXPECT_EQ(out.shape(), (Shape{2, 6}));
    EXPECT_FLOAT_EQ(out.at(1, 0), dense.at(1, 0));
    EXPECT_FLOAT_EQ(out.at(1, 3), embs[0].at(1, 0));
}

TEST(InteractionTest, DotValues)
{
    Rng rng(5);
    const Tensor dense = Tensor::Values({1, 2}).Reshape({1, 2});
    std::vector<Tensor> embs{Tensor::Values({3, 4}).Reshape({1, 2}),
                             Tensor::Values({5, 6}).Reshape({1, 2})};
    const Tensor out = InteractionForward(Interaction::kDot, dense, embs);
    // Layout: dense copy then pairs (d,e0), (d,e1), (e0,e1).
    EXPECT_EQ(out.shape(), (Shape{1, 2 + 3}));
    EXPECT_FLOAT_EQ(out.at(0, 2), 1 * 3 + 2 * 4);
    EXPECT_FLOAT_EQ(out.at(0, 3), 1 * 5 + 2 * 6);
    EXPECT_FLOAT_EQ(out.at(0, 4), 3 * 5 + 4 * 6);
}

class InteractionGradTest : public ::testing::TestWithParam<Interaction>
{
};

TEST_P(InteractionGradTest, GradientCheck)
{
    Rng rng(6);
    const int64_t batch = 3, d = 4;
    Tensor dense = Tensor::Randn({batch, d}, rng);
    std::vector<Tensor> embs{Tensor::Randn({batch, d}, rng),
                             Tensor::Randn({batch, d}, rng)};

    auto loss_fn = [&](const Tensor& dn, const std::vector<Tensor>& es) {
        const Tensor out = InteractionForward(GetParam(), dn, es);
        return 0.5f * out.SquaredNorm();
    };

    const Tensor out = InteractionForward(GetParam(), dense, embs);
    Tensor grad_dense;
    std::vector<Tensor> grad_embs;
    InteractionBackward(GetParam(), dense, embs, out, grad_dense,
                        grad_embs);

    test::ExpectGradientsClose(
        [&](const Tensor& dn) { return loss_fn(dn, embs); }, dense,
        grad_dense);
    test::ExpectGradientsClose(
        [&](const Tensor& e0) {
            std::vector<Tensor> es{e0, embs[1]};
            return loss_fn(dense, es);
        },
        embs[0], grad_embs[0]);
}

INSTANTIATE_TEST_SUITE_P(Kinds, InteractionGradTest,
                         ::testing::Values(Interaction::kDot,
                                           Interaction::kConcat),
                         [](const auto& info) {
                             return info.param == Interaction::kDot
                                        ? "Dot"
                                        : "Concat";
                         });

class TrainableDlrmTest : public ::testing::TestWithParam<EmbeddingMode>
{
};

TEST_P(TrainableDlrmTest, ForwardShapeAndDeterminism)
{
    Rng rng(7);
    TrainableDlrm model(TinyConfig(), GetParam(), rng);
    SyntheticCtrDataset ds(TinyConfig(), 8);
    const CtrBatch b = ds.NextBatch(5);
    const Tensor l1 = model.Forward(b);
    const Tensor l2 = model.Forward(b);
    EXPECT_EQ(l1.shape(), (Shape{5}));
    EXPECT_TRUE(l1.AllClose(l2));
}

TEST_P(TrainableDlrmTest, LossDecreasesWithTraining)
{
    Rng rng(9);
    TrainableDlrm model(TinyConfig(), GetParam(), rng);
    SyntheticCtrDataset ds(TinyConfig(), 10);
    nn::Adam opt(model.Parameters(), 3e-3f);
    // Average early vs late loss: single steps are noisy on a synthetic
    // stream.
    float early = 0, late = 0;
    const int steps = 40;
    for (int step = 0; step < steps; ++step) {
        const CtrBatch b = ds.NextBatch(16);
        const float loss = model.TrainStep(b, opt);
        if (step < 5) early += loss / 5;
        if (step >= steps - 5) late += loss / 5;
    }
    EXPECT_LT(late, early);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, TrainableDlrmTest,
    ::testing::Values(EmbeddingMode::kTable, EmbeddingMode::kDheUniform,
                      EmbeddingMode::kDheVaried),
    [](const auto& info) {
        switch (info.param) {
          case EmbeddingMode::kTable: return "Table";
          case EmbeddingMode::kDheUniform: return "DheUniform";
          default: return "DheVaried";
        }
    });

TEST(TrainableDlrmTest, EmbeddingBytesTableVsDhe)
{
    DlrmConfig cfg = TinyConfig();
    cfg.table_sizes = {100000, 100000, 100000};
    Rng rng(11);
    TrainableDlrm table_model(cfg, EmbeddingMode::kTable, rng);
    TrainableDlrm dhe_model(cfg, EmbeddingMode::kDheVaried, rng);
    EXPECT_GT(table_model.EmbeddingParamBytes(),
              dhe_model.EmbeddingParamBytes());
}

TEST(TrainableDlrmTest, AccessorsGuardMode)
{
    Rng rng(12);
    TrainableDlrm table_model(TinyConfig(), EmbeddingMode::kTable, rng);
    EXPECT_NO_THROW(table_model.table(0));
    EXPECT_THROW(table_model.dhe(0), std::logic_error);
    TrainableDlrm dhe_model(TinyConfig(), EmbeddingMode::kDheUniform, rng);
    EXPECT_THROW(dhe_model.table(0), std::logic_error);
    EXPECT_NO_THROW(dhe_model.dhe(0));
}

class SecureDlrmTest : public ::testing::TestWithParam<core::GenKind>
{
};

TEST_P(SecureDlrmTest, InferenceRunsAndOutputsProbabilities)
{
    const DlrmConfig cfg = TinyConfig();
    Rng rng(13);
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
    for (int64_t s : cfg.table_sizes) {
        gens.push_back(
            core::MakeGenerator(GetParam(), s, cfg.emb_dim, rng));
    }
    SecureDlrm model(cfg, std::move(gens), rng);
    SyntheticCtrDataset ds(cfg, 14);
    const CtrBatch b = ds.NextBatch(4);
    const Tensor probs = model.Inference(b.dense, b.sparse);
    EXPECT_EQ(probs.shape(), (Shape{4}));
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_GE(probs.at(i), 0.0f);
        EXPECT_LE(probs.at(i), 1.0f);
    }
    EXPECT_GT(model.EmbeddingFootprintBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SecureDlrmTest,
    ::testing::Values(core::GenKind::kIndexLookup,
                      core::GenKind::kLinearScan,
                      core::GenKind::kCircuitOram,
                      core::GenKind::kDheVaried,
                      core::GenKind::kHybridVaried),
    [](const auto& info) {
        switch (info.param) {
          case core::GenKind::kIndexLookup: return "IndexLookup";
          case core::GenKind::kLinearScan: return "LinearScan";
          case core::GenKind::kCircuitOram: return "CircuitOram";
          case core::GenKind::kDheVaried: return "DheVaried";
          default: return "HybridVaried";
        }
    });

TEST(SecureDlrmTest, PooledInferenceMatchesSingleHotForUnitBags)
{
    // With every bag of length 1, pooled inference must equal the
    // single-hot path exactly.
    const DlrmConfig cfg = TinyConfig();
    Rng rng(30);
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
    for (int64_t s : cfg.table_sizes) {
        gens.push_back(core::MakeGenerator(core::GenKind::kLinearScan, s,
                                           cfg.emb_dim, rng));
    }
    Rng mlp_rng(31);
    SecureDlrm model(cfg, std::move(gens), mlp_rng);
    SyntheticCtrDataset ds(cfg, 32);
    const CtrBatch b = ds.NextBatch(4);

    std::vector<std::vector<int64_t>> offsets(
        b.sparse.size(), std::vector<int64_t>{0, 1, 2, 3, 4});
    const Tensor single = model.Inference(b.dense, b.sparse);
    const Tensor pooled =
        model.InferencePooled(b.dense, b.sparse, offsets);
    EXPECT_TRUE(pooled.AllClose(single, 1e-5f));
}

TEST(SecureDlrmTest, PooledInferenceHandlesVariableBags)
{
    const DlrmConfig cfg = TinyConfig();
    Rng rng(33);
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
    for (int64_t s : cfg.table_sizes) {
        gens.push_back(core::MakeGenerator(core::GenKind::kDheVaried, s,
                                           cfg.emb_dim, rng));
    }
    Rng mlp_rng(34);
    SecureDlrm model(cfg, std::move(gens), mlp_rng);

    const int64_t batch = 3;
    Tensor dense = Tensor::Randn({batch, cfg.num_dense}, rng);
    // Feature 0: bags {1,2}, {}, {0}; features 1/2: single-hot.
    std::vector<std::vector<int64_t>> ids{{1, 2, 0}, {0, 1, 2},
                                          {3, 4, 5}};
    std::vector<std::vector<int64_t>> offsets{{0, 2, 2, 3},
                                              {0, 1, 2, 3},
                                              {0, 1, 2, 3}};
    const Tensor probs = model.InferencePooled(dense, ids, offsets);
    EXPECT_EQ(probs.shape(), (Shape{batch}));
    for (int64_t i = 0; i < batch; ++i) {
        EXPECT_GE(probs.at(i), 0.0f);
        EXPECT_LE(probs.at(i), 1.0f);
    }
}

TEST(SecureDlrmTest, SecureMatchesNonSecureWithSameTables)
{
    // Linear scan and ORAM must produce the same model output as the
    // non-secure lookup when seeded with identical tables.
    const DlrmConfig cfg = TinyConfig();
    Rng table_rng(15);
    std::vector<Tensor> tables;
    for (int64_t s : cfg.table_sizes) {
        tables.push_back(Tensor::Randn({s, cfg.emb_dim}, table_rng));
    }
    auto build = [&](core::GenKind kind, uint64_t seed) {
        Rng rng(seed);
        std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
        for (size_t f = 0; f < tables.size(); ++f) {
            core::GeneratorOptions opt;
            opt.table = &tables[f];
            gens.push_back(core::MakeGenerator(
                kind, cfg.table_sizes[f], cfg.emb_dim, rng, opt));
        }
        Rng mlp_rng(777);  // identical MLP weights across models
        return SecureDlrm(cfg, std::move(gens), mlp_rng);
    };
    SecureDlrm base = build(core::GenKind::kIndexLookup, 16);
    SecureDlrm scan = build(core::GenKind::kLinearScan, 17);
    SecureDlrm oram = build(core::GenKind::kPathOram, 18);

    SyntheticCtrDataset ds(cfg, 19);
    const CtrBatch b = ds.NextBatch(6);
    const Tensor pb = base.Inference(b.dense, b.sparse);
    EXPECT_TRUE(scan.Inference(b.dense, b.sparse).AllClose(pb, 1e-4f));
    EXPECT_TRUE(oram.Inference(b.dense, b.sparse).AllClose(pb, 1e-4f));
}

}  // namespace
}  // namespace secemb::dlrm
