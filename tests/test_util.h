#pragma once

/**
 * @file
 * Shared test helpers: finite-difference gradient checking against the
 * analytic backward passes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace secemb::test {

/**
 * Check dLoss/dx for a scalar loss(x) against the analytic gradient, at up
 * to `samples` randomly-chosen coordinates.
 */
inline void
ExpectGradientsClose(const std::function<float(const Tensor&)>& loss,
                     const Tensor& x, const Tensor& analytic_grad,
                     float eps = 1e-2f, float tol = 2e-2f,
                     int samples = 24, uint64_t seed = 7)
{
    ASSERT_EQ(x.numel(), analytic_grad.numel());
    Rng rng(seed);
    const int64_t n = x.numel();
    for (int s = 0; s < samples && s < n; ++s) {
        const int64_t i = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(n)));
        Tensor xp = x, xm = x;
        xp.at(i) += eps;
        xm.at(i) -= eps;
        const float numeric = (loss(xp) - loss(xm)) / (2 * eps);
        const float analytic = analytic_grad.at(i);
        const float scale =
            std::max({1.0f, std::abs(numeric), std::abs(analytic)});
        EXPECT_NEAR(numeric, analytic, tol * scale)
            << "coordinate " << i;
    }
}

}  // namespace secemb::test
