/**
 * @file
 * Tests for the constant-time primitives and oblivious scans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "oblivious/ct_ops.h"
#include "oblivious/scan.h"
#include "oblivious/vector_scan.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb::oblivious {
namespace {

TEST(CtOpsTest, BoolToMask)
{
    EXPECT_EQ(BoolToMask(0), 0ULL);
    EXPECT_EQ(BoolToMask(1), ~0ULL);
}

TEST(CtOpsTest, EqMaskExhaustiveSmall)
{
    for (uint64_t a = 0; a < 8; ++a) {
        for (uint64_t b = 0; b < 8; ++b) {
            EXPECT_EQ(EqMask(a, b), a == b ? ~0ULL : 0ULL);
        }
    }
}

TEST(CtOpsTest, EqMaskEdgeValues)
{
    EXPECT_EQ(EqMask(~0ULL, ~0ULL), ~0ULL);
    EXPECT_EQ(EqMask(0, ~0ULL), 0ULL);
    EXPECT_EQ(EqMask(1ULL << 63, 1ULL << 63), ~0ULL);
}

TEST(CtOpsTest, LtMaskRandomised)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t a = rng.Next(), b = rng.Next();
        EXPECT_EQ(LtMask(a, b), a < b ? ~0ULL : 0ULL);
    }
    EXPECT_EQ(LtMask(3, 3), 0ULL);
    EXPECT_EQ(LtMask(0, 1), ~0ULL);
    EXPECT_EQ(LtMask(~0ULL, 0), 0ULL);
}

TEST(CtOpsTest, SelectVariants)
{
    EXPECT_EQ(Select(~0ULL, 7, 9), 7ULL);
    EXPECT_EQ(Select(0, 7, 9), 9ULL);
    EXPECT_EQ(SelectI64(~0ULL, -5, 11), -5);
    EXPECT_EQ(SelectI64(0, -5, 11), 11);
    EXPECT_FLOAT_EQ(SelectF32(~0ULL, 1.5f, -2.5f), 1.5f);
    EXPECT_FLOAT_EQ(SelectF32(0, 1.5f, -2.5f), -2.5f);
    EXPECT_EQ(SelectNoInline(~0ULL, 3, 4), 3ULL);
    EXPECT_EQ(SelectNoInline(0, 3, 4), 4ULL);
}

TEST(CtOpsTest, CtCopyRowBlends)
{
    std::vector<float> src{1, 2, 3}, dst{9, 9, 9};
    CtCopyRow(0, src, dst);
    EXPECT_EQ(dst, (std::vector<float>{9, 9, 9}));
    CtCopyRow(~0ULL, src, dst);
    EXPECT_EQ(dst, src);
}

TEST(CtOpsTest, CtSwapRows)
{
    std::vector<float> a{1, 2}, b{3, 4};
    CtSwapRows(0, a, b);
    EXPECT_EQ(a, (std::vector<float>{1, 2}));
    CtSwapRows(~0ULL, a, b);
    EXPECT_EQ(a, (std::vector<float>{3, 4}));
    EXPECT_EQ(b, (std::vector<float>{1, 2}));
}

TEST(CtOpsTest, CtSwapU64)
{
    uint64_t a = 5, b = 6;
    CtSwapU64(0, a, b);
    EXPECT_EQ(a, 5u);
    CtSwapU64(~0ULL, a, b);
    EXPECT_EQ(a, 6u);
    EXPECT_EQ(b, 5u);
}

TEST(ScanTest, LinearScanLookupReturnsRequestedRow)
{
    Rng rng(6);
    const int64_t rows = 37, cols = 5;
    const Tensor table = Tensor::Randn({rows, cols}, rng);
    std::vector<float> out(static_cast<size_t>(cols));
    for (int64_t r = 0; r < rows; ++r) {
        LinearScanLookup(table.flat(), rows, cols, r, out);
        for (int64_t c = 0; c < cols; ++c) {
            EXPECT_FLOAT_EQ(out[static_cast<size_t>(c)], table.at(r, c));
        }
    }
}

TEST(ScanTest, LinearScanAccumulateSums)
{
    Rng rng(7);
    const Tensor table = Tensor::Randn({8, 3}, rng);
    std::vector<float> out(3, 0.0f);
    LinearScanLookupAccumulate(table.flat(), 8, 3, 2, out);
    LinearScanLookupAccumulate(table.flat(), 8, 3, 5, out);
    for (int64_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(out[static_cast<size_t>(c)],
                    table.at(2, c) + table.at(5, c), 1e-5f);
    }
}

TEST(ScanTest, ObliviousArgmaxMatchesStd)
{
    Rng rng(8);
    for (int trial = 0; trial < 200; ++trial) {
        const int64_t n = 1 + static_cast<int64_t>(rng.NextBounded(64));
        std::vector<float> v(static_cast<size_t>(n));
        for (auto& x : v) x = rng.NextGaussian();
        const auto expect =
            std::distance(v.begin(), std::max_element(v.begin(), v.end()));
        EXPECT_EQ(ObliviousArgmax(v), expect);
    }
}

TEST(ScanTest, ObliviousArgmaxNegativeValues)
{
    std::vector<float> v{-5.0f, -1.0f, -3.0f};
    EXPECT_EQ(ObliviousArgmax(v), 1);
}

TEST(ScanTest, ObliviousArgmaxFirstOnTies)
{
    std::vector<float> v{1.0f, 2.0f, 2.0f, 0.0f};
    EXPECT_EQ(ObliviousArgmax(v), 1);
}

TEST(ScanTest, ObliviousArgmaxSingleElement)
{
    std::vector<float> v{-3.5f};
    EXPECT_EQ(ObliviousArgmax(v), 0);
}

TEST(ScanTest, ObliviousReadWriteU64)
{
    std::vector<uint64_t> v{10, 20, 30, 40};
    EXPECT_EQ(ObliviousReadU64(v, 2), 30u);
    ObliviousWriteU64(v, 1, 99);
    EXPECT_EQ(v, (std::vector<uint64_t>{10, 99, 30, 40}));
    EXPECT_EQ(ObliviousReadU64(v, 1), 99u);
}

TEST(VectorScanTest, MatchesScalarOnAlignedBuffers)
{
    const int64_t rows = 37, cols = 16;  // cols % kScanLanes == 0
    Rng rng(7);
    const Tensor table = Tensor::Randn({rows, cols}, rng);
    std::vector<float> got(static_cast<size_t>(cols));
    std::vector<float> want(static_cast<size_t>(cols));
    for (int64_t idx : {int64_t{0}, int64_t{17}, rows - 1}) {
        LinearScanLookupVec(table.flat(), rows, cols, idx, got);
        LinearScanLookup(table.flat(), rows, cols, idx, want);
        EXPECT_EQ(got, want) << "idx=" << idx;
    }
}

TEST(VectorScanTest, MisalignedBufferMatchesScalar)
{
    // The SIMD path views float storage as int32 vector lanes; buffers
    // are only guaranteed element (4-byte) alignment, never 32-byte. Run
    // the vector scan on deliberately 4-byte-offset table and output
    // buffers (odd float offset from a vector allocation) and require
    // bit-identical results with the scalar path — this is the
    // regression surface of the strict-aliasing/may_alias fix.
    const int64_t rows = 33, cols = 24;  // vec-eligible width
    Rng rng(8);
    const Tensor src = Tensor::Randn({rows, cols}, rng);

    std::vector<float> table_buf(static_cast<size_t>(rows * cols) + 1);
    std::copy(src.data(), src.data() + src.numel(),
              table_buf.data() + 1);
    const std::span<const float> table{table_buf.data() + 1,
                                       static_cast<size_t>(rows * cols)};
    ASSERT_NE(reinterpret_cast<uintptr_t>(table.data()) % 32, 0u);

    std::vector<float> out_buf(static_cast<size_t>(cols) + 1);
    const std::span<float> out{out_buf.data() + 1,
                               static_cast<size_t>(cols)};
    std::vector<float> want(static_cast<size_t>(cols));
    for (int64_t idx = 0; idx < rows; ++idx) {
        LinearScanLookupVec(table, rows, cols, idx, out);
        LinearScanLookup(table, rows, cols, idx, want);
        for (int64_t c = 0; c < cols; ++c) {
            EXPECT_EQ(out[static_cast<size_t>(c)],
                      want[static_cast<size_t>(c)])
                << "idx=" << idx << " col=" << c;
        }
    }
}

TEST(VectorScanTest, BatchParallelMatchesPerElement)
{
    const int64_t rows = 64, cols = 16, batch = 33;
    Rng rng(9);
    const Tensor table = Tensor::Randn({rows, cols}, rng);
    std::vector<int64_t> ids(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
        ids[static_cast<size_t>(i)] = (i * 31) % rows;
    }
    std::vector<float> got(static_cast<size_t>(batch * cols));
    LinearScanLookupBatch(table.flat(), rows, cols, ids, got,
                          /*nthreads=*/4);

    std::vector<float> want(static_cast<size_t>(cols));
    for (int64_t i = 0; i < batch; ++i) {
        LinearScanLookup(table.flat(), rows, cols,
                         ids[static_cast<size_t>(i)], want);
        for (int64_t c = 0; c < cols; ++c) {
            EXPECT_EQ(got[static_cast<size_t>(i * cols + c)],
                      want[static_cast<size_t>(c)])
                << "i=" << i << " c=" << c;
        }
    }
}

}  // namespace
}  // namespace secemb::oblivious
