/**
 * @file
 * Unit tests for the durable-state formats behind the crash harness
 * (`ctest -L crash`): journal framing/replay-load semantics, atomic
 * checkpoint round-trips, the public-constant checkpoint size, the
 * sparse negative control's refusal at recovery, the fsync-on-create
 * regression for FileStore, and PagedTable reattachment.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "store/backing_store.h"
#include "store/durable.h"
#include "store/paged_table.h"

namespace secemb::store {
namespace {

std::string
TempPath(const std::string& name)
{
    const std::string path = testing::TempDir() + "secemb_" + name;
    std::filesystem::remove_all(path);
    return path;
}

void
FlipByte(const std::string& path, int64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(offset);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(offset);
    f.write(&b, 1);
}

void
TruncateBy(const std::string& path, int64_t bytes)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    ASSERT_FALSE(ec);
    std::filesystem::resize_file(
        path, size - static_cast<uintmax_t>(bytes), ec);
    ASSERT_FALSE(ec);
}

/** Small but non-degenerate geometry: 7 buckets, Z=4, stash of 6. */
CheckpointData
MakeState(uint64_t salt)
{
    CheckpointData d;
    d.num_blocks = 8;
    d.block_words = 4;
    d.bucket_slots = 4;
    d.levels = 2;
    d.stash_capacity = 6;
    d.eviction_period = 8;
    d.cipher_seed = 0x1234 + salt;
    d.evict_counter = 3 + salt;
    d.last_seq = 17 + salt;
    d.accesses = 29;
    d.evictions = 3;
    const int64_t nb = d.num_buckets();
    d.posmap_leaves.resize(static_cast<size_t>(d.num_blocks));
    d.slot_id.assign(static_cast<size_t>(nb * d.bucket_slots), ~uint64_t{0});
    d.slot_leaf.resize(static_cast<size_t>(nb * d.bucket_slots));
    d.stash_id.assign(static_cast<size_t>(d.stash_capacity), ~uint64_t{0});
    d.stash_leaf.resize(static_cast<size_t>(d.stash_capacity));
    d.stash_data.resize(
        static_cast<size_t>(d.stash_capacity * d.block_words));
    d.bucket_version.resize(static_cast<size_t>(nb));
    for (size_t i = 0; i < d.posmap_leaves.size(); ++i) {
        d.posmap_leaves[i] = static_cast<uint32_t>((i + salt) % 4);
    }
    for (size_t i = 0; i < d.stash_data.size(); ++i) {
        d.stash_data[i] = static_cast<uint32_t>(i * 7 + salt);
    }
    for (size_t i = 0; i < d.bucket_version.size(); ++i) {
        d.bucket_version[i] = i + salt;
    }
    d.slot_id[0] = 5;
    d.slot_leaf[0] = 2;
    return d;
}

std::vector<uint8_t>
Payload(size_t n, uint8_t base)
{
    std::vector<uint8_t> p(n);
    for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(base + i);
    return p;
}

TEST(JournalTest, AppendLoadRoundTrip)
{
    const std::string dir = TempPath("journal_roundtrip");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/journal.bin";
    const uint64_t geom = 0xfeedULL;

    Journal j;
    ASSERT_TRUE(j.Reset(path, /*base_seq=*/0, geom).ok());
    ASSERT_TRUE(
        j.Append(JournalRecordType::kAccess, 1, Payload(24, 1), true).ok());
    ASSERT_TRUE(
        j.Append(JournalRecordType::kEvict, 2, Payload(40, 9), true).ok());
    ASSERT_TRUE(
        j.Append(JournalRecordType::kAccess, 3, Payload(24, 5), true).ok());
    EXPECT_EQ(j.records(), 3);

    JournalLoadResult loaded;
    ASSERT_TRUE(LoadJournal(path, geom, /*skip_through=*/0, &loaded).ok());
    ASSERT_EQ(loaded.records.size(), 3u);
    EXPECT_EQ(loaded.records[0].seq, 1u);
    EXPECT_EQ(loaded.records[0].type, JournalRecordType::kAccess);
    EXPECT_EQ(loaded.records[0].payload, Payload(24, 1));
    EXPECT_EQ(loaded.records[1].type, JournalRecordType::kEvict);
    EXPECT_EQ(loaded.records[1].payload, Payload(40, 9));
    EXPECT_EQ(loaded.skipped, 0);
    EXPECT_FALSE(loaded.dropped_tail);

    // skip_through inside the journal: pre-checkpoint records skipped,
    // continuity still enforced from skip_through+1.
    JournalLoadResult tail;
    ASSERT_TRUE(LoadJournal(path, geom, /*skip_through=*/2, &tail).ok());
    ASSERT_EQ(tail.records.size(), 1u);
    EXPECT_EQ(tail.records[0].seq, 3u);
    EXPECT_EQ(tail.skipped, 2);

    // Geometry hash mismatch fails closed: the journal must never be
    // replayed into a differently-shaped instance (typed as the config
    // error it is, distinct from kInternal corruption).
    JournalLoadResult wrong;
    EXPECT_EQ(LoadJournal(path, geom + 1, 0, &wrong).code,
              serving::StatusCode::kInvalidArgument);

    std::filesystem::remove_all(dir);
}

TEST(JournalTest, JournalAheadOfCheckpointFailsClosed)
{
    const std::string dir = TempPath("journal_ahead");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/journal.bin";

    Journal j;
    ASSERT_TRUE(j.Reset(path, /*base_seq=*/10, 1).ok());
    // A checkpoint covering only seq 5 cannot be completed by a journal
    // whose history starts after seq 10 — the gap means lost deltas.
    JournalLoadResult loaded;
    EXPECT_EQ(LoadJournal(path, 1, /*skip_through=*/5, &loaded).code,
              serving::StatusCode::kInternal);
    std::filesystem::remove_all(dir);
}

TEST(JournalTest, DamagedFinalRecordIsADroppableTail)
{
    const std::string dir = TempPath("journal_tail");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/journal.bin";
    const uint64_t geom = 7;

    Journal j;
    ASSERT_TRUE(j.Reset(path, 0, geom).ok());
    ASSERT_TRUE(
        j.Append(JournalRecordType::kAccess, 1, Payload(24, 1), true).ok());
    ASSERT_TRUE(
        j.Append(JournalRecordType::kAccess, 2, Payload(24, 2), true).ok());
    TruncateBy(path, 5);  // tear the last record mid-crc

    JournalLoadResult loaded;
    ASSERT_TRUE(LoadJournal(path, geom, 0, &loaded).ok());
    ASSERT_EQ(loaded.records.size(), 1u);
    EXPECT_EQ(loaded.records[0].seq, 1u);
    EXPECT_TRUE(loaded.dropped_tail);
    EXPECT_GT(loaded.dropped_tail_bytes, 0);
    std::filesystem::remove_all(dir);
}

TEST(JournalTest, MidJournalCorruptionFailsClosed)
{
    const std::string dir = TempPath("journal_mid");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/journal.bin";
    const uint64_t geom = 7;

    Journal j;
    ASSERT_TRUE(j.Reset(path, 0, geom).ok());
    ASSERT_TRUE(
        j.Append(JournalRecordType::kAccess, 1, Payload(24, 1), true).ok());
    ASSERT_TRUE(
        j.Append(JournalRecordType::kAccess, 2, Payload(24, 2), true).ok());
    // Flip a payload byte of record 1 (framing intact, CRC broken). A
    // valid record exists beyond it, so this is NOT a crash tail —
    // it is corruption, and recovery must refuse to guess.
    FlipByte(path, JournalFileHeaderBytes() + 26);

    JournalLoadResult loaded;
    EXPECT_EQ(LoadJournal(path, geom, 0, &loaded).code,
              serving::StatusCode::kInternal);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, AtomicRoundTripIsBitIdentical)
{
    const std::string dir = TempPath("ckpt_roundtrip");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/ckpt.bin";
    const CheckpointData d = MakeState(1);

    int64_t bytes = 0;
    ASSERT_TRUE(WriteCheckpointAtomic(path, d, false, &bytes).ok());
    EXPECT_EQ(bytes,
              CheckpointSerializedBytes(d.num_blocks, d.block_words,
                                        d.bucket_slots, d.levels,
                                        d.stash_capacity));
    EXPECT_EQ(static_cast<int64_t>(std::filesystem::file_size(path)),
              bytes);
    // No temp file left behind by the write/fsync/rename commit.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    CheckpointData r;
    ASSERT_TRUE(ReadCheckpoint(path, &r).ok());
    EXPECT_EQ(r.num_blocks, d.num_blocks);
    EXPECT_EQ(r.cipher_seed, d.cipher_seed);
    EXPECT_EQ(r.evict_counter, d.evict_counter);
    EXPECT_EQ(r.last_seq, d.last_seq);
    EXPECT_EQ(r.posmap_leaves, d.posmap_leaves);
    EXPECT_EQ(r.slot_id, d.slot_id);
    EXPECT_EQ(r.slot_leaf, d.slot_leaf);
    EXPECT_EQ(r.stash_id, d.stash_id);
    EXPECT_EQ(r.stash_leaf, d.stash_leaf);
    EXPECT_EQ(r.stash_data, d.stash_data);
    EXPECT_EQ(r.bucket_version, d.bucket_version);
    EXPECT_EQ(DurableGeometryHash(r), DurableGeometryHash(d));
    std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, SizeIsAPublicConstantOfTheGeometry)
{
    const std::string dir = TempPath("ckpt_size");
    ASSERT_TRUE(std::filesystem::create_directories(dir));

    // Dense (production) format: identical size whether the stash holds
    // 1 or 5 real blocks — occupancy must not be visible in the file.
    CheckpointData one = MakeState(2);
    one.stash_id[0] = 3;
    CheckpointData five = MakeState(2);
    for (size_t s = 0; s < 5; ++s) five.stash_id[s] = s;

    int64_t bytes_one = 0;
    int64_t bytes_five = 0;
    ASSERT_TRUE(WriteCheckpointAtomic(dir + "/a.bin", one, false,
                                      &bytes_one)
                    .ok());
    ASSERT_TRUE(WriteCheckpointAtomic(dir + "/b.bin", five, false,
                                      &bytes_five)
                    .ok());
    EXPECT_EQ(bytes_one, bytes_five);

    // The sparse negative control leaks exactly that: its size moves
    // with occupancy, which is why recovery refuses the format.
    ASSERT_TRUE(WriteCheckpointAtomic(dir + "/sa.bin", one, true,
                                      &bytes_one)
                    .ok());
    ASSERT_TRUE(WriteCheckpointAtomic(dir + "/sb.bin", five, true,
                                      &bytes_five)
                    .ok());
    EXPECT_LT(bytes_one, bytes_five);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, SparseNegativeControlRefusedAtRecovery)
{
    const std::string dir = TempPath("ckpt_sparse");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/ckpt.bin";
    ASSERT_TRUE(WriteCheckpointAtomic(path, MakeState(3), true, nullptr)
                    .ok());
    CheckpointData r;
    const serving::Status s = ReadCheckpoint(path, &r);
    EXPECT_EQ(s.code, serving::StatusCode::kInternal);
    EXPECT_NE(s.ToString().find("sparse"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, TornOrCorruptCheckpointFailsClosed)
{
    const std::string dir = TempPath("ckpt_torn");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/ckpt.bin";
    const CheckpointData d = MakeState(4);
    CheckpointData r;

    ASSERT_TRUE(WriteCheckpointAtomic(path, d, false, nullptr).ok());
    FlipByte(path, 100);  // inside the payload: CRC must catch it
    EXPECT_EQ(ReadCheckpoint(path, &r).code,
              serving::StatusCode::kInternal);

    ASSERT_TRUE(WriteCheckpointAtomic(path, d, false, nullptr).ok());
    TruncateBy(path, 8);  // torn write: short file
    EXPECT_EQ(ReadCheckpoint(path, &r).code,
              serving::StatusCode::kInternal);

    EXPECT_EQ(ReadCheckpoint(dir + "/missing.bin", &r).code,
              serving::StatusCode::kInternal);
    std::filesystem::remove_all(dir);
}

TEST(FsyncTest, ParentDirSyncAndFileStoreCreation)
{
    const std::string dir = TempPath("fsync_parent");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string file = dir + "/f.bin";
    { std::ofstream(file).put('x'); }
    EXPECT_TRUE(FsyncParentDir(file).ok());
    EXPECT_TRUE(FsyncDir(dir).ok());
    EXPECT_FALSE(FsyncDir(dir + "/nope").ok());

    // Regression: FileStore creation is durable — the store file must be
    // open-able with create=false immediately after the creating handle
    // closes (creation fsyncs the file AND its parent directory).
    StoreConfig sc;
    sc.backend = StoreBackend::kFile;
    sc.path = dir + "/pages.bin";
    sc.page_bytes = 256;
    sc.create = true;
    {
        std::unique_ptr<BackingStore> created;
        ASSERT_TRUE(MakeBackingStore(sc, 4, &created).ok());
    }
    sc.create = false;
    std::unique_ptr<BackingStore> reopened;
    EXPECT_TRUE(MakeBackingStore(sc, 4, &reopened).ok());
    std::filesystem::remove_all(dir);
}

TEST(PagedTableTest, RecoverReattachesAndServesIdenticalRows)
{
    const std::string dir = TempPath("paged_recover");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    constexpr int64_t kRows = 24;
    constexpr int64_t kDim = 8;

    StoreConfig sc;
    sc.backend = StoreBackend::kFile;
    sc.path = dir + "/table.bin";
    sc.page_bytes = 256;
    sc.cache_pages = 3;
    sc.create = true;

    std::vector<float> data(static_cast<size_t>(kRows * kDim));
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<float>(i) * 0.5f;
    }
    {
        PagedTable table(data.data(), kRows, kDim, sc);
        ASSERT_TRUE(table.Sync().ok());
    }  // process "dies" with a clean store on disk

    sc.create = false;
    std::unique_ptr<PagedTable> recovered;
    ASSERT_TRUE(PagedTable::Recover(kRows, kDim, sc, &recovered).ok());

    const std::vector<int64_t> indices = {0, 7, 23, 7};
    std::vector<float> out(indices.size() * kDim);
    ASSERT_TRUE(
        recovered->LookupBatch(indices, out.data(), /*nthreads=*/1).ok());
    for (size_t b = 0; b < indices.size(); ++b) {
        for (int64_t c = 0; c < kDim; ++c) {
            EXPECT_EQ(out[b * kDim + static_cast<size_t>(c)],
                      data[static_cast<size_t>(indices[b] * kDim + c)])
                << "row " << indices[b] << " col " << c;
        }
    }

    // Geometry mismatch fails closed (store header validates the page
    // count a different row count implies).
    std::unique_ptr<PagedTable> wrong;
    EXPECT_FALSE(PagedTable::Recover(kRows * 4, kDim, sc, &wrong).ok());
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace secemb::store
