/**
 * @file
 * Serving pipeline tests: request/response correctness against direct
 * generator calls, pooled and degraded-pooled equivalence, admission
 * control (shed), typed validation errors, deadline handling, and the
 * queue lifecycle — shutdown drains in-flight requests, rejects new ones
 * with a typed status, and never deadlocks under oversubscribed thread
 * counts (run under the `concurrency` ctest label with TSan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/table_generators.h"
#include "serving/queue.h"
#include "serving/server.h"
#include "tensor/rng.h"

namespace secemb::serving {
namespace {

std::shared_ptr<core::LinearScanTable>
MakeScan(int64_t rows, int64_t dim, uint64_t seed)
{
    Rng rng(seed);
    return std::make_shared<core::LinearScanTable>(
        Tensor::Randn({rows, dim}, rng));
}

/** Wrapper that blocks every generation until Open() — lets tests hold
 *  the batcher inside a batch while they fill or drain the queue. */
class GatedGenerator : public core::EmbeddingGenerator
{
  public:
    explicit GatedGenerator(std::shared_ptr<core::EmbeddingGenerator> inner)
        : inner_(std::move(inner))
    {
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        Wait();
        inner_->Generate(indices, out);
    }

    void
    GeneratePooled(std::span<const int64_t> indices,
                   std::span<const int64_t> offsets, Tensor& out) override
    {
        Wait();
        inner_->GeneratePooled(indices, offsets, out);
    }

    int64_t dim() const override { return inner_->dim(); }
    int64_t num_rows() const override { return inner_->num_rows(); }
    int64_t MemoryFootprintBytes() const override
    {
        return inner_->MemoryFootprintBytes();
    }
    std::string_view name() const override { return "Gated"; }
    bool IsOblivious() const override { return inner_->IsOblivious(); }

    void
    Open()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            open_ = true;
        }
        cv_.notify_all();
    }

    /** Block until the batcher has entered a generation call. */
    void
    AwaitEntered()
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return entered_; });
    }

  private:
    void
    Wait()
    {
        std::unique_lock<std::mutex> lk(mu_);
        entered_ = true;
        cv_.notify_all();
        cv_.wait(lk, [this] { return open_; });
    }

    std::shared_ptr<core::EmbeddingGenerator> inner_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool open_ = false;
    bool entered_ = false;
};

// --- correctness ----------------------------------------------------------

TEST(ServingTest, SingleHotMatchesDirectGeneration)
{
    auto scan = MakeScan(64, 8, 11);
    ServerConfig cfg;
    cfg.max_batch = 4;
    cfg.flush_deadline_us = 50;
    cfg.default_deadline_us = 0;
    Server server({scan}, cfg);

    const std::vector<int64_t> ids{3, 17, 0, 63, 5};
    Request req;
    req.indices = ids;
    const Response resp = server.SubmitAndWait(std::move(req));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();

    const Tensor expect = scan->GenerateBatch(ids);
    EXPECT_EQ(resp.embeddings.shape(), expect.shape());
    EXPECT_TRUE(resp.embeddings.AllClose(expect, 0.0f));

    server.Shutdown();
    const ServerStats s = server.GetStats();
    EXPECT_EQ(s.submitted, 1u);
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.failed, 0u);
}

TEST(ServingTest, PooledMatchesDirectPooled)
{
    auto scan = MakeScan(32, 4, 12);
    ServerConfig cfg;
    cfg.default_deadline_us = 0;
    Server server({scan}, cfg);

    const std::vector<int64_t> ids{1, 2, 3, 9, 9, 30};
    const std::vector<int64_t> offsets{0, 2, 2, 5, 6};
    Request req;
    req.indices = ids;
    req.pooled_offsets = offsets;
    const Response resp = server.SubmitAndWait(std::move(req));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();

    Tensor expect(
        {static_cast<int64_t>(offsets.size()) - 1, scan->dim()});
    scan->GeneratePooled(ids, offsets, expect);
    EXPECT_TRUE(resp.embeddings.AllClose(expect, 1e-5f));
}

TEST(ServingTest, DegradedPerSlotPoolingMatchesNative)
{
    // Level-2 degradation serves pooled requests per-slot (Generate +
    // local segment-sum); the values must match the native pooled path.
    auto scan = MakeScan(32, 4, 13);
    ServerConfig cfg;
    cfg.default_deadline_us = 0;
    cfg.min_degrade_level = 2;
    Server server({scan}, cfg);

    const std::vector<int64_t> ids{4, 4, 7, 0, 31};
    const std::vector<int64_t> offsets{0, 1, 3, 5};
    Request req;
    req.indices = ids;
    req.pooled_offsets = offsets;
    const Response resp = server.SubmitAndWait(std::move(req));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.degrade_level, 2);

    Tensor expect(
        {static_cast<int64_t>(offsets.size()) - 1, scan->dim()});
    scan->GeneratePooled(ids, offsets, expect);
    EXPECT_TRUE(resp.embeddings.AllClose(expect, 1e-5f));
}

TEST(ServingTest, MultipleFeaturesRouteToTheirGenerators)
{
    auto f0 = MakeScan(16, 4, 21);
    auto f1 = MakeScan(64, 4, 22);
    ServerConfig cfg;
    cfg.default_deadline_us = 0;
    Server server({f0, f1}, cfg);

    Request r0;
    r0.feature = 0;
    r0.indices = {1, 15};
    Request r1;
    r1.feature = 1;
    r1.indices = {40};
    auto fut0 = server.Submit(std::move(r0));
    auto fut1 = server.Submit(std::move(r1));
    const Response a = fut0.get();
    const Response b = fut1.get();
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_TRUE(a.embeddings.AllClose(
        f0->GenerateBatch(std::vector<int64_t>{1, 15}), 0.0f));
    EXPECT_TRUE(b.embeddings.AllClose(
        f1->GenerateBatch(std::vector<int64_t>{40}), 0.0f));
}

// --- validation and deadlines ---------------------------------------------

TEST(ServingTest, InvalidRequestsGetTypedErrors)
{
    auto scan = MakeScan(16, 4, 31);
    ServerConfig cfg;
    cfg.default_deadline_us = 0;
    Server server({scan}, cfg);

    Request bad_feature;
    bad_feature.feature = 7;
    bad_feature.indices = {1};
    EXPECT_EQ(server.SubmitAndWait(std::move(bad_feature)).status.code,
              StatusCode::kInvalidArgument);

    Request empty;
    EXPECT_EQ(server.SubmitAndWait(std::move(empty)).status.code,
              StatusCode::kInvalidArgument);

    Request out_of_range;
    out_of_range.indices = {3, 99};
    EXPECT_EQ(server.SubmitAndWait(std::move(out_of_range)).status.code,
              StatusCode::kInvalidArgument);

    Request bad_offsets;
    bad_offsets.indices = {1, 2};
    bad_offsets.pooled_offsets = {0, 5};
    EXPECT_EQ(server.SubmitAndWait(std::move(bad_offsets)).status.code,
              StatusCode::kInvalidArgument);

    // Valid traffic still flows afterwards.
    Request good;
    good.indices = {2};
    EXPECT_TRUE(server.SubmitAndWait(std::move(good)).status.ok());
}

TEST(ServingTest, ExpiredDeadlineIsRejectedTyped)
{
    auto scan = MakeScan(16, 4, 32);
    ServerConfig cfg;
    cfg.default_deadline_us = 0;
    Server server({scan}, cfg);

    Request req;
    req.indices = {1};
    req.deadline_ns = 1;  // expired long ago on any monotonic clock
    const Response resp = server.SubmitAndWait(std::move(req));
    EXPECT_EQ(resp.status.code, StatusCode::kDeadlineExceeded);
    EXPECT_EQ(server.GetStats().deadline_exceeded, 1u);
}

// --- admission control ----------------------------------------------------

TEST(ServingTest, ShedsWithTypedStatusWhenQueueIsFull)
{
    auto gate = std::make_shared<GatedGenerator>(MakeScan(16, 4, 41));
    ServerConfig cfg;
    cfg.queue_capacity = 2;
    cfg.max_batch = 1;
    cfg.default_deadline_us = 0;
    Server server({gate}, cfg);

    // First request occupies the batcher inside the gate...
    Request r0;
    r0.indices = {1};
    auto f0 = server.Submit(std::move(r0));
    gate->AwaitEntered();

    // ...two more fill the bounded queue...
    std::vector<std::future<Response>> queued;
    for (int i = 0; i < 2; ++i) {
        Request r;
        r.indices = {2};
        queued.push_back(server.Submit(std::move(r)));
    }
    // ...and the next is shed immediately with a typed status.
    Request overflow;
    overflow.indices = {3};
    auto shed_fut = server.Submit(std::move(overflow));
    ASSERT_EQ(shed_fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "shed must fulfil the future immediately, not block";
    EXPECT_EQ(shed_fut.get().status.code, StatusCode::kShed);
    EXPECT_EQ(server.GetStats().shed, 1u);

    gate->Open();
    EXPECT_TRUE(f0.get().status.ok());
    for (auto& f : queued) EXPECT_TRUE(f.get().status.ok());
}

// --- lifecycle ------------------------------------------------------------

TEST(ServingQueueTest, ShutdownDrainsThenReportsDrained)
{
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.TryPush(1), StatusCode::kOk);
    EXPECT_EQ(q.TryPush(2), StatusCode::kOk);
    q.Shutdown();
    EXPECT_EQ(q.TryPush(3), StatusCode::kShutdown);

    int v = 0;
    using PR = BoundedQueue<int>::PopResult;
    EXPECT_EQ(q.PopWait(&v, 0), PR::kItem);
    EXPECT_EQ(v, 1);
    EXPECT_EQ(q.PopWait(&v, 0), PR::kItem);
    EXPECT_EQ(v, 2);
    EXPECT_EQ(q.PopWait(&v, 0), PR::kDrained);
}

TEST(ServingQueueTest, CapacityAndTimeoutSemantics)
{
    BoundedQueue<int> q(1);
    EXPECT_EQ(q.TryPush(1), StatusCode::kOk);
    EXPECT_EQ(q.TryPush(2), StatusCode::kShed);
    int v = 0;
    using PR = BoundedQueue<int>::PopResult;
    EXPECT_EQ(q.PopWait(&v, 0), PR::kItem);
    EXPECT_EQ(q.PopWait(&v, 100000), PR::kTimeout);
}

TEST(ServingTest, ShutdownDrainsInFlightAndRejectsNew)
{
    auto scan = MakeScan(32, 4, 51);
    ServerConfig cfg;
    cfg.queue_capacity = 64;
    cfg.max_batch = 4;
    cfg.default_deadline_us = 0;
    Server server({scan}, cfg);

    constexpr int kRequests = 24;
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < kRequests; ++i) {
        Request r;
        r.indices = {i % 32};
        futs.push_back(server.Submit(std::move(r)));
    }
    server.Shutdown();

    // Every admitted request drains with kOk — shutdown never drops work.
    for (auto& f : futs) {
        EXPECT_TRUE(f.get().status.ok());
    }
    // New work is rejected with the typed shutdown status.
    Request late;
    late.indices = {1};
    auto late_fut = server.Submit(std::move(late));
    ASSERT_EQ(late_fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(late_fut.get().status.code, StatusCode::kShutdown);

    const ServerStats s = server.GetStats();
    EXPECT_EQ(s.completed, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(s.rejected_shutdown, 1u);
    EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServingTest, NoDeadlockUnderOversubscribedProducersAndWorkers)
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    auto scan = MakeScan(64, 8, 61);
    ServerConfig cfg;
    cfg.queue_capacity = 8;  // small: force shedding under pressure
    cfg.max_batch = 4;
    cfg.flush_deadline_us = 50;
    cfg.default_deadline_us = 0;
    cfg.nthreads = static_cast<int>(hw) * 2 + 1;  // oversubscribed pool
    Server server({scan}, cfg);

    const int producers = static_cast<int>(hw) * 2 + 3;
    constexpr int kPerProducer = 20;
    std::atomic<int> ok{0}, shed{0}, other{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int t = 0; t < producers; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerProducer; ++i) {
                Request r;
                r.indices = {(t * 7 + i) % 64};
                const Response resp = server.SubmitAndWait(std::move(r));
                if (resp.status.ok()) {
                    ++ok;
                } else if (resp.status.code == StatusCode::kShed) {
                    ++shed;
                } else {
                    ++other;
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    server.Shutdown();

    EXPECT_EQ(ok + shed + other, producers * kPerProducer);
    EXPECT_EQ(other.load(), 0);
    EXPECT_GT(ok.load(), 0);

    const ServerStats s = server.GetStats();
    EXPECT_EQ(s.submitted,
              static_cast<uint64_t>(producers * kPerProducer));
    EXPECT_EQ(s.completed + s.failed, s.submitted);
    EXPECT_EQ(s.completed, static_cast<uint64_t>(ok.load()));
    EXPECT_EQ(s.shed, static_cast<uint64_t>(shed.load()));
    EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServingTest, DoubleShutdownAndDestructorAreIdempotent)
{
    auto scan = MakeScan(8, 2, 71);
    ServerConfig cfg;
    cfg.default_deadline_us = 0;
    Server server({scan}, cfg);
    Request r;
    r.indices = {1};
    EXPECT_TRUE(server.SubmitAndWait(std::move(r)).status.ok());
    server.Shutdown();
    server.Shutdown();  // no-op
    // Destructor runs Shutdown() again on scope exit: must not hang.
}

}  // namespace
}  // namespace secemb::serving
