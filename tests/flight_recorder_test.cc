/**
 * @file
 * Flight-recorder tests: ring semantics (capacity rounding, wrap/drop
 * accounting, oldest-first snapshots), per-request lifecycle
 * reconstruction through a live Server (admitted, shed, and invalid
 * requests), the chrome://tracing dump, and a writer/reader hammer that
 * certifies the lock-free ring under TSan (`ctest -L concurrency`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util/json.h"
#include "core/table_generators.h"
#include "serving/flight_recorder.h"
#include "serving/server.h"
#include "tensor/rng.h"

namespace secemb::serving {
namespace {

FlightEvent
MakeEvent(uint64_t id, FlightHop hop, uint32_t detail = 0)
{
    FlightEvent e;
    e.request_id = id;
    e.t_ns = id * 10;
    e.queue_depth = 3;
    e.detail = detail;
    e.code = StatusCode::kOk;
    e.feature = 1;
    e.hop = hop;
    e.degrade = 2;
    return e;
}

std::shared_ptr<core::LinearScanTable>
MakeScan(int64_t rows, int64_t dim, uint64_t seed)
{
    Rng rng(seed);
    return std::make_shared<core::LinearScanTable>(
        Tensor::Randn({rows, dim}, rng));
}

/** Blocks every generation until Open() — holds the batcher inside a
 *  batch so tests can deterministically fill the queue behind it. */
class GatedGenerator : public core::EmbeddingGenerator
{
  public:
    explicit GatedGenerator(std::shared_ptr<core::EmbeddingGenerator> inner)
        : inner_(std::move(inner))
    {
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        Wait();
        inner_->Generate(indices, out);
    }

    void
    GeneratePooled(std::span<const int64_t> indices,
                   std::span<const int64_t> offsets, Tensor& out) override
    {
        Wait();
        inner_->GeneratePooled(indices, offsets, out);
    }

    int64_t dim() const override { return inner_->dim(); }
    int64_t num_rows() const override { return inner_->num_rows(); }
    int64_t MemoryFootprintBytes() const override
    {
        return inner_->MemoryFootprintBytes();
    }
    std::string_view name() const override { return "Gated"; }
    bool IsOblivious() const override { return inner_->IsOblivious(); }

    void
    Open()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            open_ = true;
        }
        cv_.notify_all();
    }

    void
    AwaitEntered()
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return entered_; });
    }

  private:
    void
    Wait()
    {
        std::unique_lock<std::mutex> lk(mu_);
        entered_ = true;
        cv_.notify_all();
        cv_.wait(lk, [this] { return open_; });
    }

    std::shared_ptr<core::EmbeddingGenerator> inner_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool open_ = false;
    bool entered_ = false;
};

// --- ring semantics --------------------------------------------------------

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwoFloor16)
{
    EXPECT_EQ(FlightRecorder(0).capacity(), 16u);
    EXPECT_EQ(FlightRecorder(1).capacity(), 16u);
    EXPECT_EQ(FlightRecorder(16).capacity(), 16u);
    EXPECT_EQ(FlightRecorder(17).capacity(), 32u);
    EXPECT_EQ(FlightRecorder(2048).capacity(), 2048u);
    EXPECT_EQ(FlightRecorder(3000).capacity(), 4096u);
}

TEST(FlightRecorderTest, SnapshotIsOldestFirstAndLossless)
{
    FlightRecorder rec(64);
    for (uint64_t i = 1; i <= 10; ++i) {
        rec.Record(MakeEvent(i, FlightHop::kEnqueue, /*detail=*/7));
    }
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.dropped(), 0u);

    const std::vector<FlightEvent> snap = rec.Snapshot();
    ASSERT_EQ(snap.size(), 10u);
    for (size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].request_id, i + 1);
        EXPECT_EQ(snap[i].t_ns, (i + 1) * 10);
        EXPECT_EQ(snap[i].queue_depth, 3u);
        EXPECT_EQ(snap[i].detail, 7u);
        EXPECT_EQ(snap[i].feature, 1);
        EXPECT_EQ(snap[i].hop, FlightHop::kEnqueue);
        EXPECT_EQ(snap[i].degrade, 2);
    }
}

TEST(FlightRecorderTest, WrapKeepsNewestAndCountsDropped)
{
    FlightRecorder rec(16);
    ASSERT_EQ(rec.capacity(), 16u);
    const uint64_t total = 16 + 5;
    for (uint64_t i = 1; i <= total; ++i) {
        rec.Record(MakeEvent(i, FlightHop::kRespond));
    }
    EXPECT_EQ(rec.recorded(), total);
    EXPECT_EQ(rec.dropped(), 5u);

    const std::vector<FlightEvent> snap = rec.Snapshot();
    ASSERT_EQ(snap.size(), 16u);
    // Oldest retained entry is the 6th ever recorded.
    EXPECT_EQ(snap.front().request_id, 6u);
    EXPECT_EQ(snap.back().request_id, total);
}

TEST(FlightRecorderTest, ForRequestPreservesLifecycleOrder)
{
    FlightRecorder rec(64);
    rec.Record(MakeEvent(7, FlightHop::kEnqueue));
    rec.Record(MakeEvent(8, FlightHop::kEnqueue));
    rec.Record(MakeEvent(7, FlightHop::kBatchJoin, /*detail=*/2));
    rec.Record(MakeEvent(7, FlightHop::kServeStart));
    rec.Record(MakeEvent(8, FlightHop::kBatchJoin, /*detail=*/2));
    rec.Record(MakeEvent(7, FlightHop::kRespond));

    const std::vector<FlightEvent> flight = rec.ForRequest(7);
    ASSERT_EQ(flight.size(), 4u);
    EXPECT_EQ(flight[0].hop, FlightHop::kEnqueue);
    EXPECT_EQ(flight[1].hop, FlightHop::kBatchJoin);
    EXPECT_EQ(flight[2].hop, FlightHop::kServeStart);
    EXPECT_EQ(flight[3].hop, FlightHop::kRespond);
    EXPECT_TRUE(rec.ForRequest(999).empty());
}

TEST(FlightRecorderTest, HopNamesAreStable)
{
    EXPECT_STREQ(FlightHopName(FlightHop::kEnqueue), "enqueue");
    EXPECT_STREQ(FlightHopName(FlightHop::kShed), "shed");
    EXPECT_STREQ(FlightHopName(FlightHop::kRespond), "respond");
}

TEST(FlightRecorderTest, ChromeTraceJsonParses)
{
    FlightRecorder rec(32);
    rec.Record(MakeEvent(1, FlightHop::kEnqueue));
    rec.Record(MakeEvent(1, FlightHop::kBatchJoin, 4));
    rec.Record(MakeEvent(1, FlightHop::kRespond));

    const std::string json = rec.ToChromeTraceJson();
    bench::JsonValue doc;
    std::string err;
    ASSERT_TRUE(bench::JsonParse(json, &doc, &err)) << err;
    const bench::JsonValue* events = doc.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->IsArray());
    ASSERT_EQ(events->array_v.size(), 3u);
    const bench::JsonValue* name = events->array_v[0].Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->str_v, "enqueue");
}

TEST(FlightRecorderTest, WriteChromeTraceRoundTrips)
{
    FlightRecorder rec(32);
    rec.Record(MakeEvent(1, FlightHop::kEnqueue));
    const std::string path =
        (std::filesystem::temp_directory_path() / "secemb_flight_test.json")
            .string();
    ASSERT_TRUE(rec.WriteChromeTrace(path));
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    bench::JsonValue doc;
    std::string err;
    EXPECT_TRUE(bench::JsonParse(ss.str(), &doc, &err)) << err;
    std::remove(path.c_str());
}

// --- concurrency (TSan via `ctest -L concurrency`) -------------------------

TEST(FlightRecorderTest, ConcurrentWritersAndSnapshotReaders)
{
    FlightRecorder rec(256);
    constexpr int kWriters = 8;
    constexpr uint64_t kPerWriter = 4000;
    std::atomic<bool> stop{false};

    // One reader snapshotting continuously while writers hammer the ring:
    // every surfaced event must be internally consistent (the stamp check
    // must discard torn reads, never surface mixed payloads).
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::vector<FlightEvent> snap = rec.Snapshot();
            for (const FlightEvent& e : snap) {
                ASSERT_GE(e.request_id, 1u);
                ASSERT_LE(e.request_id, kWriters * kPerWriter);
                // Writers encode id*10 into t_ns; a torn read would break
                // this invariant.
                ASSERT_EQ(e.t_ns, e.request_id * 10);
            }
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&rec, w] {
            for (uint64_t i = 0; i < kPerWriter; ++i) {
                const uint64_t id = w * kPerWriter + i + 1;
                rec.Record(MakeEvent(id, FlightHop::kRespond));
            }
        });
    }
    for (auto& t : writers) t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
    EXPECT_EQ(rec.dropped(), kWriters * kPerWriter - rec.capacity());
    // Quiesced, nearly every retained slot is readable: a delayed writer
    // can clobber at most one newer slot per thread (one in-flight event
    // each), so the stamp check discards at most kWriters - 1 entries.
    EXPECT_GE(rec.Snapshot().size(), rec.capacity() - kWriters + 1);
}

// --- server integration ----------------------------------------------------

TEST(FlightRecorderServerTest, DisabledWhenCapacityZero)
{
    ServerConfig cfg;
    cfg.flight_recorder_capacity = 0;
    Server server({MakeScan(32, 4, 3)}, cfg);
    EXPECT_EQ(server.flight_recorder(), nullptr);

    Request req;
    req.indices = {1, 2};
    const Response resp = server.SubmitAndWait(std::move(req));
    EXPECT_TRUE(resp.status.ok());
    EXPECT_GT(resp.request_id, 0u);  // ids are assigned regardless
    const ServerStats stats = server.GetStats();
    EXPECT_EQ(stats.flight_recorded, 0u);
    EXPECT_EQ(stats.flight_dropped, 0u);
}

TEST(FlightRecorderServerTest, CompletedRequestReconstructsFullPath)
{
    ServerConfig cfg;
    cfg.max_batch = 4;
    cfg.flush_deadline_us = 50;
    Server server({MakeScan(64, 8, 5)}, cfg);

    Request req;
    req.indices = {3, 9, 27};
    const Response resp = server.SubmitAndWait(std::move(req));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_GT(resp.request_id, 0u);

    const FlightRecorder* flight = server.flight_recorder();
    ASSERT_NE(flight, nullptr);
    const std::vector<FlightEvent> path =
        flight->ForRequest(resp.request_id);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0].hop, FlightHop::kEnqueue);
    EXPECT_EQ(path[1].hop, FlightHop::kBatchJoin);
    EXPECT_GE(path[1].detail, 1u);  // batch size at join
    EXPECT_EQ(path[2].hop, FlightHop::kServeStart);
    EXPECT_EQ(path[3].hop, FlightHop::kRespond);
    EXPECT_EQ(path[3].code, StatusCode::kOk);
    for (const FlightEvent& e : path) {
        EXPECT_EQ(e.request_id, resp.request_id);
        EXPECT_EQ(e.feature, 0);
    }
    // Timestamps are monotone along the lifecycle.
    for (size_t i = 1; i < path.size(); ++i) {
        EXPECT_GE(path[i].t_ns, path[i - 1].t_ns);
    }

    const ServerStats stats = server.GetStats();
    EXPECT_GE(stats.flight_recorded, 4u);
}

TEST(FlightRecorderServerTest, ShedRequestReconstructsRejectionPath)
{
    auto gated =
        std::make_shared<GatedGenerator>(MakeScan(64, 8, 9));
    ServerConfig cfg;
    cfg.queue_capacity = 2;
    cfg.max_batch = 1;
    cfg.flush_deadline_us = 0;
    cfg.default_deadline_us = 0;
    Server server({gated}, cfg);

    // Occupy the batcher, then fill the queue behind it.
    Request first;
    first.indices = {1};
    auto f0 = server.Submit(std::move(first));
    gated->AwaitEntered();
    std::vector<std::future<Response>> queued;
    for (int i = 0; i < 2; ++i) {
        Request r;
        r.indices = {2};
        queued.push_back(server.Submit(std::move(r)));
    }
    ASSERT_EQ(server.queue_depth(), 2u);

    // Next submit must shed — and its flight must already be complete
    // when the future wakes.
    Request overflow;
    overflow.indices = {3};
    const Response shed = server.Submit(std::move(overflow)).get();
    EXPECT_EQ(shed.status.code, StatusCode::kShed);
    ASSERT_GT(shed.request_id, 0u);

    const FlightRecorder* flight = server.flight_recorder();
    ASSERT_NE(flight, nullptr);
    const std::vector<FlightEvent> path =
        flight->ForRequest(shed.request_id);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0].hop, FlightHop::kShed);
    EXPECT_EQ(path[0].code, StatusCode::kShed);
    EXPECT_EQ(path[0].queue_depth, 2u);  // the depth it was shed at
    EXPECT_EQ(path[1].hop, FlightHop::kRespond);
    EXPECT_EQ(path[1].code, StatusCode::kShed);

    gated->Open();
    f0.get();
    for (auto& f : queued) f.get();
    server.Shutdown();
}

TEST(FlightRecorderServerTest, InvalidRequestRecordsValidationHop)
{
    ServerConfig cfg;
    Server server({MakeScan(16, 4, 2)}, cfg);
    Request bad;
    bad.feature = 42;  // unknown feature
    bad.indices = {1};
    const Response resp = server.SubmitAndWait(std::move(bad));
    EXPECT_EQ(resp.status.code, StatusCode::kInvalidArgument);
    ASSERT_GT(resp.request_id, 0u);

    const std::vector<FlightEvent> path =
        server.flight_recorder()->ForRequest(resp.request_id);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0].hop, FlightHop::kInvalidArgument);
    EXPECT_EQ(path[0].code, StatusCode::kInvalidArgument);
    EXPECT_EQ(path[1].hop, FlightHop::kRespond);
}

TEST(FlightRecorderServerTest, StatsExposeRingOccupancy)
{
    ServerConfig cfg;
    cfg.flight_recorder_capacity = 16;  // tiny ring: wrap under load
    Server server({MakeScan(32, 4, 8)}, cfg);
    for (int i = 0; i < 20; ++i) {
        Request r;
        r.indices = {i % 32};
        ASSERT_TRUE(server.SubmitAndWait(std::move(r)).status.ok());
    }
    server.Shutdown();
    const ServerStats stats = server.GetStats();
    // 20 requests x 4 hops each.
    EXPECT_GE(stats.flight_recorded, 80u);
    EXPECT_EQ(stats.flight_dropped,
              stats.flight_recorded -
                  server.flight_recorder()->capacity());
}

}  // namespace
}  // namespace secemb::serving
