/**
 * @file
 * Obliviousness certification of the out-of-core subjects
 * (`ctest -L leakage`): the paged scan's page schedule must be
 * bit-identical across secret sets (pages 0..P-1, in order, every call),
 * the RAW ORAM's randomized schedule must be shape-identical and
 * statistically indistinguishable fixed-vs-random, and the classic
 * out-of-core failure — demand paging by secret index, the
 * controlled-channel attack's signal — must be REJECTED by the
 * statistical check (negative control).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/embedding_generator.h"
#include "core/paged_generators.h"
#include "sidechannel/trace.h"
#include "store/backing_store.h"
#include "verify/harness.h"

namespace secemb::verify {
namespace {

VerifyConfig
StoreConfigFor(Subject subject, uint64_t seed, int batch = 8)
{
    VerifyConfig c;
    c.subject = subject;
    c.rows = 64;
    c.dim = 8;
    c.batch = batch;
    c.nthreads = 1;
    c.secret_sets = 4;
    c.seed = seed;
    return c;
}

TEST(StoreVerifyTest, SubjectsAreRegistered)
{
    Subject s;
    ASSERT_TRUE(ParseSubject("paged_scan", &s));
    EXPECT_EQ(s, Subject::kPagedScan);
    ASSERT_TRUE(ParseSubject("raw_oram", &s));
    EXPECT_EQ(s, Subject::kRawOram);

    // The paged scan's schedule is a fixed function of geometry; the RAW
    // ORAM's is randomized (leaf draws) — different proof obligations.
    EXPECT_TRUE(SubjectIsDeterministic(Subject::kPagedScan));
    EXPECT_FALSE(SubjectIsDeterministic(Subject::kRawOram));

    const auto secure = AllSecureSubjects();
    EXPECT_EQ(secure.size(), 9u);
    for (const Subject subject :
         {Subject::kPagedScan, Subject::kRawOram}) {
        EXPECT_NE(std::find(secure.begin(), secure.end(), subject),
                  secure.end());
    }
}

TEST(StoreVerifyTest, PagedScanTraceBitIdenticalAcrossSecrets)
{
    const DifferentialResult r =
        RunDifferential(StoreConfigFor(Subject::kPagedScan, 31));
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_EQ(r.sets_run, 4);
}

TEST(StoreVerifyTest, PagedScanPooledTraceBitIdentical)
{
    VerifyConfig config = StoreConfigFor(Subject::kPagedScan, 37);
    config.pooled = true;
    const DifferentialResult r = RunDifferential(config);
    EXPECT_TRUE(r.passed) << r.detail;
}

TEST(StoreVerifyTest, PagedScanScheduleIsEveryPageOncePerCall)
{
    // The harness subject uses 128-byte pages: 64 rows x 32-byte rows =
    // 4 rows/page = 16 pages, and a single-hot batch is one LookupBatch
    // call — so the canonical trace is exactly 16 page accesses,
    // regardless of what the (secret) indices were.
    const CanonicalTrace trace =
        GoldenRun(StoreConfigFor(Subject::kPagedScan, 41));
    ASSERT_EQ(trace.accesses.size(), 16u);
    for (size_t i = 0; i < trace.accesses.size(); ++i) {
        EXPECT_EQ(trace.accesses[i].region, trace.accesses[0].region);
        EXPECT_EQ(trace.accesses[i].offset, i * 128)
            << "page schedule must be pages 0..P-1 in order";
    }
}

TEST(StoreVerifyTest, RawOramShapeIdenticalAcrossSecrets)
{
    const DifferentialResult r =
        RunDifferential(StoreConfigFor(Subject::kRawOram, 43, 4));
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_EQ(r.sets_run, 4);
}

TEST(StoreVerifyTest, RawOramStatisticallyIndistinguishable)
{
    const StatisticalResult r =
        RunStatistical(StoreConfigFor(Subject::kRawOram, 47, 4));
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_GE(r.runs_per_group, 12);
}

/**
 * Negative control: a demand-paged table. Lookup of row i touches (and
 * records) exactly the one page holding row i — the access pattern every
 * OS pager, and every naive out-of-core table, produces. This is the
 * signal of the controlled-channel attack: the page index is a direct
 * function of the secret, and the fixed-vs-random histograms must be
 * distinguishable. A harness that certifies this fixture is broken.
 */
class DemandPagedLookup : public core::EmbeddingGenerator
{
  public:
    static constexpr int64_t kRows = 4096;
    static constexpr int64_t kDim = 8;
    static constexpr int64_t kPageBytes = 4096;
    static constexpr int64_t kRowsPerPage =
        kPageBytes / (kDim * static_cast<int64_t>(sizeof(float)));

    explicit DemandPagedLookup(Tensor table) : table_(std::move(table))
    {
        trace_base_ = sidechannel::ProcessAddressSpace().Reserve(
            static_cast<uint64_t>(
                (kRows / kRowsPerPage + 1) * kPageBytes),
            4096, "store.demand.pages");
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        const int64_t row_bytes =
            kDim * static_cast<int64_t>(sizeof(float));
        for (size_t i = 0; i < indices.size(); ++i) {
            const int64_t idx = indices[i];
            if (recorder_ != nullptr) {
                // One page fault at the page holding the secret row; the
                // in-page offset gives the cache-set channel its signal.
                recorder_->Record(
                    trace_base_ + static_cast<uint64_t>(
                                      (idx / kRowsPerPage) * kPageBytes +
                                      (idx % kRowsPerPage) * row_bytes),
                    static_cast<uint32_t>(row_bytes), false);
            }
            std::memcpy(out.data() + static_cast<int64_t>(i) * kDim,
                        table_.data() + idx * kDim,
                        static_cast<size_t>(row_bytes));
        }
    }
    int64_t dim() const override { return kDim; }
    int64_t num_rows() const override { return kRows; }
    int64_t MemoryFootprintBytes() const override
    {
        return table_.numel() * static_cast<int64_t>(sizeof(float));
    }
    std::string_view name() const override
    {
        return "demand-paged lookup (leaky)";
    }
    bool IsOblivious() const override { return false; }
    void set_recorder(sidechannel::TraceRecorder* r) override
    {
        recorder_ = r;
    }

  private:
    Tensor table_;
    sidechannel::TraceRecorder* recorder_ = nullptr;
    uint64_t trace_base_ = 0;
};

TEST(StoreVerifyTest, StatisticalCheckRejectsDemandPaging)
{
    VerifyConfig config;
    config.subject = Subject::kIndexLookup;  // slug only; factory below
    config.rows = DemandPagedLookup::kRows;
    config.dim = DemandPagedLookup::kDim;
    config.batch = 8;
    config.secret_sets = 4;
    config.seed = 53;

    const GeneratorFactory leaky =
        [config](uint64_t seed, sidechannel::TraceRecorder* rec) {
            Rng rng(seed);
            auto gen = std::make_unique<DemandPagedLookup>(
                Tensor::Randn({config.rows, config.dim}, rng));
            gen->set_recorder(rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::move(gen));
        };
    const StatisticalResult r = RunStatisticalWith(config, leaky);
    EXPECT_FALSE(r.passed)
        << "demand paging by secret index was certified as oblivious; "
           "the out-of-core statistical check is vacuous";
}

// ---------------------------------------------------------------------------
// Durability leakage: a recovered instance must be indistinguishable from
// a fresh one, and the occupancy-dependent (sparse) checkpoint format must
// be caught. (The crash-correctness side lives in crash_harness_test.)
// ---------------------------------------------------------------------------

TEST(StoreVerifyTest, RecoveredRawOramIsCertified)
{
    const VerifyConfig config = StoreConfigFor(Subject::kRawOram, 59, 4);
    const RecoveredResult r = RunRecovered(
        config, testing::TempDir() + "secemb_verify_recovered");
    EXPECT_TRUE(r.shape_passed)
        << "recovered instance's trace shape diverged from fresh: "
        << r.detail;
    EXPECT_TRUE(r.differential.passed) << r.differential.detail;
    EXPECT_TRUE(r.statistical.passed) << r.statistical.detail;
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_GT(r.trace_len, 0u);
}

TEST(StoreVerifyTest, StatisticalCheckRejectsSparseCheckpoints)
{
    // The negative control for the durable tier: sparse checkpoints
    // write only occupied stash slots, so the checkpoint's record count
    // and offsets track stash occupancy — a function of the secret
    // duplicate structure. With mid-batch checkpoints in the recorded
    // trace, fixed-vs-random must distinguish the two groups. Small table
    // + large batch so random secret sets carry many duplicates (the
    // fixed set is duplicate-free): stash occupancy, and therefore the
    // sparse checkpoint's record count, separates the groups.
    VerifyConfig config = StoreConfigFor(Subject::kRawOram, 61, 16);
    config.rows = 16;
    const std::string scratch =
        testing::TempDir() + "secemb_verify_sparse";
    const GeneratorFactory sparse = MakeDurableRawOramFactory(
        config, scratch, /*recovered=*/false,
        /*sparse_negative_control=*/true);
    const StatisticalResult r = RunStatisticalWith(config, sparse);
    EXPECT_FALSE(r.passed)
        << "an occupancy-dependent checkpoint schedule was certified as "
           "oblivious; the durable-tier statistical check is vacuous";
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
}

TEST(StoreVerifyTest, RecoveryRefusesSparseCheckpoints)
{
    const VerifyConfig config = StoreConfigFor(Subject::kRawOram, 67, 4);
    const std::string scratch =
        testing::TempDir() + "secemb_verify_sparse_recover";
    const GeneratorFactory bad = MakeDurableRawOramFactory(
        config, scratch, /*recovered=*/true,
        /*sparse_negative_control=*/true);
    sidechannel::TraceRecorder rec;
    EXPECT_THROW((void)bad(1, &rec), std::exception)
        << "recovering from a sparse (negative-control) checkpoint must "
           "fail closed";
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
}

TEST(StoreVerifyTest, RecoveredCorpusIsSmallAndRawOramOnly)
{
    const auto corpus = RecoveredCorpus(7);
    ASSERT_FALSE(corpus.empty());
    EXPECT_LE(corpus.size(), 3u);
    for (const VerifyConfig& c : corpus) {
        EXPECT_EQ(c.subject, Subject::kRawOram);
    }
}

}  // namespace
}  // namespace secemb::verify
