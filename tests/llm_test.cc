/**
 * @file
 * Tests for the LLM module: attention gradient checks, KV-cache
 * consistency (prefill + decode == full forward), trainable GPT, secure
 * inference, oblivious greedy decoding, and the synthetic corpus.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/factory.h"
#include "oblivious/scan.h"
#include "llm/attention.h"
#include "llm/corpus.h"
#include "llm/gpt.h"
#include "test_util.h"

namespace secemb::llm {
namespace {

TEST(AttentionTest, OutputShape)
{
    Rng rng(1);
    CausalSelfAttention attn(16, 4, rng);
    const Tensor x = Tensor::Randn({2 * 5, 16}, rng);
    const Tensor y = attn.Forward(x, 2, 5);
    EXPECT_EQ(y.shape(), (Shape{10, 16}));
}

TEST(AttentionTest, CausalityFirstTokenSeesOnlyItself)
{
    // Changing a later token must not change an earlier position's
    // output.
    Rng rng(2);
    CausalSelfAttention attn(8, 2, rng);
    Tensor x = Tensor::Randn({4, 8}, rng);  // batch 1, seq 4
    const Tensor y1 = attn.Forward(x, 1, 4);
    x.at(3, 0) += 10.0f;  // perturb the last token
    const Tensor y2 = attn.Forward(x, 1, 4);
    for (int64_t j = 0; j < 8; ++j) {
        EXPECT_NEAR(y1.at(0, j), y2.at(0, j), 1e-5f);
        EXPECT_NEAR(y1.at(2, j), y2.at(2, j), 1e-5f);
    }
    // ... while the perturbed position itself does change.
    float diff = 0;
    for (int64_t j = 0; j < 8; ++j) {
        diff += std::abs(y1.at(3, j) - y2.at(3, j));
    }
    EXPECT_GT(diff, 1e-3f);
}

TEST(AttentionTest, InputGradientCheck)
{
    Rng rng(3);
    CausalSelfAttention attn(8, 2, rng);
    const Tensor x = Tensor::Randn({6, 8}, rng);  // batch 2, seq 3

    auto loss = [&](const Tensor& t) {
        Tensor y = attn.Forward(t, 2, 3);
        return 0.5f * y.SquaredNorm();
    };
    Tensor y = attn.Forward(x, 2, 3);
    const Tensor gx = attn.Backward(y);
    test::ExpectGradientsClose(loss, x, gx, 1e-2f, 3e-2f);
}

TEST(AttentionTest, CachedMatchesUncachedPrefill)
{
    Rng rng(4);
    CausalSelfAttention attn(16, 4, rng);
    const int64_t batch = 2, seq = 6;
    const Tensor x = Tensor::Randn({batch * seq, 16}, rng);
    const Tensor full = attn.Forward(x, batch, seq);
    KvCache cache(batch, 32, 16);
    const Tensor cached = attn.ForwardCached(x, batch, seq, cache);
    EXPECT_TRUE(full.AllClose(cached, 1e-4f));
    EXPECT_EQ(cache.len, seq);
}

TEST(AttentionTest, IncrementalDecodeMatchesFullForward)
{
    Rng rng(5);
    CausalSelfAttention attn(16, 4, rng);
    const int64_t batch = 1, seq = 5;
    const Tensor x = Tensor::Randn({seq, 16}, rng);
    const Tensor full = attn.Forward(x, batch, seq);

    KvCache cache(batch, 32, 16);
    Tensor last;
    for (int64_t t = 0; t < seq; ++t) {
        Tensor xt({1, 16});
        std::copy(x.data() + t * 16, x.data() + (t + 1) * 16, xt.data());
        last = attn.ForwardCached(xt, batch, 1, cache);
    }
    for (int64_t j = 0; j < 16; ++j) {
        EXPECT_NEAR(last.at(0, j), full.at(seq - 1, j), 1e-4f);
    }
}

TEST(TransformerBlockTest, GradientCheck)
{
    Rng rng(6);
    const GptConfig cfg = GptConfig::Tiny();
    TransformerBlock block(cfg, rng);
    const Tensor x = Tensor::Randn({2 * 3, cfg.dim}, rng, 0.5f);
    auto loss = [&](const Tensor& t) {
        Tensor y = block.Forward(t, 2, 3);
        return 0.5f * y.SquaredNorm();
    };
    Tensor y = block.Forward(x, 2, 3);
    const Tensor gx = block.Backward(y);
    test::ExpectGradientsClose(loss, x, gx, 1e-2f, 5e-2f, 16);
}

class GptModeTest : public ::testing::TestWithParam<TokenEmbMode>
{
};

TEST_P(GptModeTest, ForwardShape)
{
    Rng rng(7);
    const GptConfig cfg = GptConfig::Tiny();
    GptModel model(cfg, GetParam(), rng);
    std::vector<int64_t> tokens(2 * 4, 1);
    const Tensor logits = model.Forward(tokens, 2, 4);
    EXPECT_EQ(logits.shape(), (Shape{8, cfg.vocab_size}));
}

TEST_P(GptModeTest, TrainingReducesLoss)
{
    Rng rng(8);
    const GptConfig cfg = GptConfig::Tiny();
    GptModel model(cfg, GetParam(), rng);
    SyntheticCorpus corpus(cfg.vocab_size, 9);
    nn::Adam opt(model.Parameters(), 3e-3f);
    float first = 0, last = 0;
    for (int step = 0; step < 30; ++step) {
        const auto tokens = corpus.Sample(4, 9);  // seq 8 + 1 target
        const float loss = model.TrainStep(tokens, 4, 8, opt);
        if (step == 0) first = loss;
        last = loss;
    }
    EXPECT_LT(last, first);
}

INSTANTIATE_TEST_SUITE_P(Modes, GptModeTest,
                         ::testing::Values(TokenEmbMode::kTable,
                                           TokenEmbMode::kDhe),
                         [](const auto& info) {
                             return info.param == TokenEmbMode::kTable
                                        ? "Table"
                                        : "Dhe";
                         });

TEST(GptModelTest, TokenEmbeddingBytesSmallerWithDhe)
{
    GptConfig cfg = GptConfig::Tiny();
    cfg.vocab_size = 5000;
    Rng rng(10);
    GptModel table(cfg, TokenEmbMode::kTable, rng);
    GptModel dhe(cfg, TokenEmbMode::kDhe, rng);
    EXPECT_LT(dhe.TokenEmbeddingBytes(), table.TokenEmbeddingBytes());
}

class SecureGptKindTest : public ::testing::TestWithParam<core::GenKind>
{
};

TEST_P(SecureGptKindTest, PrefillDecodeGenerate)
{
    const GptConfig cfg = GptConfig::Tiny();
    Rng rng(11);
    auto gen = core::MakeGenerator(GetParam(), cfg.vocab_size, cfg.dim,
                                   rng);
    SecureGpt model(cfg, std::move(gen), rng);

    std::vector<std::vector<int64_t>> prompts{{1, 2, 3, 4},
                                              {5, 6, 7, 8}};
    const Tensor logits = model.Prefill(prompts);
    EXPECT_EQ(logits.shape(), (Shape{2, cfg.vocab_size}));

    const auto gen_tokens = model.Generate(prompts, 3);
    EXPECT_EQ(gen_tokens.size(), 2u);
    EXPECT_EQ(gen_tokens[0].size(), 3u);
    for (const auto& seq : gen_tokens) {
        for (int64_t t : seq) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, cfg.vocab_size);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SecureGptKindTest,
    ::testing::Values(core::GenKind::kIndexLookup,
                      core::GenKind::kLinearScan,
                      core::GenKind::kCircuitOram,
                      core::GenKind::kDheUniform),
    [](const auto& info) {
        switch (info.param) {
          case core::GenKind::kIndexLookup: return "IndexLookup";
          case core::GenKind::kLinearScan: return "LinearScan";
          case core::GenKind::kCircuitOram: return "CircuitOram";
          default: return "Dhe";
        }
    });

TEST(SecureGptTest, ObliviousArgmaxMatchesPlainArgmax)
{
    const GptConfig cfg = GptConfig::Tiny();
    Rng rng(12);
    auto gen = core::MakeGenerator(core::GenKind::kIndexLookup,
                                   cfg.vocab_size, cfg.dim, rng);
    SecureGpt model(cfg, std::move(gen), rng);
    const Tensor logits =
        model.Prefill({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
    EXPECT_EQ(model.GreedyTokens(logits),
              model.GreedyTokensNonSecure(logits));
}

TEST(SecureGptTest, DeterministicGenerationAcrossEquivalentBackends)
{
    // Same token table behind linear scan and non-secure lookup must
    // generate the same text.
    const GptConfig cfg = GptConfig::Tiny();
    Rng table_rng(13);
    const Tensor table =
        Tensor::Randn({cfg.vocab_size, cfg.dim}, table_rng);
    auto build = [&](core::GenKind kind) {
        Rng rng(14);
        core::GeneratorOptions opt;
        opt.table = &table;
        auto gen =
            core::MakeGenerator(kind, cfg.vocab_size, cfg.dim, rng, opt);
        Rng model_rng(999);
        return std::make_unique<SecureGpt>(cfg, std::move(gen),
                                           model_rng);
    };
    auto a = build(core::GenKind::kIndexLookup);
    auto b = build(core::GenKind::kLinearScan);
    const std::vector<std::vector<int64_t>> prompts{{3, 1, 4, 1, 5}};
    EXPECT_EQ(a->Generate(prompts, 5), b->Generate(prompts, 5));
}

TEST(SecureGptTest, TopKSamplingStaysInCandidates)
{
    const llm::GptConfig cfg = llm::GptConfig::Tiny();
    Rng rng(20);
    auto gen = core::MakeGenerator(core::GenKind::kIndexLookup,
                                   cfg.vocab_size, cfg.dim, rng);
    llm::SecureGpt model(cfg, std::move(gen), rng);
    const Tensor logits = model.Prefill({{1, 2, 3}});
    const auto top3 = oblivious::ObliviousTopK(logits.row(0), 3);
    Rng sample_rng(21);
    for (int trial = 0; trial < 30; ++trial) {
        const auto pick = model.SampleTopK(logits, 3, sample_rng);
        EXPECT_TRUE(std::find(top3.begin(), top3.end(), pick[0]) !=
                    top3.end());
    }
}

TEST(SecureGptTest, TopK1EqualsGreedy)
{
    const llm::GptConfig cfg = llm::GptConfig::Tiny();
    Rng rng(22);
    auto gen = core::MakeGenerator(core::GenKind::kIndexLookup,
                                   cfg.vocab_size, cfg.dim, rng);
    llm::SecureGpt model(cfg, std::move(gen), rng);
    const Tensor logits = model.Prefill({{4, 5, 6}, {7, 8, 9}});
    Rng sample_rng(23);
    EXPECT_EQ(model.SampleTopK(logits, 1, sample_rng),
              model.GreedyTokens(logits));
}

TEST(CorpusTest, TokensInRangeAndDeterministic)
{
    SyntheticCorpus a(100, 15), b(100, 15);
    const auto ta = a.Sample(2, 50);
    const auto tb = b.Sample(2, 50);
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(ta.size(), 100u);
    for (int64_t t : ta) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 100);
    }
}

TEST(CorpusTest, HasLearnableStructure)
{
    // Bigram successor sets are small: the same current token should
    // lead to a limited set of next tokens.
    SyntheticCorpus corpus(1000, 16, /*branching=*/4, /*noise=*/0.0);
    const auto stream = corpus.Sample(1, 5000);
    std::map<int64_t, std::set<int64_t>> successors;
    for (size_t i = 0; i + 1 < stream.size(); ++i) {
        successors[stream[i]].insert(stream[i + 1]);
    }
    int64_t total = 0, count = 0;
    for (const auto& [tok, succ] : successors) {
        if (succ.size() > 0) {
            total += static_cast<int64_t>(succ.size());
            ++count;
        }
    }
    EXPECT_LE(static_cast<double>(total) / count, 4.5);
}

TEST(GptConfigTest, Presets)
{
    const GptConfig medium = GptConfig::Gpt2Medium();
    EXPECT_EQ(medium.vocab_size, 50257);
    EXPECT_EQ(medium.dim, 1024);
    EXPECT_EQ(medium.num_layers, 24);
    const GptConfig bench = GptConfig::BenchScale();
    EXPECT_EQ(bench.vocab_size, 50257);
    EXPECT_EQ(bench.dim % bench.num_heads, 0);
}

}  // namespace
}  // namespace secemb::llm
