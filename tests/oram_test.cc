/**
 * @file
 * Unit and property tests for the Path / Circuit ORAM controllers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "oram/footprint.h"
#include "oram/tree_oram.h"

namespace secemb::oram {
namespace {

std::vector<uint32_t>
MakeBlock(int64_t words, uint32_t seed)
{
    std::vector<uint32_t> b(static_cast<size_t>(words));
    for (size_t i = 0; i < b.size(); ++i) {
        b[i] = seed * 2654435761u + static_cast<uint32_t>(i);
    }
    return b;
}

class OramKindTest : public ::testing::TestWithParam<OramKind>
{
};

TEST_P(OramKindTest, WriteThenReadSingleBlock)
{
    Rng rng(1);
    auto oram = MakeOram(GetParam(), 16, 8, rng);
    const auto block = MakeBlock(8, 7);
    oram->Write(3, block);
    std::vector<uint32_t> out(8, 0);
    oram->Read(3, out);
    EXPECT_EQ(out, block);
}

TEST_P(OramKindTest, UnwrittenBlockReadsZero)
{
    Rng rng(2);
    auto oram = MakeOram(GetParam(), 32, 4, rng);
    std::vector<uint32_t> out(4, 99);
    oram->Read(11, out);
    EXPECT_EQ(out, std::vector<uint32_t>(4, 0));
}

TEST_P(OramKindTest, OverwriteReturnsLatestValue)
{
    Rng rng(3);
    auto oram = MakeOram(GetParam(), 16, 4, rng);
    oram->Write(5, MakeBlock(4, 1));
    oram->Write(5, MakeBlock(4, 2));
    std::vector<uint32_t> out(4);
    oram->Read(5, out);
    EXPECT_EQ(out, MakeBlock(4, 2));
}

TEST_P(OramKindTest, RandomWorkloadMatchesReferenceMap)
{
    Rng rng(4);
    const int64_t n = 64, words = 8;
    auto oram = MakeOram(GetParam(), n, words, rng);
    std::map<int64_t, std::vector<uint32_t>> reference;
    Rng wl(99);
    for (int iter = 0; iter < 500; ++iter) {
        const int64_t id = static_cast<int64_t>(wl.NextBounded(n));
        if (wl.NextBounded(2) == 0) {
            auto blk = MakeBlock(words, static_cast<uint32_t>(wl.Next()));
            oram->Write(id, blk);
            reference[id] = blk;
        } else {
            std::vector<uint32_t> out(words, 0);
            oram->Read(id, out);
            auto it = reference.find(id);
            if (it == reference.end()) {
                EXPECT_EQ(out, std::vector<uint32_t>(words, 0))
                    << "iter " << iter << " id " << id;
            } else {
                EXPECT_EQ(out, it->second) << "iter " << iter << " id "
                                           << id;
            }
        }
    }
}

TEST_P(OramKindTest, BulkLoadThenReadAll)
{
    Rng rng(5);
    const int64_t n = 128, words = 4;
    auto oram = MakeOram(GetParam(), n, words, rng);
    std::vector<uint32_t> data(static_cast<size_t>(n * words));
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint32_t>(i * 2654435761u);
    }
    oram->BulkLoad(data);
    std::vector<uint32_t> out(words);
    for (int64_t id = 0; id < n; ++id) {
        oram->Read(id, out);
        for (int64_t w = 0; w < words; ++w) {
            ASSERT_EQ(out[static_cast<size_t>(w)],
                      data[static_cast<size_t>(id * words + w)])
                << "id " << id;
        }
    }
}

TEST_P(OramKindTest, StashStaysBounded)
{
    Rng rng(6);
    const int64_t n = 256;
    auto oram = MakeOram(GetParam(), n, 4, rng);
    std::vector<uint32_t> data(static_cast<size_t>(n * 4), 1);
    oram->BulkLoad(data);
    Rng wl(123);
    int64_t max_stash = 0;
    std::vector<uint32_t> out(4);
    for (int iter = 0; iter < 2000; ++iter) {
        oram->Read(static_cast<int64_t>(wl.NextBounded(n)), out);
        max_stash = std::max(max_stash, oram->StashOccupancy());
    }
    // Post-access stash occupancy must stay well below capacity.
    const int64_t cap = GetParam() == OramKind::kPath ? 150 : 10;
    EXPECT_LT(max_stash, cap) << "stash close to overflow";
}

TEST_P(OramKindTest, RecursivePositionMapWorkload)
{
    Rng rng(7);
    OramParams p = OramParams::Defaults(GetParam());
    p.recursion_threshold = 64;  // force recursion at small scale
    auto oram = MakeOram(GetParam(), 512, 4, rng, &p);
    std::map<int64_t, std::vector<uint32_t>> reference;
    Rng wl(321);
    for (int iter = 0; iter < 300; ++iter) {
        const int64_t id = static_cast<int64_t>(wl.NextBounded(512));
        if (wl.NextBounded(2) == 0) {
            auto blk = MakeBlock(4, static_cast<uint32_t>(wl.Next()));
            oram->Write(id, blk);
            reference[id] = blk;
        } else {
            std::vector<uint32_t> out(4, 0);
            oram->Read(id, out);
            auto it = reference.find(id);
            std::vector<uint32_t> expect =
                it == reference.end() ? std::vector<uint32_t>(4, 0)
                                      : it->second;
            EXPECT_EQ(out, expect) << "iter " << iter;
        }
    }
}

TEST_P(OramKindTest, RmwWordReturnsOldAndWritesNew)
{
    Rng rng(8);
    auto oram = MakeOram(GetParam(), 16, 8, rng);
    auto blk = MakeBlock(8, 5);
    oram->Write(9, blk);
    const uint32_t old = oram->RmwWord(9, 3, 424242);
    EXPECT_EQ(old, blk[3]);
    std::vector<uint32_t> out(8);
    oram->Read(9, out);
    EXPECT_EQ(out[3], 424242u);
    blk[3] = 424242;
    EXPECT_EQ(out, blk);
}

TEST_P(OramKindTest, StatsAdvanceWithAccesses)
{
    Rng rng(9);
    auto oram = MakeOram(GetParam(), 64, 4, rng);
    std::vector<uint32_t> out(4);
    oram->Read(0, out);
    oram->Read(1, out);
    EXPECT_EQ(oram->stats().accesses, 2);
    EXPECT_GT(oram->stats().bucket_reads, 0);
    EXPECT_GT(oram->stats().stash_scans, 0);
}

TEST_P(OramKindTest, FootprintExceedsRawData)
{
    Rng rng(10);
    const int64_t n = 1024, words = 16;
    auto oram = MakeOram(GetParam(), n, words, rng);
    const int64_t raw = n * words * 4;
    EXPECT_GT(oram->MemoryFootprintBytes(), raw);
    // The paper reports roughly 3.3x for tree-based ORAM; ours should be
    // in the same small-multiple regime, not orders of magnitude off.
    EXPECT_LT(oram->MemoryFootprintBytes(), 16 * raw);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OramKindTest,
                         ::testing::Values(OramKind::kPath,
                                           OramKind::kCircuit),
                         [](const auto& info) {
                             return info.param == OramKind::kPath
                                        ? "Path"
                                        : "Circuit";
                         });

TEST(FootprintTest, EstimatorMatchesLiveInstance)
{
    for (auto kind : {OramKind::kPath, OramKind::kCircuit}) {
        for (int64_t n : {16, 300, 5000}) {
            Rng rng(n);
            auto oram = MakeOram(kind, n, 8, rng);
            EXPECT_EQ(EstimateFootprintBytes(kind, n, 8),
                      oram->MemoryFootprintBytes())
                << "kind " << static_cast<int>(kind) << " n " << n;
        }
    }
}

TEST(FootprintTest, EstimatorHandlesRecursion)
{
    OramParams p = OramParams::Defaults(OramKind::kCircuit);
    p.recursion_threshold = 64;
    Rng rng(1);
    TreeOram oram(OramKind::kCircuit, 4096, 4, rng, p);
    EXPECT_EQ(EstimateFootprintBytes(OramKind::kCircuit, 4096, 4, p),
              oram.MemoryFootprintBytes());
}

TEST(OramParamsTest, DefaultsFollowPaper)
{
    const auto path = OramParams::Defaults(OramKind::kPath);
    EXPECT_EQ(path.stash_capacity, 150);
    EXPECT_EQ(path.recursion_threshold, int64_t{1} << 16);
    const auto circ = OramParams::Defaults(OramKind::kCircuit);
    EXPECT_EQ(circ.stash_capacity, 10);
    EXPECT_EQ(circ.recursion_threshold, int64_t{1} << 12);
    EXPECT_EQ(path.bucket_capacity, 4);
    EXPECT_EQ(path.posmap_fanout, 16);
}

}  // namespace
}  // namespace secemb::oram
