/**
 * @file
 * Tests for model serialization and the oblivious top-k extension.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "dhe/dhe.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "oblivious/scan.h"

namespace secemb {
namespace {

class SerializeTest : public ::testing::Test
{
  protected:
    std::string
    TmpPath(const char* name)
    {
        return (std::filesystem::temp_directory_path() /
                (std::string("secemb_test_") + name))
            .string();
    }

    void
    TearDown() override
    {
        for (const auto& p : paths_) std::remove(p.c_str());
    }

    std::string
    Track(std::string p)
    {
        paths_.push_back(p);
        return p;
    }

    std::vector<std::string> paths_;
};

TEST_F(SerializeTest, TensorRoundTrip)
{
    Rng rng(1);
    const Tensor t = Tensor::Randn({7, 5}, rng);
    const std::string path = Track(TmpPath("tensor.bin"));
    nn::SaveTensor(t, path);
    const Tensor loaded = nn::LoadTensor(path);
    EXPECT_EQ(loaded.shape(), t.shape());
    EXPECT_TRUE(loaded.AllClose(t, 0.0f));
}

TEST_F(SerializeTest, EmptyAndScalarTensors)
{
    const std::string path = Track(TmpPath("small.bin"));
    Tensor one({1});
    one.at(0) = 42.0f;
    nn::SaveTensor(one, path);
    EXPECT_FLOAT_EQ(nn::LoadTensor(path).at(0), 42.0f);
}

TEST_F(SerializeTest, ParametersRoundTripThroughFreshModel)
{
    // Train-ish a model, save, load into a freshly-initialised copy, and
    // check the copies agree exactly.
    Rng rng_a(2);
    auto model_a = nn::MakeMlp({4, 8, 2}, rng_a);
    for (auto* p : model_a->Parameters()) {
        p->value.AddScalarInPlace(0.5f);  // make weights distinctive
    }
    const std::string path = Track(TmpPath("params.bin"));
    nn::SaveParameters(model_a->Parameters(), path);

    Rng rng_b(999);  // different init
    auto model_b = nn::MakeMlp({4, 8, 2}, rng_b);
    nn::LoadParameters(model_b->Parameters(), path);

    Rng in_rng(3);
    const Tensor x = Tensor::Randn({3, 4}, in_rng);
    EXPECT_TRUE(model_b->Forward(x).AllClose(model_a->Forward(x), 1e-6f));
}

TEST_F(SerializeTest, DheRoundTrip)
{
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    Rng rng(4);
    dhe::DheEmbedding a(cfg, rng);
    const std::string path = Track(TmpPath("dhe.bin"));
    nn::SaveParameters(a.Parameters(), path);

    Rng rng2(4);  // same seed: identical hash coefficients
    dhe::DheEmbedding b(cfg, rng2);
    for (auto* p : b.Parameters()) p->value.Fill(0.0f);
    nn::LoadParameters(b.Parameters(), path);

    std::vector<int64_t> ids{1, 7, 13};
    EXPECT_TRUE(b.Forward(ids).AllClose(a.Forward(ids), 1e-6f));
}

TEST_F(SerializeTest, MismatchesThrow)
{
    Rng rng(5);
    auto model = nn::MakeMlp({2, 3, 1}, rng);
    const std::string path = Track(TmpPath("mismatch.bin"));
    nn::SaveParameters(model->Parameters(), path);

    auto wrong_count = nn::MakeMlp({2, 3, 3, 1}, rng);
    EXPECT_THROW(nn::LoadParameters(wrong_count->Parameters(), path),
                 std::runtime_error);

    auto wrong_shape = nn::MakeMlp({2, 4, 1}, rng);
    EXPECT_THROW(nn::LoadParameters(wrong_shape->Parameters(), path),
                 std::runtime_error);

    EXPECT_THROW(nn::LoadTensor(TmpPath("does_not_exist.bin")),
                 std::runtime_error);
}

TEST(ObliviousTopKTest, MatchesSortOrder)
{
    Rng rng(6);
    for (int trial = 0; trial < 50; ++trial) {
        const int64_t n = 20;
        std::vector<float> v(static_cast<size_t>(n));
        for (auto& x : v) x = rng.NextGaussian();
        const auto topk = oblivious::ObliviousTopK(v, 5);
        // Reference: argsort descending.
        std::vector<int64_t> ref(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) ref[static_cast<size_t>(i)] = i;
        std::stable_sort(ref.begin(), ref.end(),
                         [&](int64_t a, int64_t b) {
                             return v[static_cast<size_t>(a)] >
                                    v[static_cast<size_t>(b)];
                         });
        for (int64_t i = 0; i < 5; ++i) {
            EXPECT_EQ(topk[static_cast<size_t>(i)],
                      ref[static_cast<size_t>(i)])
                << "trial " << trial << " rank " << i;
        }
    }
}

TEST(ObliviousTopKTest, EdgeCases)
{
    std::vector<float> v{3.0f, 1.0f, 2.0f};
    EXPECT_TRUE(oblivious::ObliviousTopK(v, 0).empty());
    const auto all = oblivious::ObliviousTopK(v, 3);
    EXPECT_EQ(all, (std::vector<int64_t>{0, 2, 1}));
}

// ---------------------------------------------------------------------------
// Corrupt/truncated checkpoint hardening: a flipped header byte must fail
// with a typed error naming path and offset — never a multi-GB allocation,
// an integer overflow, or a crash.

namespace {

void
OverwriteU64At(const std::string& path, long offset, uint64_t value)
{
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    ASSERT_EQ(std::fwrite(&value, sizeof(value), 1, f), 1u);
    std::fclose(f);
}

}  // namespace

// File layout: magic(8) version(8) count(8) | ndims(8) dims(8 each) data.
constexpr long kNdimsOffset = 24;
constexpr long kFirstDimOffset = 32;

TEST_F(SerializeTest, CorruptDimCannotTriggerGiantAllocation)
{
    Rng rng(2);
    const std::string path = Track(TmpPath("corrupt_dim.bin"));
    nn::SaveTensor(Tensor::Randn({4, 3}, rng), path);
    // Claim the first dimension is 2^60 rows: the loader must reject it
    // against the ~80-byte file instead of resizing to exabytes.
    OverwriteU64At(path, kFirstDimOffset, uint64_t{1} << 60);
    try {
        nn::LoadTensor(path);
        FAIL() << "expected a corrupt-header error";
    } catch (const std::runtime_error& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("offset"), std::string::npos) << what;
    }
}

TEST_F(SerializeTest, DimProductOverflowIsRejected)
{
    Rng rng(3);
    const std::string path = Track(TmpPath("overflow_dims.bin"));
    nn::SaveTensor(Tensor::Randn({4, 3}, rng), path);
    // Two dims of 2^33 each: the naive product overflows uint64 back into
    // a small number; the bounded running product must catch it.
    OverwriteU64At(path, kFirstDimOffset, uint64_t{1} << 33);
    OverwriteU64At(path, kFirstDimOffset + 8, uint64_t{1} << 33);
    EXPECT_THROW(nn::LoadTensor(path), std::runtime_error);
}

TEST_F(SerializeTest, AbsurdRankIsRejectedWithOffset)
{
    Rng rng(4);
    const std::string path = Track(TmpPath("corrupt_rank.bin"));
    nn::SaveTensor(Tensor::Randn({4, 3}, rng), path);
    OverwriteU64At(path, kNdimsOffset, 0xffffffffULL);
    try {
        nn::LoadTensor(path);
        FAIL() << "expected a corrupt-rank error";
    } catch (const std::runtime_error& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("rank"), std::string::npos) << what;
        EXPECT_NE(what.find(std::to_string(kNdimsOffset)),
                  std::string::npos)
            << what;
    }
}

TEST_F(SerializeTest, TruncatedPayloadIsRejected)
{
    Rng rng(5);
    const std::string path = Track(TmpPath("truncated.bin"));
    nn::SaveTensor(Tensor::Randn({16, 8}, rng), path);
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) / 2);
    EXPECT_THROW(nn::LoadTensor(path), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedHeaderIsRejected)
{
    Rng rng(6);
    const std::string path = Track(TmpPath("tiny.bin"));
    nn::SaveTensor(Tensor::Randn({4, 4}, rng), path);
    std::filesystem::resize_file(path, 12);  // cuts inside the header
    EXPECT_THROW(nn::LoadTensor(path), std::runtime_error);
}

TEST_F(SerializeTest, LoadParametersReportsShapeMismatchWithContext)
{
    Rng rng_a(7), rng_b(8);
    nn::Linear a(4, 3, rng_a), b(4, 3, rng_b);
    const std::string path = Track(TmpPath("params.bin"));
    nn::SaveParameters(a.Parameters(), path);
    // Grow the second dim claimed for parameter 0: shape mismatch.
    OverwriteU64At(path, kFirstDimOffset, 5);
    try {
        nn::LoadParameters(b.Parameters(), path);
        FAIL() << "expected an error";
    } catch (const std::runtime_error& err) {
        EXPECT_NE(std::string(err.what()).find(path), std::string::npos);
    }
}

}  // namespace
}  // namespace secemb
