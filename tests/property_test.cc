/**
 * @file
 * Statistical property tests: distributional invariants that the
 * security arguments lean on — uniform ORAM leaf choice, balanced hash
 * buckets, uniform oblivious shuffles — plus randomised attack sweeps
 * across geometries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/factory.h"
#include "core/table_generators.h"
#include "dhe/hashing.h"
#include "oblivious/ct_ops.h"
#include "oblivious/sort.h"
#include "oram/tree_oram.h"
#include "sidechannel/attacker.h"
#include "sidechannel/oblivious_check.h"

namespace secemb {
namespace {

using sidechannel::ChiSquaredUniform;

/** Loose chi-squared acceptance: mean + 6*sqrt(2k) covers df up to ~5
 * sigma without a table of critical values. */
bool
ChiSquaredAcceptable(double chi2, int64_t bins)
{
    const double df = static_cast<double>(bins - 1);
    return chi2 < df + 6.0 * std::sqrt(2.0 * df);
}

TEST(OramDistributionTest, LeafChoicesUniformAcrossAccesses)
{
    // Repeatedly access one id and histogram the *leaf-level bucket* its
    // path touches: the distribution must be uniform — this is the core
    // ORAM security property (revealed paths look random regardless of
    // the access sequence).
    Rng rng(1);
    oram::OramParams params =
        oram::OramParams::Defaults(oram::OramKind::kPath);
    sidechannel::TraceRecorder rec;
    params.recorder = &rec;
    oram::TreeOram oram(oram::OramKind::kPath, 256, 4, rng, params);
    const int64_t leaves = oram.num_leaves();

    std::vector<int64_t> counts(static_cast<size_t>(leaves), 0);
    std::vector<uint32_t> block(4);
    const int kAccesses = 4000;
    const auto& space = sidechannel::ProcessAddressSpace();
    for (int i = 0; i < kAccesses; ++i) {
        rec.Clear();
        oram.Read(7, block);  // same "secret" every time
        // The deepest bucket read in the access trace identifies the
        // leaf; bucket offsets within the "oram.tree" region are
        // index * bucket_bytes (resolved via the named address region,
        // so the test is independent of where the base landed).
        uint64_t max_offset = 0;
        bool saw_tree = false;
        for (const auto& a : rec.trace()) {
            if (a.is_write) continue;
            const sidechannel::AddressRegion* region = space.Find(a.addr);
            if (region == nullptr || region->name != "oram.tree") continue;
            max_offset = std::max(max_offset, a.addr - region->base);
            saw_tree = true;
        }
        ASSERT_TRUE(saw_tree);
        // Leaf buckets occupy the top half of the bucket array.
        const uint64_t bucket_bytes = 4ull * 4ull * 4ull;
        const int64_t bucket =
            static_cast<int64_t>(max_offset / bucket_bytes);
        const int64_t leaf = bucket - (leaves - 1);
        if (leaf >= 0 && leaf < leaves) {
            ++counts[static_cast<size_t>(leaf)];
        }
    }
    int64_t observed = 0;
    for (int64_t c : counts) observed += c;
    ASSERT_GT(observed, kAccesses / 2);  // parsing sanity
    const double chi2 = ChiSquaredUniform(counts);
    EXPECT_TRUE(ChiSquaredAcceptable(chi2, leaves))
        << "chi2 = " << chi2 << " over " << leaves << " leaves";
}

TEST(HashDistributionTest, BucketOccupancyUniform)
{
    // A single universal hash over sequential ids must fill buckets
    // uniformly — the property that makes DHE's encoding informative.
    Rng rng(2);
    dhe::HashEncoder enc(1, 64, rng);
    std::vector<int64_t> ids;
    for (int64_t i = 0; i < 64000; ++i) ids.push_back(i);
    const Tensor codes = enc.Encode(ids);
    std::vector<int64_t> counts(64, 0);
    for (int64_t i = 0; i < codes.numel(); ++i) {
        // Invert the [-1, 1] scaling back to the bucket id.
        const int64_t bucket = static_cast<int64_t>(
            std::lround((codes.at(i) + 1.0f) / 2.0f * 63.0f));
        ASSERT_GE(bucket, 0);
        ASSERT_LT(bucket, 64);
        ++counts[static_cast<size_t>(bucket)];
    }
    EXPECT_TRUE(ChiSquaredAcceptable(ChiSquaredUniform(counts), 64))
        << ChiSquaredUniform(counts);
}

TEST(ShuffleDistributionTest, PairwisePositionsUniform)
{
    // Position histogram of a tracked element across shuffles.
    const int64_t n = 16;
    std::vector<int64_t> counts(static_cast<size_t>(n), 0);
    Rng rng(3);
    const int trials = 8000;
    for (int t = 0; t < trials; ++t) {
        std::vector<uint32_t> rows(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            rows[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
        }
        oblivious::ObliviousShuffle(rows, 1, n, rng);
        for (int64_t i = 0; i < n; ++i) {
            if (rows[static_cast<size_t>(i)] == 3) {
                ++counts[static_cast<size_t>(i)];
                break;
            }
        }
    }
    EXPECT_TRUE(ChiSquaredAcceptable(ChiSquaredUniform(counts), n))
        << ChiSquaredUniform(counts);
}

// --- oblivious sort: randomized-shape invariants ---------------------------

TEST(SortPropertyTest, RandomShapesAgreeWithStdSort)
{
    // Random lengths (including 0, 1, and non-powers-of-two — the bitonic
    // network's padding path) with duplicate-heavy keys: the oblivious
    // sort must agree with std::sort on every case.
    Rng rng(41);
    for (int trial = 0; trial < 200; ++trial) {
        const int64_t n = static_cast<int64_t>(rng.NextBounded(130));
        std::vector<uint64_t> keys(static_cast<size_t>(n));
        for (auto& k : keys) k = rng.NextBounded(16);  // many duplicates
        std::vector<uint64_t> expected = keys;
        std::sort(expected.begin(), expected.end());
        oblivious::ObliviousSort(keys);
        ASSERT_EQ(keys, expected) << "n=" << n << " trial=" << trial;
    }
}

TEST(SortPropertyTest, PayloadRowsTravelWithTheirKeys)
{
    Rng rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        const int64_t n = 1 + static_cast<int64_t>(rng.NextBounded(70));
        const int64_t words = 1 + static_cast<int64_t>(rng.NextBounded(5));
        std::vector<uint64_t> keys(static_cast<size_t>(n));
        std::vector<uint32_t> rows(static_cast<size_t>(n * words));
        for (int64_t i = 0; i < n; ++i) {
            // Distinct keys so the key -> payload relation is a function.
            keys[static_cast<size_t>(i)] =
                (rng.NextBounded(1u << 20) << 10) |
                static_cast<uint64_t>(i);
            for (int64_t w = 0; w < words; ++w) {
                // Payload derives from the key, making mismatches loud.
                rows[static_cast<size_t>(i * words + w)] =
                    static_cast<uint32_t>(keys[static_cast<size_t>(i)] *
                                              31 +
                                          static_cast<uint64_t>(w));
            }
        }
        oblivious::ObliviousSortByKey(keys, rows, words);
        ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t w = 0; w < words; ++w) {
                ASSERT_EQ(rows[static_cast<size_t>(i * words + w)],
                          static_cast<uint32_t>(
                              keys[static_cast<size_t>(i)] * 31 +
                              static_cast<uint64_t>(w)))
                    << "n=" << n << " words=" << words << " i=" << i;
            }
        }
    }
}

// --- constant-time primitives vs naive reference ---------------------------

TEST(CtOpsPropertyTest, AgreeWithNaiveReferenceOn1kSeededCases)
{
    Rng rng(43);
    for (int trial = 0; trial < 1000; ++trial) {
        // Mix full-range values with near-collisions and boundary values,
        // where branchless comparisons are easiest to get wrong.
        auto draw = [&rng]() -> uint64_t {
            switch (rng.NextBounded(4)) {
              case 0: return rng.Next();
              case 1: return rng.NextBounded(3);
              case 2: return ~uint64_t{0} - rng.NextBounded(3);
              default: return uint64_t{1} << rng.NextBounded(64);
            }
        };
        const uint64_t a = draw();
        const uint64_t b = rng.NextBounded(2) == 0 ? draw() : a;

        EXPECT_EQ(oblivious::EqMask(a, b),
                  a == b ? ~uint64_t{0} : uint64_t{0});
        EXPECT_EQ(oblivious::LtMask(a, b),
                  a < b ? ~uint64_t{0} : uint64_t{0});

        const uint64_t mask =
            rng.NextBounded(2) == 0 ? ~uint64_t{0} : uint64_t{0};
        EXPECT_EQ(oblivious::Select(mask, a, b), mask ? a : b);
        EXPECT_EQ(oblivious::BoolToMask(mask & 1),
                  mask ? ~uint64_t{0} : uint64_t{0});

        const int64_t sa = static_cast<int64_t>(a);
        const int64_t sb = static_cast<int64_t>(b);
        EXPECT_EQ(oblivious::SelectI64(mask, sa, sb), mask ? sa : sb);

        const float fa = rng.NextUniform(-100.0f, 100.0f);
        const float fb = rng.NextUniform(-100.0f, 100.0f);
        EXPECT_EQ(oblivious::SelectF32(mask, fa, fb), mask ? fa : fb);

        uint64_t x = a, y = b;
        oblivious::CtSwapU64(mask, x, y);
        EXPECT_EQ(x, mask ? b : a);
        EXPECT_EQ(y, mask ? a : b);
    }
}

TEST(CtOpsPropertyTest, RowBlendAndSwapMatchReference)
{
    Rng rng(44);
    for (int trial = 0; trial < 100; ++trial) {
        const size_t n = 1 + rng.NextBounded(33);
        std::vector<float> src(n), dst(n), dst0;
        for (size_t i = 0; i < n; ++i) {
            src[i] = rng.NextUniform(-1.0f, 1.0f);
            dst[i] = rng.NextUniform(-1.0f, 1.0f);
        }
        dst0 = dst;
        const uint64_t mask =
            rng.NextBounded(2) == 0 ? ~uint64_t{0} : uint64_t{0};
        oblivious::CtCopyRow(mask, src, dst);
        ASSERT_EQ(dst, mask ? src : dst0);

        std::vector<float> p = src, q = dst0;
        oblivious::CtSwapRows(mask, p, q);
        ASSERT_EQ(p, mask ? dst0 : src);
        ASSERT_EQ(q, mask ? src : dst0);
    }
}

// --- attack sweeps over geometries ----------------------------------------

struct AttackGeometry
{
    int64_t dim;
    int ways;
    int sets;
};

class AttackSweepTest : public ::testing::TestWithParam<AttackGeometry>
{
};

TEST_P(AttackSweepTest, NonSecureLeaksAcrossGeometries)
{
    const auto [dim, ways, sets] = GetParam();
    const int64_t rows = 128;
    const int monitored = 20;
    Rng rng(dim + ways);
    core::TableLookup victim(Tensor::Randn({rows, dim}, rng));
    sidechannel::TraceRecorder rec;
    victim.set_recorder(&rec);
    sidechannel::CacheConfig ccfg;
    ccfg.num_sets = sets;
    ccfg.ways = ways;
    sidechannel::CacheModel cache(ccfg);
    sidechannel::EvictionSetAttacker attacker(cache, victim.trace_base(),
                                              dim * 4, monitored);
    int correct = 0;
    for (int64_t secret = 0; secret < monitored; ++secret) {
        rec.Clear();
        Tensor out({1, dim});
        std::vector<int64_t> b{secret};
        victim.Generate(b, out);
        correct +=
            attacker.Attack(rec.trace(), 5).guessed_index == secret;
    }
    // Rows >= one cache line leak reliably (the paper's observation that
    // "an embedding table entry is always bigger than one cache line").
    if (dim * 4 >= 64) {
        EXPECT_GE(correct, monitored - 1);
    } else {
        // Sub-line rows alias within a set: the guess is only line-
        // granular, still far above chance.
        EXPECT_GE(correct, monitored / 4);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AttackSweepTest,
    ::testing::Values(AttackGeometry{16, 8, 1024},
                      AttackGeometry{64, 12, 4096},
                      AttackGeometry{64, 4, 512},
                      AttackGeometry{256, 16, 2048}),
    [](const auto& info) {
        return "dim" + std::to_string(info.param.dim) + "_w" +
               std::to_string(info.param.ways) + "_s" +
               std::to_string(info.param.sets);
    });

TEST(ObliviousnessSweepTest, AllSecureKindsHaveStableTraceShape)
{
    // For every secure generator kind: run two different secret batches
    // and require identical trace *shape* (identical content for the
    // deterministic ones).
    const int64_t rows = 64, dim = 8;
    Rng table_rng(5);
    const Tensor table = Tensor::Randn({rows, dim}, table_rng);
    for (auto kind : {core::GenKind::kLinearScan,
                      core::GenKind::kPathOram,
                      core::GenKind::kCircuitOram}) {
        Rng rng(6);
        core::GeneratorOptions opt;
        opt.table = &table;
        sidechannel::TraceRecorder rec;
        oram::OramParams oram_params = oram::OramParams::Defaults(
            kind == core::GenKind::kPathOram ? oram::OramKind::kPath
                                             : oram::OramKind::kCircuit);
        oram_params.recorder = &rec;
        opt.oram_params = &oram_params;
        auto gen = core::MakeGenerator(kind, rows, dim, rng, opt);
        gen->set_recorder(&rec);

        Tensor out({2, dim});
        std::vector<int64_t> a{1, 2};
        gen->Generate(a, out);
        const auto trace_a = rec.trace();
        rec.Clear();
        std::vector<int64_t> b{60, 61};
        gen->Generate(b, out);
        const auto r = sidechannel::CompareTraces(trace_a, rec.trace());
        EXPECT_TRUE(r.same_shape)
            << std::string(core::GenKindName(kind)) << ": " << r.detail;
        if (kind == core::GenKind::kLinearScan) {
            EXPECT_TRUE(r.identical);
        }
    }
}

}  // namespace
}  // namespace secemb
