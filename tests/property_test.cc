/**
 * @file
 * Statistical property tests: distributional invariants that the
 * security arguments lean on — uniform ORAM leaf choice, balanced hash
 * buckets, uniform oblivious shuffles — plus randomised attack sweeps
 * across geometries.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/factory.h"
#include "core/table_generators.h"
#include "dhe/hashing.h"
#include "oblivious/sort.h"
#include "oram/tree_oram.h"
#include "sidechannel/attacker.h"
#include "sidechannel/oblivious_check.h"

namespace secemb {
namespace {

using sidechannel::ChiSquaredUniform;

/** Loose chi-squared acceptance: mean + 6*sqrt(2k) covers df up to ~5
 * sigma without a table of critical values. */
bool
ChiSquaredAcceptable(double chi2, int64_t bins)
{
    const double df = static_cast<double>(bins - 1);
    return chi2 < df + 6.0 * std::sqrt(2.0 * df);
}

TEST(OramDistributionTest, LeafChoicesUniformAcrossAccesses)
{
    // Repeatedly access one id and histogram the *leaf-level bucket* its
    // path touches: the distribution must be uniform — this is the core
    // ORAM security property (revealed paths look random regardless of
    // the access sequence).
    Rng rng(1);
    oram::OramParams params =
        oram::OramParams::Defaults(oram::OramKind::kPath);
    sidechannel::TraceRecorder rec;
    params.recorder = &rec;
    oram::TreeOram oram(oram::OramKind::kPath, 256, 4, rng, params);
    const int64_t leaves = oram.num_leaves();

    std::vector<int64_t> counts(static_cast<size_t>(leaves), 0);
    std::vector<uint32_t> block(4);
    const int kAccesses = 4000;
    for (int i = 0; i < kAccesses; ++i) {
        rec.Clear();
        oram.Read(7, block);  // same "secret" every time
        // The deepest bucket read in the access trace identifies the
        // leaf; bucket addresses are tree-base + index * bucket_bytes.
        uint64_t max_addr = 0;
        for (const auto& a : rec.trace()) {
            if (!a.is_write && a.addr > max_addr &&
                a.addr < 0x5000000000ULL) {
                max_addr = std::max(max_addr, a.addr);
            }
        }
        // Leaf buckets occupy the top half of the bucket array.
        const uint64_t bucket_bytes = 4ull * 4ull * 4ull;
        const int64_t bucket = static_cast<int64_t>(
            (max_addr - 0x2000000000ULL) / bucket_bytes);
        const int64_t leaf = bucket - (leaves - 1);
        if (leaf >= 0 && leaf < leaves) {
            ++counts[static_cast<size_t>(leaf)];
        }
    }
    int64_t observed = 0;
    for (int64_t c : counts) observed += c;
    ASSERT_GT(observed, kAccesses / 2);  // parsing sanity
    const double chi2 = ChiSquaredUniform(counts);
    EXPECT_TRUE(ChiSquaredAcceptable(chi2, leaves))
        << "chi2 = " << chi2 << " over " << leaves << " leaves";
}

TEST(HashDistributionTest, BucketOccupancyUniform)
{
    // A single universal hash over sequential ids must fill buckets
    // uniformly — the property that makes DHE's encoding informative.
    Rng rng(2);
    dhe::HashEncoder enc(1, 64, rng);
    std::vector<int64_t> ids;
    for (int64_t i = 0; i < 64000; ++i) ids.push_back(i);
    const Tensor codes = enc.Encode(ids);
    std::vector<int64_t> counts(64, 0);
    for (int64_t i = 0; i < codes.numel(); ++i) {
        // Invert the [-1, 1] scaling back to the bucket id.
        const int64_t bucket = static_cast<int64_t>(
            std::lround((codes.at(i) + 1.0f) / 2.0f * 63.0f));
        ASSERT_GE(bucket, 0);
        ASSERT_LT(bucket, 64);
        ++counts[static_cast<size_t>(bucket)];
    }
    EXPECT_TRUE(ChiSquaredAcceptable(ChiSquaredUniform(counts), 64))
        << ChiSquaredUniform(counts);
}

TEST(ShuffleDistributionTest, PairwisePositionsUniform)
{
    // Position histogram of a tracked element across shuffles.
    const int64_t n = 16;
    std::vector<int64_t> counts(static_cast<size_t>(n), 0);
    Rng rng(3);
    const int trials = 8000;
    for (int t = 0; t < trials; ++t) {
        std::vector<uint32_t> rows(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            rows[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
        }
        oblivious::ObliviousShuffle(rows, 1, n, rng);
        for (int64_t i = 0; i < n; ++i) {
            if (rows[static_cast<size_t>(i)] == 3) {
                ++counts[static_cast<size_t>(i)];
                break;
            }
        }
    }
    EXPECT_TRUE(ChiSquaredAcceptable(ChiSquaredUniform(counts), n))
        << ChiSquaredUniform(counts);
}

// --- attack sweeps over geometries ----------------------------------------

struct AttackGeometry
{
    int64_t dim;
    int ways;
    int sets;
};

class AttackSweepTest : public ::testing::TestWithParam<AttackGeometry>
{
};

TEST_P(AttackSweepTest, NonSecureLeaksAcrossGeometries)
{
    const auto [dim, ways, sets] = GetParam();
    const int64_t rows = 128;
    const int monitored = 20;
    Rng rng(dim + ways);
    core::TableLookup victim(Tensor::Randn({rows, dim}, rng));
    sidechannel::TraceRecorder rec;
    victim.set_recorder(&rec);
    sidechannel::CacheConfig ccfg;
    ccfg.num_sets = sets;
    ccfg.ways = ways;
    sidechannel::CacheModel cache(ccfg);
    sidechannel::EvictionSetAttacker attacker(cache, victim.trace_base(),
                                              dim * 4, monitored);
    int correct = 0;
    for (int64_t secret = 0; secret < monitored; ++secret) {
        rec.Clear();
        Tensor out({1, dim});
        std::vector<int64_t> b{secret};
        victim.Generate(b, out);
        correct +=
            attacker.Attack(rec.trace(), 5).guessed_index == secret;
    }
    // Rows >= one cache line leak reliably (the paper's observation that
    // "an embedding table entry is always bigger than one cache line").
    if (dim * 4 >= 64) {
        EXPECT_GE(correct, monitored - 1);
    } else {
        // Sub-line rows alias within a set: the guess is only line-
        // granular, still far above chance.
        EXPECT_GE(correct, monitored / 4);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AttackSweepTest,
    ::testing::Values(AttackGeometry{16, 8, 1024},
                      AttackGeometry{64, 12, 4096},
                      AttackGeometry{64, 4, 512},
                      AttackGeometry{256, 16, 2048}),
    [](const auto& info) {
        return "dim" + std::to_string(info.param.dim) + "_w" +
               std::to_string(info.param.ways) + "_s" +
               std::to_string(info.param.sets);
    });

TEST(ObliviousnessSweepTest, AllSecureKindsHaveStableTraceShape)
{
    // For every secure generator kind: run two different secret batches
    // and require identical trace *shape* (identical content for the
    // deterministic ones).
    const int64_t rows = 64, dim = 8;
    Rng table_rng(5);
    const Tensor table = Tensor::Randn({rows, dim}, table_rng);
    for (auto kind : {core::GenKind::kLinearScan,
                      core::GenKind::kPathOram,
                      core::GenKind::kCircuitOram}) {
        Rng rng(6);
        core::GeneratorOptions opt;
        opt.table = &table;
        sidechannel::TraceRecorder rec;
        oram::OramParams oram_params = oram::OramParams::Defaults(
            kind == core::GenKind::kPathOram ? oram::OramKind::kPath
                                             : oram::OramKind::kCircuit);
        oram_params.recorder = &rec;
        opt.oram_params = &oram_params;
        auto gen = core::MakeGenerator(kind, rows, dim, rng, opt);
        gen->set_recorder(&rec);

        Tensor out({2, dim});
        std::vector<int64_t> a{1, 2};
        gen->Generate(a, out);
        const auto trace_a = rec.trace();
        rec.Clear();
        std::vector<int64_t> b{60, 61};
        gen->Generate(b, out);
        const auto r = sidechannel::CompareTraces(trace_a, rec.trace());
        EXPECT_TRUE(r.same_shape)
            << std::string(core::GenKindName(kind)) << ": " << r.detail;
        if (kind == core::GenKind::kLinearScan) {
            EXPECT_TRUE(r.identical);
        }
    }
}

}  // namespace
}  // namespace secemb
