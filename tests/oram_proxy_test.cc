/**
 * @file
 * Tests for the asynchronous ORAM proxy (src/oram/proxy): correctness
 * against the serial controller, coalescing + dummy-padding accounting,
 * concurrent submission, flight-recorder hops, and shutdown semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/factory.h"
#include "core/table_generators.h"
#include "oram/proxy.h"
#include "oram/tree_oram.h"
#include "serving/flight_recorder.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb::oram {
namespace {

std::vector<uint32_t>
MakeBlock(int64_t words, uint32_t seed)
{
    std::vector<uint32_t> b(static_cast<size_t>(words));
    for (size_t i = 0; i < b.size(); ++i) {
        b[i] = seed * 2654435761u + static_cast<uint32_t>(i);
    }
    return b;
}

/** A proxy over a freshly written tree: block i holds MakeBlock(i + 1). */
std::unique_ptr<OramProxy>
MakeLoadedProxy(OramKind kind, int64_t blocks, int64_t words,
                const ProxyConfig& config, uint64_t seed = 1)
{
    Rng rng(seed);
    auto tree = MakeOram(kind, blocks, words, rng);
    std::vector<uint32_t> flat(static_cast<size_t>(blocks * words));
    for (int64_t i = 0; i < blocks; ++i) {
        const auto b = MakeBlock(words, static_cast<uint32_t>(i) + 1);
        std::copy(b.begin(), b.end(), flat.begin() + i * words);
    }
    tree->BulkLoad(flat);
    return std::make_unique<OramProxy>(std::move(tree), config);
}

TEST(OramProxyTest, ReadsMatchLoadedContent)
{
    ProxyConfig config;
    config.batch_window = 4;
    auto proxy = MakeLoadedProxy(OramKind::kPath, 64, 8, config);
    for (int64_t id : {int64_t{0}, int64_t{17}, int64_t{63}, int64_t{17}}) {
        auto fut = proxy->SubmitRead(id);
        proxy->Flush();
        EXPECT_EQ(fut.get(),
                  MakeBlock(8, static_cast<uint32_t>(id) + 1))
            << "id " << id;
    }
}

TEST(OramProxyTest, DuplicatesCoalesceAndPadToWindowSize)
{
    ProxyConfig config;
    config.batch_window = 4;
    auto proxy = MakeLoadedProxy(OramKind::kPath, 64, 4, config);
    std::vector<std::future<std::vector<uint32_t>>> futs;
    for (int64_t id : {int64_t{5}, int64_t{5}, int64_t{7}, int64_t{5}}) {
        futs.push_back(proxy->SubmitRead(id));
    }
    proxy->Flush();
    EXPECT_EQ(futs[0].get(), MakeBlock(4, 6));
    EXPECT_EQ(futs[1].get(), MakeBlock(4, 6));
    EXPECT_EQ(futs[2].get(), MakeBlock(4, 8));
    EXPECT_EQ(futs[3].get(), MakeBlock(4, 6));

    const ProxyStats s = proxy->stats();
    EXPECT_EQ(s.requests, 4u);
    EXPECT_EQ(s.windows, 1u);
    // 2 distinct ids -> 2 real accesses, padded with 2 dummies: the
    // physical count must not reveal the duplicate structure.
    EXPECT_EQ(s.physical_accesses, 4u);
    EXPECT_EQ(s.real_accesses, 2u);
    EXPECT_EQ(s.dummy_accesses, 2u);
    EXPECT_EQ(s.coalesced, 2u);
    // The tree really performed one full access per physical slot.
    EXPECT_EQ(proxy->oram().stats().accesses, 4u);
}

TEST(OramProxyTest, PhysicalCountAlwaysEqualsLogicalCount)
{
    ProxyConfig config;
    config.batch_window = 3;
    auto proxy = MakeLoadedProxy(OramKind::kPath, 32, 4, config);
    Rng mix(7);
    std::vector<std::future<std::vector<uint32_t>>> futs;
    const int n = 20;  // 6 full windows + a partial tail of 2
    for (int i = 0; i < n; ++i) {
        // Zipf-ish: half the traffic hits ids 0..3.
        const int64_t id = static_cast<int64_t>(
            mix.NextBounded(2) == 0 ? mix.NextBounded(4)
                                    : mix.NextBounded(32));
        futs.push_back(proxy->SubmitRead(id));
    }
    proxy->Flush();
    for (auto& f : futs) f.get();
    const ProxyStats s = proxy->stats();
    EXPECT_EQ(s.requests, static_cast<uint64_t>(n));
    EXPECT_EQ(s.physical_accesses, static_cast<uint64_t>(n));
    EXPECT_EQ(s.real_accesses + s.dummy_accesses, s.physical_accesses);
    EXPECT_EQ(s.windows, 7u);
    EXPECT_EQ(proxy->oram().stats().accesses, static_cast<uint64_t>(n));
    EXPECT_GT(s.coalesced, 0u);
    EXPECT_EQ(s.coalesced, s.dummy_accesses);
}

TEST(OramProxyTest, ParallelAccessesMatchSingleThread)
{
    for (int nthreads : {1, 4}) {
        ProxyConfig config;
        config.batch_window = 4;
        config.nthreads = nthreads;
        auto proxy = MakeLoadedProxy(OramKind::kPath, 128, 16, config);
        std::vector<std::future<std::vector<uint32_t>>> futs;
        Rng mix(11);
        std::vector<int64_t> ids;
        for (int i = 0; i < 40; ++i) {
            ids.push_back(static_cast<int64_t>(mix.NextBounded(128)));
        }
        for (int64_t id : ids) futs.push_back(proxy->SubmitRead(id));
        proxy->Flush();
        for (size_t i = 0; i < ids.size(); ++i) {
            EXPECT_EQ(futs[i].get(),
                      MakeBlock(16, static_cast<uint32_t>(ids[i]) + 1))
                << "nthreads " << nthreads << " i " << i;
        }
        if (nthreads > 1) {
            // The decomposed path defers write-back encryption and fuses
            // it with the next access's position-map scan.
            EXPECT_GT(proxy->stats().evictions_overlapped, 0u);
        } else {
            // One thread takes the serial controller fast path: nothing
            // is deferred, so nothing can overlap.
            EXPECT_EQ(proxy->stats().evictions_overlapped, 0u);
        }
    }
}

TEST(OramProxyTest, CircuitKindServesThroughSerialFallback)
{
    ProxyConfig config;
    config.batch_window = 2;
    config.nthreads = 4;
    auto proxy = MakeLoadedProxy(OramKind::kCircuit, 32, 4, config);
    auto f1 = proxy->SubmitRead(3);
    auto f2 = proxy->SubmitRead(3);
    proxy->Flush();
    EXPECT_EQ(f1.get(), MakeBlock(4, 4));
    EXPECT_EQ(f2.get(), MakeBlock(4, 4));
    const ProxyStats s = proxy->stats();
    EXPECT_EQ(s.physical_accesses, 2u);
    EXPECT_EQ(s.coalesced, 1u);
}

TEST(OramProxyTest, ConcurrentSubmittersAllGetTheirBlocks)
{
    ProxyConfig config;
    config.batch_window = 4;
    config.nthreads = 2;
    config.queue_capacity = 8;  // force back-pressure
    auto proxy = MakeLoadedProxy(OramKind::kPath, 64, 8, config);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 12;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            Rng mix(100 + static_cast<uint64_t>(t));
            for (int i = 0; i < kPerThread; ++i) {
                const int64_t id =
                    static_cast<int64_t>(mix.NextBounded(64));
                auto fut = proxy->SubmitRead(id);
                if (fut.get() !=
                    MakeBlock(8, static_cast<uint32_t>(id) + 1)) {
                    ++failures;
                }
            }
        });
    }
    // A flusher keeps partial tails moving while submitters block on
    // their futures.
    std::atomic<bool> done{false};
    std::thread flusher([&] {
        while (!done.load()) proxy->Flush();
    });
    for (auto& w : workers) w.join();
    done.store(true);
    flusher.join();
    proxy->Flush();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(proxy->stats().requests,
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(proxy->stats().physical_accesses,
              static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(OramProxyTest, FlightRecorderSeesProxyHops)
{
    serving::FlightRecorder flight(1024);
    ProxyConfig config;
    config.batch_window = 4;
    config.nthreads = 2;  // decomposed path: eviction hops are recorded
    config.flight = &flight;
    auto proxy = MakeLoadedProxy(OramKind::kPath, 32, 4, config);
    std::vector<std::future<std::vector<uint32_t>>> futs;
    for (int64_t id : {int64_t{1}, int64_t{1}, int64_t{2}, int64_t{9}}) {
        futs.push_back(proxy->SubmitRead(id));
    }
    proxy->Flush();
    for (auto& f : futs) f.get();

    uint64_t enq = 0, coal = 0, acc = 0, evict = 0;
    for (const serving::FlightEvent& e : flight.Snapshot()) {
        switch (e.hop) {
            case serving::FlightHop::kProxyEnqueue: ++enq; break;
            case serving::FlightHop::kProxyCoalesce: ++coal; break;
            case serving::FlightHop::kProxyAccess: ++acc; break;
            case serving::FlightHop::kProxyEvict: ++evict; break;
            default: break;
        }
    }
    EXPECT_EQ(enq, 4u);
    EXPECT_EQ(coal, 1u);
    EXPECT_EQ(acc, 4u);
    EXPECT_GE(evict, 1u);
}

TEST(OramProxyTest, SubmitAfterShutdownThrows)
{
    ProxyConfig config;
    auto proxy = MakeLoadedProxy(OramKind::kPath, 16, 4, config);
    auto fut = proxy->SubmitRead(2);
    proxy->Shutdown();
    EXPECT_EQ(fut.get(), MakeBlock(4, 3));  // drained before stopping
    EXPECT_THROW(proxy->SubmitRead(1), std::runtime_error);
}

TEST(OramProxyTest, OutOfRangeIdIsRejectedUpFront)
{
    ProxyConfig config;
    auto proxy = MakeLoadedProxy(OramKind::kPath, 16, 4, config);
    EXPECT_THROW(proxy->SubmitRead(-1), std::invalid_argument);
    EXPECT_THROW(proxy->SubmitRead(16), std::invalid_argument);
    EXPECT_EQ(proxy->stats().requests, 0u);
}

TEST(OramProxyTest, ProxyWindowsHelperRoundsUp)
{
    EXPECT_EQ(ProxyWindows(0, 4), 0);
    EXPECT_EQ(ProxyWindows(4, 4), 1);
    EXPECT_EQ(ProxyWindows(5, 4), 2);
    EXPECT_EQ(ProxyWindows(7, 0), 7);  // degenerate window clamps to 1
}

// ---------------------------------------------------------------------------
// ProxiedOramTable (the serving-facing generator)
// ---------------------------------------------------------------------------

TEST(ProxiedOramTableTest, GenerateMatchesTableRows)
{
    Rng table_rng(5);
    Tensor table = Tensor::Randn({48, 8}, table_rng);
    Rng rng(6);
    oram::ProxyConfig config;
    config.batch_window = 4;
    core::ProxiedOramTable gen(table, OramKind::kPath, rng, nullptr,
                               config);
    gen.set_nthreads(2);
    EXPECT_EQ(gen.name(), "Path ORAM (proxy)");
    EXPECT_TRUE(gen.IsOblivious());
    EXPECT_GT(gen.MemoryFootprintBytes(), table.SizeBytes());

    const std::vector<int64_t> indices = {0, 7, 7, 33, 47, 7, 0, 12};
    Tensor out({static_cast<int64_t>(indices.size()), 8});
    gen.Generate(indices, out);
    for (size_t i = 0; i < indices.size(); ++i) {
        for (int64_t d = 0; d < 8; ++d) {
            EXPECT_EQ(out.data()[static_cast<int64_t>(i) * 8 + d],
                      table.data()[indices[i] * 8 + d])
                << "row " << i << " dim " << d;
        }
    }
    EXPECT_GT(gen.proxy().stats().coalesced, 0u);
}

TEST(ProxiedOramTableTest, FactoryBuildsProxiedKind)
{
    Rng rng(9);
    core::GeneratorOptions opt;
    opt.nthreads = 2;
    auto gen = core::MakeGenerator(core::GenKind::kProxyOram,
                                   /*table_size=*/64, /*dim=*/8, rng, opt);
    ASSERT_NE(gen, nullptr);
    EXPECT_EQ(gen->name(), "Path ORAM (proxy)");
    EXPECT_EQ(core::GenKindName(core::GenKind::kProxyOram),
              gen->name());
    EXPECT_TRUE(gen->IsOblivious());
    EXPECT_EQ(gen->num_rows(), 64);
    EXPECT_EQ(gen->dim(), 8);

    const std::vector<int64_t> indices = {3, 3, 61, 0};
    Tensor out({4, 8});
    gen->Generate(indices, out);
    // Duplicate rows must come back identical (served off one access).
    for (int64_t d = 0; d < 8; ++d) {
        EXPECT_EQ(out.data()[0 * 8 + d], out.data()[1 * 8 + d]);
    }
}

}  // namespace
}  // namespace secemb::oram
