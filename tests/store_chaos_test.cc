/**
 * @file
 * Crash/fault tier for the out-of-core store (`ctest -L robustness`):
 * every IO fault class — open failure, short/failed read, write-space
 * exhaustion, torn write (CorruptFileBytes), truncation (TruncateFile) —
 * must surface as the documented typed serving::Status, replay exactly
 * from its FaultPlan seed, and map through the serving layer (StoreError
 * -> Response status, storage-sync failure counters) without crash,
 * hang, or silent corruption.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/paged_generators.h"
#include "fault/fault.h"
#include "serving/server.h"
#include "store/backing_store.h"
#include "store/durable.h"
#include "store/page_cache.h"
#include "store/raw_oram.h"
#include "tensor/rng.h"

namespace secemb::store {
namespace {

using fault::FaultPlan;
using fault::FaultSite;
using fault::ScopedFaultInjection;

std::string
TempPath(const std::string& name)
{
    const std::string path = testing::TempDir() + "secemb_" + name;
    std::filesystem::remove(path);
    return path;
}

StoreConfig
FileConfig(const std::string& path, int64_t page_bytes = 256,
           int64_t cache_pages = 4)
{
    StoreConfig config;
    config.backend = StoreBackend::kFile;
    config.path = path;
    config.page_bytes = page_bytes;
    config.cache_pages = cache_pages;
    return config;
}

/** Build a synced 8-page file store with per-page patterns; returns the
 *  payload written to `page_out` for later comparison. */
void
SeedStoreFile(const std::string& path,
              std::vector<std::vector<uint8_t>>* pages_out)
{
    std::unique_ptr<BackingStore> store;
    ASSERT_TRUE(MakeBackingStore(FileConfig(path), 8, &store).ok());
    pages_out->clear();
    for (int64_t p = 0; p < 8; ++p) {
        std::vector<uint8_t> page(256);
        Rng rng(500 + static_cast<uint64_t>(p));
        for (auto& b : page) b = static_cast<uint8_t>(rng.Next());
        ASSERT_TRUE(store->WritePage(p, page).ok());
        pages_out->push_back(std::move(page));
    }
    ASSERT_TRUE(store->Sync().ok());
}

TEST(StoreChaosTest, OpenFaultIsInternalAndRecoverable)
{
    const std::string path = TempPath("open_fault.store");
    FaultPlan plan(201);
    plan.ArmCountdown(FaultSite::kIoOpen, /*first_hit=*/1);
    std::unique_ptr<BackingStore> store;
    {
        ScopedFaultInjection scope(&plan);
        EXPECT_EQ(MakeBackingStore(FileConfig(path), 4, &store).code,
                  serving::StatusCode::kInternal);
    }
    EXPECT_EQ(plan.fires(FaultSite::kIoOpen), 1u);
    // With the plan gone the identical call succeeds.
    EXPECT_TRUE(MakeBackingStore(FileConfig(path), 4, &store).ok());
}

TEST(StoreChaosTest, ReadFaultIsInternalPerFaultClass)
{
    const std::string path = TempPath("read_fault.store");
    std::vector<std::vector<uint8_t>> pages;
    SeedStoreFile(path, &pages);

    StoreConfig config = FileConfig(path);
    config.create = false;
    std::unique_ptr<PageCache> cache;
    ASSERT_TRUE(MakePageCache(config, 8, &cache).ok());

    FaultPlan plan(202);
    plan.ArmCountdown(FaultSite::kIoRead, /*first_hit=*/1);
    std::vector<uint8_t> out(256);
    {
        ScopedFaultInjection scope(&plan);
        EXPECT_EQ(cache->ReadPage(3, out).code,
                  serving::StatusCode::kInternal);
    }
    // The failed fetch must not have installed a poisoned frame: the
    // retry re-reads from the store and returns the real payload.
    ASSERT_TRUE(cache->ReadPage(3, out).ok());
    EXPECT_EQ(out, pages[3]);
}

TEST(StoreChaosTest, WriteFaultIsResourceExhausted)
{
    const std::string path = TempPath("write_fault.store");
    std::unique_ptr<PageCache> cache;
    ASSERT_TRUE(MakePageCache(FileConfig(path), 8, &cache).ok());

    std::vector<uint8_t> page(256, 0x11);
    ASSERT_TRUE(cache->WritePage(0, page).ok());  // dirty, cached

    FaultPlan plan(203);
    plan.ArmRate(FaultSite::kIoWrite, 1.0);
    {
        ScopedFaultInjection scope(&plan);
        EXPECT_EQ(cache->FlushDirty().code,
                  serving::StatusCode::kResourceExhausted);
    }
    EXPECT_GE(plan.fires(FaultSite::kIoWrite), 1u);
    // Space back: the same dirty frame flushes cleanly.
    EXPECT_TRUE(cache->Sync().ok());
}

TEST(StoreChaosTest, TornWriteDetectedByChecksumOnNextRead)
{
    const std::string path = TempPath("torn.store");
    std::vector<std::vector<uint8_t>> pages;
    SeedStoreFile(path, &pages);

    // Flip bytes in the data region only (past header + CRC table): the
    // modeled torn write / bit rot a crash can leave behind.
    const uint64_t data_offset = static_cast<uint64_t>(
        StoreFileDataOffset(/*page_bytes=*/256, /*num_pages=*/8));
    const uint64_t flipped =
        fault::CorruptFileBytes(path, /*seed=*/204, /*flips=*/1,
                                /*skip_prefix=*/data_offset);
    const auto bad_page =
        static_cast<int64_t>((flipped - data_offset) / 256);

    StoreConfig config = FileConfig(path);
    config.create = false;
    std::unique_ptr<BackingStore> store;
    ASSERT_TRUE(MakeBackingStore(config, 8, &store).ok());
    std::vector<uint8_t> out(256);
    const serving::Status s = store->ReadPage(bad_page, out);
    EXPECT_EQ(s.code, serving::StatusCode::kInternal);
    EXPECT_NE(s.message.find("checksum"), std::string::npos)
        << s.ToString();
    // Untouched pages still verify.
    const int64_t good_page = (bad_page + 1) % 8;
    ASSERT_TRUE(store->ReadPage(good_page, out).ok());
    EXPECT_EQ(out, pages[static_cast<size_t>(good_page)]);
}

TEST(StoreChaosTest, TruncationIsShortReadOnFileAndOpenErrorOnMmap)
{
    const std::string path = TempPath("truncated.store");
    std::vector<std::vector<uint8_t>> pages;
    SeedStoreFile(path, &pages);
    fault::TruncateFile(path, 0.5);

    StoreConfig config = FileConfig(path);
    config.create = false;

    // pread backend: the open succeeds (header intact) but reading a
    // page past the cut is a short read, typed kInternal.
    std::unique_ptr<BackingStore> store;
    ASSERT_TRUE(MakeBackingStore(config, 8, &store).ok());
    std::vector<uint8_t> out(256);
    EXPECT_EQ(store->ReadPage(7, out).code,
              serving::StatusCode::kInternal);

    // mmap backend: the whole-file size check fails at open.
    config.backend = StoreBackend::kMmap;
    std::unique_ptr<BackingStore> mapped;
    EXPECT_EQ(MakeBackingStore(config, 8, &mapped).code,
              serving::StatusCode::kInternal);
}

TEST(StoreChaosTest, FaultedRunReplaysBitForBitFromSeed)
{
    // A seeded rate plan over a fixed op sequence must produce the same
    // status-code vector on every replay: failing chaos cases are regular
    // ctest cases, not coin flips.
    auto run = [](FaultPlan* plan) {
        const std::string path = TempPath("replay.store");
        std::unique_ptr<PageCache> cache;
        ThrowIfError(MakePageCache(FileConfig(path, 256, 2), 8, &cache));
        plan->ResetCounters();
        ScopedFaultInjection scope(plan);
        std::vector<int> codes;
        std::vector<uint8_t> page(256, 0x3C);
        for (int i = 0; i < 40; ++i) {
            const int64_t p = i % 8;
            const serving::Status s = i % 2 == 0
                                          ? cache->WritePage(p, page)
                                          : cache->ReadPage(p, page);
            codes.push_back(static_cast<int>(s.code));
        }
        codes.push_back(static_cast<int>(cache->FlushDirty().code));
        return codes;
    };

    FaultPlan plan(205);
    plan.ArmRate(FaultSite::kIoRead, 0.25);
    plan.ArmRate(FaultSite::kIoWrite, 0.25);
    const std::vector<int> first = run(&plan);
    const std::vector<int> second = run(&plan);
    EXPECT_EQ(first, second) << "IO faults did not replay from their seed";
    EXPECT_GE(plan.fires(FaultSite::kIoRead) +
                  plan.fires(FaultSite::kIoWrite),
              1u);
}

TEST(StoreChaosTest, ServerMapsStoreErrorToTypedResponse)
{
    // A paged generator under the serving layer: an injected read fault
    // inside Generate surfaces as the StoreError's own status code on the
    // response — not a retry loop, not a crash.
    Rng rng(206);
    auto paged = std::make_shared<core::PagedScanTable>(
        Tensor::Randn({64, 8}, rng),
        FileConfig(TempPath("served.store"), 256, 2));

    serving::ServerConfig cfg;
    cfg.default_deadline_us = 0;
    cfg.flush_deadline_us = 50;
    cfg.nthreads = 1;
    cfg.max_retries = 3;  // must NOT be consumed by storage errors
    serving::Server server({paged}, cfg);

    FaultPlan plan(207);
    plan.ArmCountdown(FaultSite::kIoRead, /*first_hit=*/1);
    {
        ScopedFaultInjection scope(&plan);
        serving::Request r;
        r.indices = {5, 9};
        const serving::Response resp = server.SubmitAndWait(std::move(r));
        EXPECT_EQ(resp.status.code, serving::StatusCode::kInternal);
        EXPECT_EQ(resp.retries, 0)
            << "storage faults are not transient; retrying re-reads the "
               "same bad page";
    }
    EXPECT_EQ(plan.fires(FaultSite::kIoRead), 1u);

    // Fault cleared: the same request serves.
    serving::Request r;
    r.indices = {5, 9};
    EXPECT_TRUE(server.SubmitAndWait(std::move(r)).status.ok());
}

TEST(StoreChaosTest, ShutdownSyncFailureIsCountedNotFatal)
{
    Rng rng(208);
    auto paged = std::make_shared<core::PagedScanTable>(
        Tensor::Randn({32, 8}, rng),
        // Cache covers the whole table, so construction leaves dirty
        // frames for shutdown's storage sync to write back.
        FileConfig(TempPath("shutdown.store"), 256, 64));

    serving::ServerConfig cfg;
    cfg.default_deadline_us = 0;
    cfg.flush_deadline_us = 50;
    cfg.nthreads = 1;
    ASSERT_TRUE(cfg.sync_storage_on_shutdown);
    serving::Server server({paged}, cfg);

    serving::Request r;
    r.indices = {1, 2, 3};
    ASSERT_TRUE(server.SubmitAndWait(std::move(r)).status.ok());

    FaultPlan plan(209);
    plan.ArmRate(FaultSite::kIoWrite, 1.0);
    {
        ScopedFaultInjection scope(&plan);
        server.Shutdown();
    }
    EXPECT_GE(server.GetStats().storage_sync_failures, 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint/journal fault rows: what recovery does with damaged durable
// state. (The kill-based harness in crash_harness_test proves legal crash
// states recover; these rows prove ILLEGAL states are refused, typed.)
// ---------------------------------------------------------------------------

std::string
DurableDir(const std::string& name)
{
    const std::string dir = testing::TempDir() + "secemb_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

constexpr int64_t kOramRows = 16;
constexpr int64_t kOramDim = 4;
constexpr int64_t kOramPage = 128;

RawOramConfig
OramDurableConfig(const std::string& dir, int64_t eviction_period = 8)
{
    RawOramConfig rc;
    rc.eviction_period = eviction_period;
    rc.durability.dir = dir;
    rc.posmap.enable_recursion = false;
    return rc;
}

std::unique_ptr<PageCache>
OramPageCache(const std::string& dir, bool create)
{
    StoreConfig sc = FileConfig(dir + "/pages.bin", kOramPage, 4);
    sc.create = create;
    std::unique_ptr<PageCache> cache;
    ThrowIfError(MakePageCache(
        sc, RawOram::PagesNeeded(kOramRows, kOramDim, kOramPage), &cache));
    return cache;
}

/** Durable instance + `writes` seeded writes; returns the final table. */
std::vector<uint32_t>
SeedDurableOram(const std::string& dir, int writes,
                int64_t eviction_period)
{
    Rng rng(700);
    RawOram oram(kOramRows, kOramDim, OramPageCache(dir, true), rng,
                 OramDurableConfig(dir, eviction_period));
    std::vector<uint32_t> table(
        static_cast<size_t>(kOramRows * kOramDim), 0xd1u);
    ThrowIfError(oram.BulkLoad(table));
    Rng vals(701);
    for (int i = 0; i < writes; ++i) {
        const int64_t id = i % kOramRows;
        std::vector<uint32_t> v(static_cast<size_t>(kOramDim));
        for (auto& w : v) w = static_cast<uint32_t>(vals.Next());
        ThrowIfError(oram.Write(id, v));
        std::copy(v.begin(), v.end(), table.begin() + id * kOramDim);
    }
    return table;
}

serving::Status
RecoverOram(const std::string& dir, std::unique_ptr<RawOram>* out,
            int64_t eviction_period = 8)
{
    Rng rng(702);
    return RawOram::Recover(kOramRows, kOramDim, OramPageCache(dir, false),
                            rng, OramDurableConfig(dir, eviction_period),
                            out);
}

TEST(StoreChaosTest, TornCheckpointFailsClosedAtRecovery)
{
    const std::string dir = DurableDir("torn_ckpt");
    SeedDurableOram(dir, /*writes=*/4, /*eviction_period=*/8);
    // Flip one byte past the checkpoint magic: the modeled torn write.
    fault::CorruptFileBytes(dir + "/ckpt.bin", /*seed=*/210, /*flips=*/1,
                            /*skip_prefix=*/16);
    std::unique_ptr<RawOram> oram;
    EXPECT_EQ(RecoverOram(dir, &oram).code,
              serving::StatusCode::kInternal);
    std::filesystem::remove_all(dir);
}

TEST(StoreChaosTest, TruncatedJournalTailRecoversThePrefix)
{
    const std::string dir = DurableDir("journal_cut");
    // eviction_period far beyond the op count: no eviction page writes,
    // so cutting the journal tail models a pure append-crash (the one
    // damaged-tail state recovery may legally drop).
    std::vector<uint32_t> table =
        SeedDurableOram(dir, /*writes=*/5, /*eviction_period=*/1000);
    {
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(dir + "/journal.bin", ec);
        ASSERT_FALSE(ec);
        std::filesystem::resize_file(dir + "/journal.bin", size - 7, ec);
        ASSERT_FALSE(ec);
    }
    // Un-apply the torn final write (id = 4 % 16): the recovered table
    // must equal the state after the 4 intact records.
    {
        Rng vals(701);
        std::vector<uint32_t> v(static_cast<size_t>(kOramDim));
        for (int i = 0; i < 4; ++i) {
            for (auto& w : v) w = static_cast<uint32_t>(vals.Next());
        }
        std::fill(table.begin() + 4 * kOramDim,
                  table.begin() + 5 * kOramDim, 0xd1u);
    }

    auto read_all = [&](bool expect_tail_drop) {
        std::unique_ptr<RawOram> oram;
        ThrowIfError(RecoverOram(dir, &oram, /*eviction_period=*/1000));
        if (expect_tail_drop) {
            EXPECT_TRUE(oram->recovery_stats().dropped_tail);
            EXPECT_EQ(oram->recovery_stats().replayed_accesses, 4);
        }
        std::vector<uint32_t> rows;
        std::vector<uint32_t> row(static_cast<size_t>(kOramDim));
        for (int64_t r = 0; r < kOramRows; ++r) {
            ThrowIfError(oram->Read(r, row));
            rows.insert(rows.end(), row.begin(), row.end());
        }
        return rows;
    };
    const std::vector<uint32_t> first = read_all(true);
    EXPECT_EQ(first, table);
    // A second restart is clean: the first recovery truncated the torn
    // tail and re-journaled its own (read) accesses, and the content
    // still round-trips bit-for-bit.
    EXPECT_EQ(read_all(false), first);
    std::filesystem::remove_all(dir);
}

TEST(StoreChaosTest, DuplicateSequenceNumberFailsClosed)
{
    const std::string dir = DurableDir("dup_seq");
    SeedDurableOram(dir, /*writes=*/3, /*eviction_period=*/1000);

    // Overwrite record 3's bytes with record 2's (same size, valid CRC):
    // a duplicated sequence number mid-journal. Replaying it would apply
    // a delta twice; recovery must refuse, not guess.
    const int64_t rec = JournalRecordBytes(
        JournalAccessPayloadBytes(kOramDim));
    const int64_t hdr = JournalFileHeaderBytes();
    std::fstream f(dir + "/journal.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    std::vector<char> second(static_cast<size_t>(rec));
    f.seekg(hdr + rec);
    f.read(second.data(), rec);
    f.seekp(hdr + 2 * rec);
    f.write(second.data(), rec);
    f.close();

    std::unique_ptr<RawOram> oram;
    const serving::Status s = RecoverOram(dir, &oram, 1000);
    EXPECT_EQ(s.code, serving::StatusCode::kInternal);
    std::filesystem::remove_all(dir);
}

TEST(StoreChaosTest, CheckpointWriteFaultIsTypedAndNonFatal)
{
    const std::string dir = DurableDir("ckpt_fault");
    Rng rng(703);
    RawOram oram(kOramRows, kOramDim, OramPageCache(dir, true), rng,
                 OramDurableConfig(dir));
    std::vector<uint32_t> table(
        static_cast<size_t>(kOramRows * kOramDim), 0x7u);
    ThrowIfError(oram.BulkLoad(table));

    FaultPlan plan(211);
    plan.ArmRate(FaultSite::kIoWrite, 1.0);
    {
        ScopedFaultInjection scope(&plan);
        EXPECT_EQ(oram.Checkpoint().code,
                  serving::StatusCode::kResourceExhausted);
    }
    // The failed attempt went to ckpt.bin.tmp; the live checkpoint is
    // intact and the instance still serves and checkpoints.
    std::vector<uint32_t> row(static_cast<size_t>(kOramDim));
    EXPECT_TRUE(oram.Read(3, row).ok());
    EXPECT_TRUE(oram.Checkpoint().ok());
    std::unique_ptr<RawOram> rec;
    EXPECT_TRUE(RecoverOram(dir, &rec).ok());
    std::filesystem::remove_all(dir);
}

TEST(StoreChaosTest, ServerRunsPeriodicStorageMaintenance)
{
    Rng rng(212);
    auto paged = std::make_shared<core::PagedScanTable>(
        Tensor::Randn({32, 8}, rng),
        FileConfig(TempPath("periodic.store"), 256, 64));

    serving::ServerConfig cfg;
    cfg.default_deadline_us = 0;
    cfg.flush_deadline_us = 50;
    cfg.nthreads = 1;
    cfg.storage_sync_interval_us = 500;
    cfg.storage_checkpoint_interval_us = 500;
    serving::Server server({paged}, cfg);

    serving::Request r;
    r.indices = {1, 2, 3};
    ASSERT_TRUE(server.SubmitAndWait(std::move(r)).status.ok());
    // The batcher's idle timeout (2 ms) outlives both intervals: the
    // next few wakeups must run sync and checkpoint maintenance.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while ((server.GetStats().storage_syncs == 0 ||
            server.GetStats().storage_checkpoints == 0) &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const serving::ServerStats stats = server.GetStats();
    EXPECT_GE(stats.storage_syncs, 1u);
    EXPECT_GE(stats.storage_checkpoints, 1u);
    EXPECT_EQ(stats.storage_sync_failures, 0u);

    // Still serving after maintenance cycles.
    serving::Request again;
    again.indices = {4, 5};
    EXPECT_TRUE(server.SubmitAndWait(std::move(again)).status.ok());
    server.Shutdown();
}

TEST(StoreChaosTest, PeriodicSyncFailureIsCountedAndServingContinues)
{
    Rng rng(213);
    auto paged = std::make_shared<core::PagedScanTable>(
        Tensor::Randn({32, 8}, rng),
        // Whole-table cache: construction leaves dirty frames for the
        // periodic sync to hit the injected write fault with.
        FileConfig(TempPath("periodic_fail.store"), 256, 64));

    serving::ServerConfig cfg;
    cfg.default_deadline_us = 0;
    cfg.flush_deadline_us = 50;
    cfg.nthreads = 1;
    cfg.storage_sync_interval_us = 500;
    cfg.sync_storage_on_shutdown = false;
    serving::Server server({paged}, cfg);

    FaultPlan plan(214);
    plan.ArmRate(FaultSite::kIoWrite, 1.0);
    {
        ScopedFaultInjection scope(&plan);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (server.GetStats().storage_sync_failures == 0 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    EXPECT_GE(server.GetStats().storage_sync_failures, 1u);

    // Maintenance failure never poisons the serving path.
    serving::Request r;
    r.indices = {7, 8};
    EXPECT_TRUE(server.SubmitAndWait(std::move(r)).status.ok());
    server.Shutdown();
}

}  // namespace
}  // namespace secemb::store
