/**
 * @file
 * Telemetry subsystem tests: histogram percentile accuracy against sorted
 * references, counter/gauge/registry behaviour, span recording and
 * chrome://tracing export, the disabled-telemetry no-op guarantees, and —
 * most importantly — proof that instrumentation preserves obliviousness:
 * the memory traces of the oblivious scan and DHE forward are bit-identical
 * with telemetry ON vs OFF (and across different secret inputs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util/json.h"
#include "core/dhe_generator.h"
#include "core/table_generators.h"
#include "sidechannel/oblivious_check.h"
#include "sidechannel/trace.h"
#include "telemetry/telemetry.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::Registry;

/** Exact percentile from raw samples: rank = ceil(p/100 * n). */
double
ReferencePercentile(std::vector<uint64_t> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    const size_t rank = static_cast<size_t>(std::max(
        1.0, std::ceil(p / 100.0 * static_cast<double>(samples.size()))));
    return static_cast<double>(samples[std::min(rank, samples.size()) - 1]);
}

void
ExpectPercentileClose(const Histogram& hist,
                      const std::vector<uint64_t>& samples, double p,
                      double rel_tol)
{
    const double ref = ReferencePercentile(samples, p);
    const double got = hist.Percentile(p);
    EXPECT_NEAR(got, ref, std::max(1.0, ref * rel_tol))
        << "p" << p << ": histogram=" << got << " reference=" << ref;
}

// --- histogram bucketing ---------------------------------------------------

TEST(HistogramTest, BucketIndexExactBelowSubBucketCount)
{
    for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
        EXPECT_EQ(Histogram::BucketIndex(v), static_cast<size_t>(v));
        uint64_t lo = 0, hi = 0;
        Histogram::BucketRange(static_cast<size_t>(v), &lo, &hi);
        EXPECT_EQ(lo, v);
        EXPECT_EQ(hi, v);
    }
}

TEST(HistogramTest, BucketIndexMonotonicAndRangeConsistent)
{
    size_t prev = 0;
    const std::vector<uint64_t> probes{
        1, 15, 16, 17, 31, 32, 1000, 123456, 1ull << 40, UINT64_MAX};
    for (const uint64_t v : probes) {
        const size_t idx = Histogram::BucketIndex(v);
        EXPECT_GE(idx, prev) << "v=" << v;
        EXPECT_LT(idx, Histogram::kNumBuckets);
        prev = idx;
        uint64_t lo = 0, hi = 0;
        Histogram::BucketRange(idx, &lo, &hi);
        EXPECT_LE(lo, v);
        EXPECT_GE(hi, v);
        // Relative bucket width bounds the percentile error: 2^-4.
        if (lo >= Histogram::kSubBuckets) {
            EXPECT_LE(static_cast<double>(hi - lo),
                      static_cast<double>(lo) / 16.0 + 1.0)
                << "bucket " << idx;
        }
    }
}

// --- percentiles vs sorted reference ---------------------------------------

TEST(HistogramTest, PercentilesOnUniformSamples)
{
    Rng rng(41);
    Histogram hist;
    std::vector<uint64_t> samples;
    samples.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = 1 + rng.NextBounded(1000000);
        samples.push_back(v);
        hist.Record(v);
    }
    EXPECT_EQ(hist.Count(), samples.size());
    for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
        ExpectPercentileClose(hist, samples, p, 0.10);
    }
}

TEST(HistogramTest, PercentilesOnHeavyTailedSamples)
{
    // Pareto-like tail: v = 100 / u^2 spans [100, ~1e10); the log-linear
    // buckets must stay within relative tolerance across the whole range.
    Rng rng(42);
    Histogram hist;
    std::vector<uint64_t> samples;
    samples.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
        const double u = std::max(1e-4, rng.NextDouble());
        const uint64_t v = static_cast<uint64_t>(100.0 / (u * u));
        samples.push_back(v);
        hist.Record(v);
    }
    for (const double p : {50.0, 90.0, 95.0, 99.0}) {
        ExpectPercentileClose(hist, samples, p, 0.10);
    }
}

TEST(HistogramTest, EmptyHistogram)
{
    // An empty histogram has no sample to report: percentiles are NaN,
    // not 0 — a 0 would read as "the p99 latency was 0ns", which is a
    // real (excellent) measurement, not an absent one. JsonWriter
    // serialises NaN as null, so empty series stay visibly empty in
    // bench reports too.
    Histogram hist;
    EXPECT_EQ(hist.Count(), 0u);
    EXPECT_EQ(hist.Sum(), 0u);
    EXPECT_TRUE(std::isnan(hist.Percentile(50.0)));
    EXPECT_TRUE(std::isnan(hist.Percentile(0.0)));
    EXPECT_TRUE(std::isnan(hist.Percentile(100.0)));
    const Histogram::Snapshot snap = hist.TakeSnapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 0u);
    EXPECT_TRUE(std::isnan(snap.mean));
    EXPECT_TRUE(std::isnan(snap.p50));
    EXPECT_TRUE(std::isnan(snap.p95));
    EXPECT_TRUE(std::isnan(snap.p99));
}

TEST(HistogramTest, SingleSample)
{
    Histogram hist;
    hist.Record(777);
    EXPECT_EQ(hist.Count(), 1u);
    EXPECT_EQ(hist.Sum(), 777u);
    // One sample: every percentile collapses onto it (the min/max clamp
    // makes this exact even though 777 lands mid-bucket).
    for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
        EXPECT_EQ(hist.Percentile(p), 777.0) << "p" << p;
    }
    const Histogram::Snapshot snap = hist.TakeSnapshot();
    EXPECT_EQ(snap.min, 777u);
    EXPECT_EQ(snap.max, 777u);
    EXPECT_EQ(snap.mean, 777.0);
}

TEST(HistogramTest, PercentileEdgesReportMinAndMax)
{
    Histogram hist;
    for (uint64_t v : {10ull, 20ull, 30ull, 40ull, 1000ull}) {
        hist.Record(v);
    }
    EXPECT_EQ(hist.Percentile(0.0), 10.0);
    EXPECT_EQ(hist.Percentile(-5.0), 10.0);
    EXPECT_EQ(hist.Percentile(100.0), 1000.0);
    EXPECT_EQ(hist.Percentile(150.0), 1000.0);
}

TEST(HistogramTest, ResetClears)
{
    Histogram hist;
    hist.Record(5);
    hist.Record(50);
    hist.Reset();
    EXPECT_EQ(hist.Count(), 0u);
    EXPECT_TRUE(std::isnan(hist.Percentile(50.0)));
    hist.Record(9);
    EXPECT_EQ(hist.Percentile(50.0), 9.0);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing)
{
    Histogram hist;
    constexpr int kThreads = 4, kPerThread = 20000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&hist, t] {
            for (int i = 0; i < kPerThread; ++i) {
                hist.Record(static_cast<uint64_t>(t * kPerThread + i));
            }
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(hist.Count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, SnapshotHammerWhileRecording)
{
    // One thread takes registry snapshots continuously while 8 writers
    // record into the same histogram/counter: every intermediate snapshot
    // must be internally sane (no torn counts), and once the writers
    // quiesce the final snapshot is exact. Run under TSan via
    // `ctest -L concurrency`.
    auto& reg = Registry::Instance();
    Histogram& hist = reg.GetHistogram("test.hammer.hist");
    Counter& ctr = reg.GetCounter("test.hammer.counter");
    hist.Reset();
    ctr.Reset();

    constexpr int kThreads = 8, kPerThread = 5000;
    std::atomic<bool> stop{false};
    std::thread snapshotter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const auto snap = reg.TakeSnapshot();
            for (const auto& [name, h] : snap.histograms) {
                if (name != "test.hammer.hist") continue;
                ASSERT_LE(h.count,
                          static_cast<uint64_t>(kThreads) * kPerThread);
                if (h.count > 0) {
                    ASSERT_FALSE(std::isnan(h.p50));
                    ASSERT_GE(h.max, h.min);
                }
            }
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                hist.Record(static_cast<uint64_t>(i % 1000) + 1);
                ctr.Add(1);
            }
        });
    }
    for (auto& w : writers) w.join();
    stop.store(true, std::memory_order_relaxed);
    snapshotter.join();

    EXPECT_EQ(hist.Count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(ctr.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- counters / gauges / registry ------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics)
{
    Counter c;
    EXPECT_EQ(c.Value(), 0u);
    c.Add();
    c.Add(41);
    EXPECT_EQ(c.Value(), 42u);
    c.Reset();
    EXPECT_EQ(c.Value(), 0u);

    Gauge g;
    g.Set(-7);
    EXPECT_EQ(g.Value(), -7);
    g.Add(10);
    EXPECT_EQ(g.Value(), 3);
}

TEST(MetricsTest, RegistryReturnsStableReferences)
{
    auto& reg = Registry::Instance();
    Counter& a = reg.GetCounter("test.registry.counter");
    Counter& b = reg.GetCounter("test.registry.counter");
    EXPECT_EQ(&a, &b);
    a.Add(3);
    EXPECT_EQ(b.Value(), 3u);

    Histogram& h = reg.GetHistogram("test.registry.hist");
    h.Record(11);

    const auto snap = reg.TakeSnapshot();
    bool found_counter = false, found_hist = false;
    for (const auto& [name, value] : snap.counters) {
        if (name == "test.registry.counter") {
            found_counter = true;
            EXPECT_EQ(value, 3u);
        }
    }
    for (const auto& [name, hs] : snap.histograms) {
        if (name == "test.registry.hist") {
            found_hist = true;
            EXPECT_EQ(hs.count, 1u);
        }
    }
    EXPECT_TRUE(found_counter);
    EXPECT_TRUE(found_hist);

    reg.ResetAll();
    EXPECT_EQ(b.Value(), 0u);
    EXPECT_EQ(h.Count(), 0u);
}

// --- tracer ----------------------------------------------------------------

#if SECEMB_TELEMETRY_ENABLED

TEST(TracerTest, SpansAreRecordedWithNamesAndNesting)
{
    telemetry::SetEnabled(true);
    telemetry::ClearSpans();
    {
        TELEMETRY_SPAN("outer");
        {
            TELEMETRY_SPAN("inner");
        }
    }
    const std::vector<telemetry::SpanEvent> spans =
        telemetry::CollectSpans();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by start time: outer opened first.
    EXPECT_STREQ(spans[0].name, "outer");
    EXPECT_STREQ(spans[1].name, "inner");
    EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
    // The inner span closes before the outer one.
    EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
              spans[0].start_ns + spans[0].dur_ns);
    EXPECT_EQ(spans[0].tid, spans[1].tid);

    telemetry::ClearSpans();
    EXPECT_TRUE(telemetry::CollectSpans().empty());
}

TEST(TracerTest, SpansFromExitedThreadsAreRetained)
{
    telemetry::SetEnabled(true);
    telemetry::ClearSpans();
    uint32_t main_tid = 0;
    {
        TELEMETRY_SPAN("main_thread");
    }
    {
        const auto spans = telemetry::CollectSpans();
        ASSERT_EQ(spans.size(), 1u);
        main_tid = spans[0].tid;
    }
    std::thread([] { TELEMETRY_SPAN("worker_thread"); }).join();
    const auto spans = telemetry::CollectSpans();
    ASSERT_EQ(spans.size(), 2u);
    bool saw_worker = false;
    for (const auto& s : spans) {
        if (std::string_view(s.name) == "worker_thread") {
            saw_worker = true;
            EXPECT_NE(s.tid, main_tid);
        }
    }
    EXPECT_TRUE(saw_worker);
    telemetry::ClearSpans();
}

TEST(TracerTest, ChromeTraceExportIsValidJson)
{
    telemetry::SetEnabled(true);
    telemetry::ClearSpans();
    {
        TELEMETRY_SPAN("export_me");
    }
    const std::string path =
        ::testing::TempDir() + "/telemetry_trace_test.json";
    ASSERT_TRUE(telemetry::WriteChromeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();

    bench::JsonValue doc;
    std::string error;
    ASSERT_TRUE(bench::JsonParse(buf.str(), &doc, &error)) << error;
    const bench::JsonValue* events = doc.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->IsArray());
    ASSERT_EQ(events->array_v.size(), 1u);
    const bench::JsonValue& ev = events->array_v[0];
    const bench::JsonValue* name = ev.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->str_v, "export_me");
    const bench::JsonValue* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str_v, "X");
    for (const char* key : {"pid", "tid", "ts", "dur"}) {
        const bench::JsonValue* v = ev.Find(key);
        ASSERT_NE(v, nullptr) << key;
        EXPECT_TRUE(v->IsNumber()) << key;
        EXPECT_GE(v->num_v, 0.0) << key;
    }
    telemetry::ClearSpans();
    std::remove(path.c_str());
}

// --- disabled telemetry is a no-op -----------------------------------------

TEST(DisabledTelemetryTest, RuntimeDisableRecordsNothing)
{
    auto& reg = Registry::Instance();
    telemetry::ClearSpans();
    reg.ResetAll();

    telemetry::SetEnabled(false);
    {
        TELEMETRY_SPAN("should_not_appear");
        TELEMETRY_COUNT("test.disabled.counter", 5);
        TELEMETRY_HIST("test.disabled.hist", 123);
        TELEMETRY_SCOPED_LATENCY("test.disabled.latency");
    }
    telemetry::SetEnabled(true);

    EXPECT_TRUE(telemetry::CollectSpans().empty());
    EXPECT_EQ(reg.GetCounter("test.disabled.counter").Value(), 0u);
    EXPECT_EQ(reg.GetHistogram("test.disabled.hist").Count(), 0u);
    EXPECT_EQ(reg.GetHistogram("test.disabled.latency").Count(), 0u);

    // Re-enabled: the same sites record again.
    {
        TELEMETRY_SPAN("appears");
        TELEMETRY_COUNT("test.disabled.counter", 5);
    }
    EXPECT_EQ(telemetry::CollectSpans().size(), 1u);
    EXPECT_EQ(reg.GetCounter("test.disabled.counter").Value(), 5u);
    telemetry::ClearSpans();
    reg.ResetAll();
}

#else  // !SECEMB_TELEMETRY_ENABLED

// Compile-out proof: with SECEMB_TELEMETRY=OFF every instrumentation macro
// must literally expand to ((void)0) — zero code, zero data, zero deps.
#define SECEMB_TELEMETRY_TEST_STR2(x) #x
#define SECEMB_TELEMETRY_TEST_STR(x) SECEMB_TELEMETRY_TEST_STR2(x)
static_assert(std::string_view(SECEMB_TELEMETRY_TEST_STR(
                  TELEMETRY_SPAN("gemm"))) == "((void)0)",
              "TELEMETRY_SPAN must compile out to a no-op");
static_assert(std::string_view(SECEMB_TELEMETRY_TEST_STR(
                  TELEMETRY_COUNT("c", 1))) == "((void)0)",
              "TELEMETRY_COUNT must compile out to a no-op");
static_assert(std::string_view(SECEMB_TELEMETRY_TEST_STR(
                  TELEMETRY_HIST("h", 1))) == "((void)0)",
              "TELEMETRY_HIST must compile out to a no-op");
static_assert(std::string_view(SECEMB_TELEMETRY_TEST_STR(
                  TELEMETRY_GAUGE_SET("g", 1))) == "((void)0)",
              "TELEMETRY_GAUGE_SET must compile out to a no-op");
static_assert(std::string_view(SECEMB_TELEMETRY_TEST_STR(
                  TELEMETRY_SCOPED_LATENCY("l"))) == "((void)0)",
              "TELEMETRY_SCOPED_LATENCY must compile out to a no-op");

TEST(DisabledTelemetryTest, MacrosAreNoOpsWhenCompiledOut)
{
    TELEMETRY_SPAN("never");
    TELEMETRY_COUNT("never", 1);
    SUCCEED();
}

#endif  // SECEMB_TELEMETRY_ENABLED

// --- obliviousness: instrumentation must not perturb memory traces ---------

/**
 * Run `fn` once with telemetry enabled and once disabled, recording the
 * generator's memory trace each time, and require the traces to be
 * bit-identical: instrumentation must never add, remove, or reorder a
 * data access.
 */
template <typename Fn>
void
ExpectTraceUnaffectedByTelemetry(core::EmbeddingGenerator& gen, Fn&& fn)
{
    sidechannel::TraceRecorder rec_on, rec_off;

    telemetry::SetEnabled(true);
    gen.set_recorder(&rec_on);
    fn();

    telemetry::SetEnabled(false);
    gen.set_recorder(&rec_off);
    fn();

    telemetry::SetEnabled(true);
    gen.set_recorder(nullptr);

    const sidechannel::ObliviousnessReport report =
        sidechannel::CompareTraces(rec_on.trace(), rec_off.trace());
    EXPECT_FALSE(rec_on.trace().empty());
    EXPECT_TRUE(report.identical) << report.detail;
}

TEST(ObliviousInstrumentationTest, LinearScanTraceIdenticalOnOffTelemetry)
{
    Rng rng(51);
    core::LinearScanTable gen(Tensor::Randn({64, 8}, rng));
    const std::vector<int64_t> ids{3, 9, 33, 63};
    Tensor out({4, 8});
    ExpectTraceUnaffectedByTelemetry(gen,
                                     [&] { gen.Generate(ids, out); });
}

TEST(ObliviousInstrumentationTest, LinearScanTraceIdenticalAcrossSecrets)
{
    // The scan must also be oblivious in the first place: two different
    // secret index sets yield identical traces (telemetry enabled).
    Rng rng(52);
    core::LinearScanTable gen(Tensor::Randn({64, 8}, rng));
    telemetry::SetEnabled(true);
    Tensor out({4, 8});

    sidechannel::TraceRecorder rec_a, rec_b;
    gen.set_recorder(&rec_a);
    const std::vector<int64_t> ids_a{0, 1, 2, 3};
    gen.Generate(ids_a, out);
    gen.set_recorder(&rec_b);
    const std::vector<int64_t> ids_b{63, 47, 5, 21};
    gen.Generate(ids_b, out);
    gen.set_recorder(nullptr);

    const auto report =
        sidechannel::CompareTraces(rec_a.trace(), rec_b.trace());
    EXPECT_TRUE(report.identical) << report.detail;
}

TEST(ObliviousInstrumentationTest,
     ParallelScanTraceIdenticalOnOffTelemetry)
{
    // Multi-threaded batch scan: per-slot trace buffers are merged in
    // slot order after the region, so the recorded trace must match the
    // serial one bit-for-bit — with telemetry on or off.
    Rng rng(55);
    core::LinearScanTable gen(Tensor::Randn({128, 8}, rng));
    gen.set_nthreads(4);
    const std::vector<int64_t> ids{5, 90, 17, 64, 3, 127, 44, 71};
    Tensor out({8, 8});
    ExpectTraceUnaffectedByTelemetry(gen,
                                     [&] { gen.Generate(ids, out); });
}

TEST(ObliviousInstrumentationTest,
     ParallelScanTraceIdenticalAcrossSecretsAndSchedules)
{
    // Input-independence under parallelism: two distinct secret index
    // sets, generated with different thread counts, must still produce
    // bit-identical traces (and match the single-threaded trace).
    Rng rng(56);
    core::LinearScanTable gen(Tensor::Randn({128, 8}, rng));
    telemetry::SetEnabled(true);
    Tensor out({8, 8});

    sidechannel::TraceRecorder rec_serial, rec_a, rec_b;
    const std::vector<int64_t> ids_a{0, 1, 2, 3, 4, 5, 6, 7};
    const std::vector<int64_t> ids_b{127, 64, 3, 99, 21, 58, 110, 14};

    gen.set_nthreads(1);
    gen.set_recorder(&rec_serial);
    gen.Generate(ids_a, out);

    gen.set_nthreads(4);
    gen.set_recorder(&rec_a);
    gen.Generate(ids_a, out);
    gen.set_recorder(&rec_b);
    gen.Generate(ids_b, out);
    gen.set_recorder(nullptr);

    const auto across_secrets =
        sidechannel::CompareTraces(rec_a.trace(), rec_b.trace());
    EXPECT_TRUE(across_secrets.identical) << across_secrets.detail;
    const auto across_schedules =
        sidechannel::CompareTraces(rec_serial.trace(), rec_a.trace());
    EXPECT_TRUE(across_schedules.identical) << across_schedules.detail;
}

TEST(ObliviousInstrumentationTest,
     ParallelPooledScanTraceIdenticalAcrossSecrets)
{
    Rng rng(57);
    core::LinearScanTable gen(Tensor::Randn({64, 8}, rng));
    gen.set_nthreads(4);
    telemetry::SetEnabled(true);
    Tensor out({3, 8});
    const std::vector<int64_t> offsets{0, 2, 5, 8};

    sidechannel::TraceRecorder rec_a, rec_b;
    gen.set_recorder(&rec_a);
    const std::vector<int64_t> ids_a{0, 1, 2, 3, 4, 5, 6, 7};
    gen.GeneratePooled(ids_a, offsets, out);
    gen.set_recorder(&rec_b);
    const std::vector<int64_t> ids_b{63, 47, 5, 21, 9, 33, 60, 2};
    gen.GeneratePooled(ids_b, offsets, out);
    gen.set_recorder(nullptr);

    const auto report =
        sidechannel::CompareTraces(rec_a.trace(), rec_b.trace());
    EXPECT_TRUE(report.identical) << report.detail;
}

TEST(ObliviousInstrumentationTest, DheForwardTraceIdenticalOnOffTelemetry)
{
    Rng rng(53);
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    core::DheGenerator gen(dhe, /*num_rows=*/100);
    const std::vector<int64_t> ids{7, 19, 80};
    Tensor out({3, 4});
    ExpectTraceUnaffectedByTelemetry(gen,
                                     [&] { gen.Generate(ids, out); });
}

TEST(ObliviousInstrumentationTest, DheForwardTraceIdenticalAcrossSecrets)
{
    Rng rng(54);
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    core::DheGenerator gen(dhe, 100);
    telemetry::SetEnabled(true);
    Tensor out({3, 4});

    sidechannel::TraceRecorder rec_a, rec_b;
    gen.set_recorder(&rec_a);
    const std::vector<int64_t> ids_a{0, 1, 2};
    gen.Generate(ids_a, out);
    gen.set_recorder(&rec_b);
    const std::vector<int64_t> ids_b{99, 55, 13};
    gen.Generate(ids_b, out);
    gen.set_recorder(nullptr);

    const auto report =
        sidechannel::CompareTraces(rec_a.trace(), rec_b.trace());
    EXPECT_TRUE(report.identical) << report.detail;
}

}  // namespace
}  // namespace secemb
