/**
 * @file
 * The standing certification gate (`ctest -L leakage`): runs the
 * differential trace engine across the full fuzz corpus of every secure
 * generator — seven kinds, at least eight fuzzed configurations each — and
 * the statistical fixed-vs-random check on the randomized ones.
 *
 * A failure here means some generator's memory trace depends on the
 * secret indices: a side-channel regression, never a flaky test (every
 * seed in the corpus is fixed).
 */

#include <gtest/gtest.h>

#include "verify/harness.h"

namespace secemb::verify {
namespace {

constexpr uint64_t kGateSeed = 2024;

class CertifySubjectTest : public ::testing::TestWithParam<Subject>
{
};

TEST_P(CertifySubjectTest, DifferentialTracesIdenticalAcrossSecrets)
{
    const auto corpus = FuzzCorpus(GetParam(), kGateSeed);
    ASSERT_GE(corpus.size(), 8u);
    for (const VerifyConfig& config : corpus) {
        const DifferentialResult r = RunDifferential(config);
        EXPECT_TRUE(r.passed) << r.detail;
        EXPECT_EQ(r.sets_run, std::max(2, config.secret_sets));
        EXPECT_GT(r.trace_len, 0u) << config.Name()
                                   << ": empty trace — instrumentation "
                                      "hole, nothing was certified";
    }
}

TEST_P(CertifySubjectTest, StatisticalHistogramsIndistinguishable)
{
    // The statistical layer certifies the randomized generators, whose
    // obliviousness rests on their own randomness rather than on trace
    // identity; deterministic subjects pass trivially (identical
    // histograms) and are covered to pin that very property.
    for (const VerifyConfig& config : FuzzCorpus(GetParam(), kGateSeed)) {
        if (SubjectIsDeterministic(GetParam()) &&
            config.seed % 3 != 0) {
            continue;  // spot-check the trivial cases, sweep the ORAMs
        }
        const StatisticalResult r = RunStatistical(config);
        EXPECT_TRUE(r.passed) << r.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSecure, CertifySubjectTest,
    ::testing::ValuesIn(AllSecureSubjects()),
    [](const auto& info) { return std::string(SubjectName(info.param)); });

TEST(CertifySweepTest, FullSweepCertifiesEverything)
{
    const SweepResult sweep = RunSweep(AllSecureSubjects(), kGateSeed + 1,
                                       /*secret_sets=*/3);
    EXPECT_TRUE(sweep.all_passed);
    // Seven subjects x >= 8 configs each.
    EXPECT_GE(sweep.differential.size(), 56u);
    // All three randomized subjects got the statistical treatment.
    EXPECT_GE(sweep.statistical.size(), 24u);
    for (const DifferentialResult& r : sweep.differential) {
        EXPECT_TRUE(r.passed) << r.detail;
    }
    for (const StatisticalResult& r : sweep.statistical) {
        EXPECT_TRUE(r.passed) << r.detail;
    }
}

}  // namespace
}  // namespace secemb::verify
