/**
 * @file
 * bench_smoke CTest driver: runs micro_primitives with tiny parameters
 * and --json, then validates the emitted secemb-bench-v1 document (keys
 * present, non-negative latencies). Guards the machine-readable contract
 * the BENCH_*.json aggregation harness depends on.
 *
 * Usage: bench_smoke_check <micro_primitives binary> <output json path>
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util/json.h"

namespace {

int failures = 0;

void
Check(bool ok, const std::string& what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        ++failures;
    }
}

/** Fetch a required non-negative number member of `obj`. */
void
CheckNonNegativeNumber(const secemb::bench::JsonValue& obj,
                       const std::string& key, const std::string& where)
{
    const auto* v = obj.Find(key);
    Check(v != nullptr && v->IsNumber(),
          where + " has number member '" + key + "'");
    if (v != nullptr && v->IsNumber()) {
        Check(v->num_v >= 0.0, where + "." + key + " is non-negative");
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc != 3) {
        std::fprintf(
            stderr,
            "usage: bench_smoke_check <micro_primitives> <out.json>\n");
        return 2;
    }
    const std::string binary = argv[1];
    const std::string out_path = argv[2];

    // Tiny parameters: two cheap benchmarks, minimal measuring time.
    const std::string cmd =
        "\"" + binary +
        "\" --benchmark_filter='BM_SelectInline|BM_ObliviousArgmax' "
        "--benchmark_min_time=0.001 --json \"" +
        out_path + "\"";
    const int rc = std::system(cmd.c_str());
    Check(rc == 0, "micro_primitives exits 0 (got " +
                       std::to_string(rc) + ")");

    std::ifstream in(out_path);
    Check(in.good(), "JSON output file exists: " + out_path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    Check(!text.empty(), "JSON output is non-empty");

    secemb::bench::JsonValue doc;
    std::string error;
    const bool parsed = secemb::bench::JsonParse(text, &doc, &error);
    Check(parsed, "JSON parses (" + error + ")");
    if (parsed) {
        const auto* schema = doc.Find("schema");
        Check(schema != nullptr && schema->IsString() &&
                  schema->str_v == "secemb-bench-v1",
              "schema == secemb-bench-v1");
        const auto* bench = doc.Find("bench");
        Check(bench != nullptr && bench->IsString() &&
                  !bench->str_v.empty(),
              "bench name present");
        const auto* results = doc.Find("results");
        Check(results != nullptr && results->IsArray() &&
                  !results->array_v.empty(),
              "results is a non-empty array");
        if (results != nullptr && results->IsArray()) {
            for (size_t i = 0; i < results->array_v.size(); ++i) {
                const auto& r = results->array_v[i];
                const std::string where =
                    "results[" + std::to_string(i) + "]";
                const auto* name = r.Find("name");
                Check(name != nullptr && name->IsString() &&
                          !name->str_v.empty(),
                      where + " has a name");
                const auto* params = r.Find("params");
                Check(params != nullptr && params->IsObject(),
                      where + " has params object");
                const auto* counters = r.Find("counters");
                Check(counters != nullptr && counters->IsObject(),
                      where + " has counters object");
                const auto* lat = r.Find("latency_ns");
                Check(lat != nullptr && lat->IsObject(),
                      where + " has latency_ns object");
                if (lat != nullptr && lat->IsObject()) {
                    for (const char* key :
                         {"count", "mean", "min", "max", "p50", "p95",
                          "p99"}) {
                        CheckNonNegativeNumber(*lat, key,
                                               where + ".latency_ns");
                    }
                }
            }
        }
    }

    if (failures != 0) {
        std::fprintf(stderr, "bench_smoke: %d check(s) failed\n",
                     failures);
        return 1;
    }
    std::printf("bench_smoke: JSON schema valid (%zu bytes)\n",
                text.size());
    return 0;
}
