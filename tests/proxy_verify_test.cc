/**
 * @file
 * Obliviousness certification of the concurrent ORAM proxy
 * (`ctest -L leakage`): canonical trace shape must be identical across
 * arbitrary queue arrival orders (seeded interleaving fuzz) and across
 * secret sets, the proxied schedule must be shape-identical to the serial
 * Path ORAM controller's, and the engine must catch the classic
 * coalescing bug (deduplicating without dummy padding) as a leak.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/table_generators.h"
#include "oram/proxy.h"
#include "verify/harness.h"

namespace secemb::verify {
namespace {

VerifyConfig
ProxyConfigFor(int batch, int nthreads, uint64_t seed)
{
    VerifyConfig c;
    c.subject = Subject::kProxyOram;
    c.rows = 32;
    c.dim = 8;
    c.batch = batch;
    c.nthreads = nthreads;
    c.secret_sets = 2;
    c.seed = seed;
    return c;
}

TEST(ProxyVerifyTest, SubjectIsRegisteredAndRandomized)
{
    Subject s;
    ASSERT_TRUE(ParseSubject("proxy_oram", &s));
    EXPECT_EQ(s, Subject::kProxyOram);
    EXPECT_FALSE(SubjectIsDeterministic(Subject::kProxyOram));
    const auto secure = AllSecureSubjects();
    EXPECT_NE(std::find(secure.begin(), secure.end(),
                        Subject::kProxyOram),
              secure.end());
}

TEST(ProxyVerifyTest, ShapeIdenticalAcrossInterleavings)
{
    // 8 arrival-order permutations x 2 secret sets: a duplicate-heavy
    // batch (8 draws from 32 rows collides often) so coalescing really
    // reshuffles which accesses are real vs dummy between runs.
    const VerifyConfig config = ProxyConfigFor(8, 1, 11);
    const InterleavingResult r = RunInterleavingFuzz(config, 8);
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_EQ(r.runs, 16);
    EXPECT_EQ(r.secret_sets, 2);
    // One window of 8 requests = 8 physical accesses, whatever the order.
    EXPECT_GT(r.trace_len, 0u);
}

TEST(ProxyVerifyTest, ShapeIdenticalAcrossInterleavingsParallel)
{
    // Same engine with the intra-access pipeline on pool threads: the
    // parallel data movement must not change what gets recorded.
    const VerifyConfig config = ProxyConfigFor(8, 4, 13);
    const InterleavingResult r = RunInterleavingFuzz(config, 8);
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_EQ(r.runs, 16);
}

TEST(ProxyVerifyTest, DifferentialShapeAcrossSecretSets)
{
    VerifyConfig config = ProxyConfigFor(8, 1, 17);
    config.secret_sets = 4;
    const DifferentialResult r = RunDifferential(config);
    EXPECT_TRUE(r.passed) << r.detail;
    EXPECT_EQ(r.sets_run, 4);
}

TEST(ProxyVerifyTest, ProxyScheduleMatchesSerialControllerShape)
{
    // The proxied generator must present the exact per-access trace shape
    // of the serial Path ORAM controller — batching, coalescing, and
    // deferred eviction change who does the work, never what is recorded.
    VerifyConfig proxy_config = ProxyConfigFor(8, 1, 19);
    VerifyConfig serial_config = proxy_config;
    serial_config.subject = Subject::kTreeOram;
    serial_config.variant = 0;  // Path
    const CanonicalTrace proxy_trace = GoldenRun(proxy_config);
    const CanonicalTrace serial_trace = GoldenRun(serial_config);
    ASSERT_EQ(proxy_trace.accesses.size(), serial_trace.accesses.size());
    const TraceDivergence d =
        CompareCanonicalShape(proxy_trace, serial_trace);
    EXPECT_FALSE(d.diverged) << d.detail;
}

/**
 * Negative control: the classic TaoStore pitfall. A proxy that coalesces
 * duplicates but skips the dummy padding issues fewer physical accesses
 * for duplicate-heavy batches — the schedule length leaks the (secret)
 * duplicate structure, and the differential engine must say so.
 */
class DedupWithoutPadding : public core::EmbeddingGenerator
{
  public:
    explicit DedupWithoutPadding(std::unique_ptr<core::OramTable> inner)
        : inner_(std::move(inner))
    {
    }

    void Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        std::vector<int64_t> distinct;
        std::vector<size_t> source(indices.size());
        for (size_t i = 0; i < indices.size(); ++i) {
            size_t at = distinct.size();
            for (size_t d = 0; d < distinct.size(); ++d) {
                if (distinct[d] == indices[i]) {
                    at = d;
                    break;
                }
            }
            if (at == distinct.size()) distinct.push_back(indices[i]);
            source[i] = at;
        }
        Tensor rows({static_cast<int64_t>(distinct.size()), dim()});
        inner_->Generate(distinct, rows);
        for (size_t i = 0; i < indices.size(); ++i) {
            std::copy_n(rows.data() +
                            static_cast<int64_t>(source[i]) * dim(),
                        dim(), out.data() +
                                   static_cast<int64_t>(i) * dim());
        }
    }
    int64_t dim() const override { return inner_->dim(); }
    int64_t num_rows() const override { return inner_->num_rows(); }
    int64_t MemoryFootprintBytes() const override
    {
        return inner_->MemoryFootprintBytes();
    }
    std::string_view name() const override
    {
        return "dedup without padding (leaky)";
    }
    bool IsOblivious() const override { return false; }

  private:
    std::unique_ptr<core::OramTable> inner_;
};

TEST(ProxyVerifyTest, EngineCatchesCoalescingWithoutPadding)
{
    VerifyConfig config = ProxyConfigFor(8, 1, 23);
    config.rows = 16;  // small table: duplicate counts vary across sets
    config.secret_sets = 4;
    const GeneratorFactory leaky =
        [config](uint64_t seed, sidechannel::TraceRecorder* rec) {
            const GeneratorFactory serial = MakeSubjectFactory([&] {
                VerifyConfig c = config;
                c.subject = Subject::kTreeOram;
                c.variant = 0;
                return c;
            }());
            auto inner = serial(seed, rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::make_unique<DedupWithoutPadding>(
                    std::unique_ptr<core::OramTable>(
                        static_cast<core::OramTable*>(
                            inner.release()))));
        };
    const DifferentialResult r =
        RunDifferentialWith(config, leaky, /*expect_bit_identical=*/false);
    EXPECT_FALSE(r.passed)
        << "dedup-without-padding produced identical trace shapes; the "
           "interleaving gate would miss the TaoStore coalescing bug";
}

}  // namespace
}  // namespace secemb::verify
