/**
 * @file
 * Packed-kernel subsystem tests (ctest label `kernels`).
 *
 * Seeded property tests compare every compiled ISA tier against the
 * naive reference loops across odd/tail shapes, the fused epilogue
 * against separate bias/activation passes, and the persistent
 * packed-weight cache against in-place weight mutation. The
 * low-precision sections hold the int8/bf16 tiers to a derived
 * per-element quantization error bound against the f32 naive
 * reference, pin cross-tier int8 bit-identity (all tiers share one
 * quantization scheme) and skinny-m 2-D-split determinism, and verify
 * the cache keeps distinct entries per precision. The trace section
 * proves the obliviousness claim: canonical traces of the certified
 * generators are bit-identical regardless of which GEMM tier — and
 * which precision — runs underneath (label `leakage`).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/aligned.h"
#include "tensor/gemm.h"
#include "tensor/kernels/driver.h"
#include "tensor/kernels/kernels.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "verify/harness.h"

namespace secemb {
namespace {

using kernels::Activation;
using kernels::Isa;

/** Forces a tier for the scope of a test; restores normal selection. */
class ScopedIsa
{
  public:
    explicit ScopedIsa(Isa isa)
    {
        kernels::SetIsaForTest(static_cast<int>(isa));
    }
    ~ScopedIsa() { kernels::SetIsaForTest(-1); }
};

std::vector<Isa>
SupportedTiers()
{
    std::vector<Isa> tiers;
    for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
        if (kernels::IsaSupported(isa)) tiers.push_back(isa);
    }
    return tiers;
}

/** max |got - want| / max(1, |want|) over all elements. */
float
MaxRelError(const Tensor& got, const Tensor& want)
{
    EXPECT_EQ(got.shape(), want.shape());
    float worst = 0.0f;
    for (int64_t i = 0; i < got.numel(); ++i) {
        const float denom = std::max(1.0f, std::fabs(want.at(i)));
        worst = std::max(worst, std::fabs(got.at(i) - want.at(i)) / denom);
    }
    return worst;
}

constexpr float kRelTol = 1e-4f;

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(KernelDispatchTest, ScalarTierAlwaysAvailable)
{
    EXPECT_TRUE(kernels::IsaCompiledIn(Isa::kScalar));
    EXPECT_TRUE(kernels::IsaSupported(Isa::kScalar));
    EXPECT_STREQ(kernels::IsaName(Isa::kScalar), "scalar");
    EXPECT_STREQ(kernels::IsaName(Isa::kAvx2), "avx2");
    EXPECT_STREQ(kernels::IsaName(Isa::kAvx512), "avx512");
}

TEST(KernelDispatchTest, ForcedTierIsActiveAndClampRestores)
{
    // Baseline is whatever normal selection picks (the SECEMB_ISA
    // environment override, else the widest supported tier) — the test
    // must pass under any SECEMB_ISA setting.
    const Isa baseline = kernels::ActiveIsa();
    {
        ScopedIsa scoped(Isa::kScalar);
        EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);
    }
    EXPECT_EQ(kernels::ActiveIsa(), baseline);
}

TEST(KernelDispatchTest, UnsupportedForceClampsToWidest)
{
    // Forcing a tier the build/CPU cannot satisfy must clamp, not crash.
    kernels::SetIsaForTest(static_cast<int>(Isa::kAvx512));
    const Isa active = kernels::ActiveIsa();
    EXPECT_TRUE(kernels::IsaSupported(active));
    kernels::SetIsaForTest(-1);
}

// ---------------------------------------------------------------------------
// Satellite: Tensor payload alignment
// ---------------------------------------------------------------------------

TEST(KernelAlignmentTest, TensorPayloadsAre64ByteAligned)
{
    Rng rng(11);
    // Odd sizes included on purpose: alignment must come from the
    // allocator, not from size rounding.
    for (int64_t n : {1, 3, 7, 17, 63, 64, 65, 1000, 4096}) {
        const Tensor t = Tensor::Randn({n}, rng);
        EXPECT_TRUE(IsAligned64(t.data())) << "numel=" << n;
        Tensor copy = t;
        EXPECT_TRUE(IsAligned64(copy.data())) << "copy numel=" << n;
    }
}

TEST(KernelAlignmentTest, PackedPanelsAre64ByteAligned)
{
    Rng rng(12);
    const Tensor b = Tensor::Randn({37, 19}, rng);
    for (Isa isa : SupportedTiers()) {
        kernels::PackedB packed;
        kernels::PackB(b.data(), 37, 19, /*transposed_src=*/false, isa,
                       &packed);
        EXPECT_TRUE(IsAligned64(packed.data.data()))
            << kernels::IsaName(isa);
        // Panel rows are NR floats; NR*4 divides 64 for every tier, so
        // per-panel bases stay aligned too.
        EXPECT_EQ((packed.nr * 4) % 64 == 0 || (64 % (packed.nr * 4)) == 0,
                  true);
    }
}

// ---------------------------------------------------------------------------
// Satellite: shape validation regression (the `(void)b;` bug)
// ---------------------------------------------------------------------------

TEST(KernelShapeCheckTest, GemmRejectsMismatchedB)
{
    Tensor a({4, 8}), c({4, 5});
    Tensor b_bad_cols({8, 6});   // n disagrees with C
    Tensor b_bad_rows({7, 5});   // inner dim disagrees with A
    EXPECT_THROW(Gemm(a, b_bad_cols, c), std::invalid_argument);
    EXPECT_THROW(Gemm(a, b_bad_rows, c), std::invalid_argument);
    EXPECT_THROW(GemmNaive(a, b_bad_cols, c), std::invalid_argument);
}

TEST(KernelShapeCheckTest, GemmBTRejectsMismatchedB)
{
    Tensor a({4, 8}), c({4, 5});
    Tensor bt_bad_inner({5, 9});  // B^T inner dim disagrees with A
    Tensor bt_bad_rows({6, 8});   // n disagrees with C
    EXPECT_THROW(GemmBT(a, bt_bad_inner, c), std::invalid_argument);
    EXPECT_THROW(GemmBT(a, bt_bad_rows, c), std::invalid_argument);
    EXPECT_THROW(GemmBTNaive(a, bt_bad_inner, c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property tests: every tier vs the naive reference
// ---------------------------------------------------------------------------

struct GemmCase
{
    int64_t m, k, n;
    int nthreads;
};

/**
 * Seeded shape corpus: all dims from {1..17, 63, 64, 65} plus a few
 * large-dim probes, >= 340 triples. Run per compiled tier this exceeds
 * 1000 property cases on any x86-64 build.
 */
std::vector<GemmCase>
ShapeCorpus(uint64_t seed)
{
    static const int64_t kDims[] = {1,  2,  3,  4,  5,  6,  7,  8,  9, 10,
                                    11, 12, 13, 14, 15, 16, 17, 63, 64, 65};
    std::vector<GemmCase> cases;
    Rng rng(seed);
    auto pick = [&rng]() {
        return kDims[rng.NextBounded(sizeof(kDims) / sizeof(kDims[0]))];
    };
    for (int i = 0; i < 330; ++i) {
        cases.push_back({pick(), pick(), pick(),
                         i % 7 == 0 ? 3 : 1});
    }
    // One big dim at a time keeps each case cheap while still crossing
    // every MC/KC/NC blocking boundary.
    cases.push_back({1024, 5, 9, 1});
    cases.push_back({5, 1024, 9, 1});
    cases.push_back({5, 9, 1024, 1});
    cases.push_back({256, 1024, 512, 2});  // DHE decoder layer shape
    return cases;
}

TEST(KernelPropertyTest, GemmMatchesNaiveOnEveryTier)
{
    Rng rng(101);
    const auto corpus = ShapeCorpus(202);
    for (Isa isa : SupportedTiers()) {
        ScopedIsa scoped(isa);
        for (const auto& tc : corpus) {
            const Tensor a = Tensor::Randn({tc.m, tc.k}, rng);
            const Tensor b = Tensor::Randn({tc.k, tc.n}, rng);
            Tensor want({tc.m, tc.n}), got({tc.m, tc.n});
            GemmNaive(a, b, want);
            Gemm(a, b, got, tc.nthreads);
            ASSERT_LE(MaxRelError(got, want), kRelTol)
                << kernels::IsaName(isa) << " m=" << tc.m << " k=" << tc.k
                << " n=" << tc.n << " t=" << tc.nthreads;
        }
    }
}

TEST(KernelPropertyTest, GemmBTMatchesNaiveOnEveryTier)
{
    Rng rng(103);
    const auto corpus = ShapeCorpus(204);
    for (Isa isa : SupportedTiers()) {
        ScopedIsa scoped(isa);
        for (const auto& tc : corpus) {
            const Tensor a = Tensor::Randn({tc.m, tc.k}, rng);
            const Tensor bt = Tensor::Randn({tc.n, tc.k}, rng);
            Tensor want({tc.m, tc.n}), got({tc.m, tc.n});
            GemmBTNaive(a, bt, want);
            GemmBT(a, bt, got, tc.nthreads);
            ASSERT_LE(MaxRelError(got, want), kRelTol)
                << kernels::IsaName(isa) << " m=" << tc.m << " k=" << tc.k
                << " n=" << tc.n << " t=" << tc.nthreads;
        }
    }
}

TEST(KernelPropertyTest, GemmATMatchesNaiveOnEveryTier)
{
    Rng rng(105);
    const auto corpus = ShapeCorpus(206);
    for (Isa isa : SupportedTiers()) {
        ScopedIsa scoped(isa);
        for (const auto& tc : corpus) {
            const Tensor at = Tensor::Randn({tc.k, tc.m}, rng);
            const Tensor b = Tensor::Randn({tc.k, tc.n}, rng);
            Tensor want({tc.m, tc.n}), got({tc.m, tc.n});
            GemmATNaive(at, b, want);
            GemmAT(at, b, got, tc.nthreads);
            ASSERT_LE(MaxRelError(got, want), kRelTol)
                << kernels::IsaName(isa) << " m=" << tc.m << " k=" << tc.k
                << " n=" << tc.n << " t=" << tc.nthreads;
        }
    }
}

TEST(KernelPropertyTest, TiersAgreeWithEachOther)
{
    // Cross-tier consistency at one blocking-boundary shape: all
    // compiled tiers must agree within tolerance on identical inputs.
    Rng rng(107);
    const Tensor a = Tensor::Randn({65, 385}, rng);
    const Tensor b = Tensor::Randn({385, 129}, rng);
    const auto tiers = SupportedTiers();
    Tensor base({65, 129});
    {
        ScopedIsa scoped(tiers.front());
        Gemm(a, b, base);
    }
    for (size_t i = 1; i < tiers.size(); ++i) {
        ScopedIsa scoped(tiers[i]);
        Tensor got({65, 129});
        Gemm(a, b, got);
        EXPECT_LE(MaxRelError(got, base), kRelTol)
            << kernels::IsaName(tiers[i]);
    }
}

// ---------------------------------------------------------------------------
// Fused epilogue
// ---------------------------------------------------------------------------

TEST(KernelEpilogueTest, FusedBiasActMatchesSeparatePasses)
{
    Rng rng(109);
    for (Isa isa : SupportedTiers()) {
        ScopedIsa scoped(isa);
        for (const auto act : {Activation::kIdentity, Activation::kRelu,
                               Activation::kGelu}) {
            const int64_t m = 33, k = 65, n = 47;
            const Tensor x = Tensor::Randn({m, k}, rng);
            const Tensor w = Tensor::Randn({k, n}, rng);
            const Tensor bias = Tensor::Randn({n}, rng);

            Tensor want({m, n});
            GemmNaive(x, w, want);
            for (int64_t i = 0; i < m; ++i) {
                for (int64_t j = 0; j < n; ++j) {
                    float v = want.at(i, j) + bias.at(j);
                    if (act == Activation::kRelu) v = std::max(0.0f, v);
                    if (act == Activation::kGelu) v = kernels::GeluF(v);
                    want.at(i, j) = v;
                }
            }

            Tensor got({m, n}), preact({m, n});
            AffineActForward(x, w, bias, got, 1, act, &preact,
                             kernels::Dtype::kF32);
            EXPECT_LE(MaxRelError(got, want), kRelTol)
                << kernels::IsaName(isa) << " act="
                << static_cast<int>(act);

            // preact must hold x*W + bias regardless of activation.
            Tensor want_pre({m, n});
            GemmNaive(x, w, want_pre);
            for (int64_t i = 0; i < m; ++i) {
                for (int64_t j = 0; j < n; ++j) {
                    want_pre.at(i, j) += bias.at(j);
                }
            }
            EXPECT_LE(MaxRelError(preact, want_pre), kRelTol)
                << kernels::IsaName(isa);
        }
        kernels::PackedWeightCache::Instance().Clear();
    }
}

TEST(KernelEpilogueTest, EmptyBiasSkipsBroadcast)
{
    Rng rng(111);
    const Tensor x = Tensor::Randn({9, 31}, rng);
    const Tensor w = Tensor::Randn({31, 13}, rng);
    Tensor want({9, 13}), got({9, 13});
    GemmNaive(x, w, want);
    AffineForward(x, w, Tensor(), got, 1, kernels::Dtype::kF32);
    EXPECT_LE(MaxRelError(got, want), kRelTol);
    kernels::PackedWeightCache::Instance().Clear();
}

// ---------------------------------------------------------------------------
// Persistent packed-weight cache
// ---------------------------------------------------------------------------

TEST(PackedWeightCacheTest, SecondGetHitsWithoutRepacking)
{
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();
    Rng rng(113);
    const Tensor w = Tensor::Randn({24, 16}, rng);

    const auto before = cache.stats();
    const auto p1 = cache.Get(w.data(), 24, 16, false);
    const auto p2 = cache.Get(w.data(), 24, 16, false);
    const auto after = cache.stats();

    EXPECT_EQ(p1.get(), p2.get());
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_EQ(after.hits - before.hits, 1u);
    EXPECT_EQ(after.repacks - before.repacks, 0u);
    EXPECT_EQ(cache.entries(), 1u);
    cache.Clear();
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(PackedWeightCacheTest, InPlaceMutationTriggersRepack)
{
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();
    Rng rng(115);
    Tensor w = Tensor::Randn({24, 16}, rng);
    const Tensor x = Tensor::Randn({8, 24}, rng);

    Tensor y1({8, 16});
    AffineForward(x, w, Tensor(), y1, 1, kernels::Dtype::kF32);

    // Optimiser-style in-place update: same buffer, new content. The
    // cache must notice via the content hash and serve fresh panels.
    w.ScaleInPlace(2.0f);
    const auto before = cache.stats();
    Tensor y2({8, 16});
    AffineForward(x, w, Tensor(), y2, 1, kernels::Dtype::kF32);
    const auto after = cache.stats();
    EXPECT_EQ(after.repacks - before.repacks, 1u);

    Tensor want({8, 16});
    GemmNaive(x, w, want);
    EXPECT_LE(MaxRelError(y2, want), kRelTol);
    // And the scaled output really is 2x the original.
    EXPECT_LE(MaxRelError(y2, y1.Scale(2.0f)), kRelTol);
    cache.Clear();
}

TEST(PackedWeightCacheTest, TransposedAndPlainPacksAreDistinct)
{
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();
    Rng rng(117);
    const Tensor w = Tensor::Randn({16, 16}, rng);
    const auto plain = cache.Get(w.data(), 16, 16, false);
    const auto trans = cache.Get(w.data(), 16, 16, true);
    EXPECT_NE(plain.get(), trans.get());
    EXPECT_EQ(cache.entries(), 2u);
    cache.Clear();
}

TEST(PackedWeightCacheTest, EntriesSurviveClearWhileHeld)
{
    // shared_ptr contract: Clear() must not invalidate panels a running
    // GEMM still holds.
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();
    Rng rng(119);
    const Tensor w = Tensor::Randn({8, 8}, rng);
    const auto held = cache.Get(w.data(), 8, 8, false);
    cache.Clear();
    EXPECT_EQ(held->k, 8);
    EXPECT_EQ(held->n, 8);
    EXPECT_TRUE(IsAligned64(held->data.data()));
}

// ---------------------------------------------------------------------------
// A-panel scratch shrink policy
// ---------------------------------------------------------------------------

TEST(APackScratchTest, ScratchShrinksAfterLargePack)
{
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();
    Rng rng(121);

    // nthreads = 1 keeps both packing and the region on this thread, so
    // the thread-local scratch capacity is observable here.
    const auto run = [&](int64_t m, int64_t k) {
        const Tensor a = Tensor::Randn({m, k}, rng);
        const Tensor b = Tensor::Randn({k, 8}, rng);
        Tensor c({m, 8});
        const auto packed = cache.Get(b.data(), k, 8, false);
        kernels::GemmArgs args;
        args.a = a.data();
        args.b = packed.get();
        args.c = c.data();
        args.m = m;
        args.nthreads = 1;
        kernels::GemmPacked(args);
    };

    run(256, 512);  // A panels need >= 512 KiB of scratch
    const size_t big = kernels::detail::APackScratchCapacityForTest();
    EXPECT_GE(big * sizeof(float), size_t{512} * 1024);

    // A tiny follow-up call: retained capacity dwarfs the need, so the
    // scratch must release its storage instead of pinning it forever.
    run(8, 16);
    const size_t small = kernels::detail::APackScratchCapacityForTest();
    EXPECT_LT(small, big / 4);
    EXPECT_LE(small * sizeof(float), size_t{256} * 1024);

    // The reallocated scratch still produces correct results.
    const Tensor x = Tensor::Randn({8, 16}, rng);
    const Tensor w = Tensor::Randn({16, 8}, rng);
    Tensor want({8, 8}), got({8, 8});
    GemmNaive(x, w, want);
    AffineForward(x, w, Tensor(), got, 1, kernels::Dtype::kF32);
    EXPECT_LE(MaxRelError(got, want), kRelTol);
    cache.Clear();
}

// ---------------------------------------------------------------------------
// Low-precision tiers (int8 / bf16)
// ---------------------------------------------------------------------------

using kernels::Dtype;

/** Forces a precision for the scope of a test; restores env selection. */
class ScopedDtype
{
  public:
    explicit ScopedDtype(Dtype dtype)
    {
        kernels::SetDtypeForTest(static_cast<int>(dtype));
    }
    ~ScopedDtype() { kernels::SetDtypeForTest(-1); }
};

/** Runs the packed GEMM at an explicit precision (transient pack). */
void
GemmAtDtype(const Tensor& a, const Tensor& b, Tensor& c, Dtype dtype,
            int nthreads, const kernels::Epilogue& ep = {})
{
    kernels::PackedB packed;
    kernels::PackB(b.data(), b.size(0), b.size(1),
                   /*transposed_src=*/false, kernels::ActiveIsa(), dtype,
                   &packed);
    kernels::GemmArgs args;
    args.a = a.data();
    args.b = &packed;
    args.c = c.data();
    args.m = a.size(0);
    args.nthreads = nthreads;
    args.epilogue = ep;
    kernels::GemmPacked(args);
}

/**
 * Derived per-element quantization error bound.
 *
 * int8: B columns quantize with scale sb_j = colmax|b| / 127 (|db| <=
 * sb_j/2), A rows with sa_i = rowmax|a| / 63 (|da| <= sa_i/2), so
 *
 *   |sum (a+da)(b+db) - sum ab|
 *     <= (sb_j/2) sum|a| + (sa_i/2) sum|b| + k sa_i sb_j / 4.
 *
 * bf16: only B quantizes, round-to-nearest-even on an 8-bit
 * significand (7 stored mantissa bits; |db| <= 2^-8 |b|), giving
 * 2^-8 sum|a||b|. Both get the f32
 * accumulation slop the f32 tier tolerance already allows, and a 1.5x
 * safety factor on the quantization part.
 */
Tensor
QuantErrorBound(const Tensor& a, const Tensor& b, Dtype dtype)
{
    const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
    Tensor bound({m, n});
    std::vector<float> sa(static_cast<size_t>(m));
    std::vector<float> abs_row(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) {
        float amax = 0.0f, asum = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
            amax = std::max(amax, std::fabs(a.at(i, p)));
            asum += std::fabs(a.at(i, p));
        }
        sa[static_cast<size_t>(i)] = amax / 63.0f;
        abs_row[static_cast<size_t>(i)] = asum;
    }
    std::vector<float> sb(static_cast<size_t>(n));
    std::vector<float> abs_col(static_cast<size_t>(n));
    for (int64_t j = 0; j < n; ++j) {
        float bmax = 0.0f, bsum = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
            bmax = std::max(bmax, std::fabs(b.at(p, j)));
            bsum += std::fabs(b.at(p, j));
        }
        sb[static_cast<size_t>(j)] = bmax / 127.0f;
        abs_col[static_cast<size_t>(j)] = bsum;
    }
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float q = 0.0f;
            if (dtype == Dtype::kInt8) {
                q = 0.5f * sb[static_cast<size_t>(j)] *
                        abs_row[static_cast<size_t>(i)] +
                    0.5f * sa[static_cast<size_t>(i)] *
                        abs_col[static_cast<size_t>(j)] +
                    0.25f * static_cast<float>(k) *
                        sa[static_cast<size_t>(i)] *
                        sb[static_cast<size_t>(j)];
            } else if (dtype == Dtype::kBf16) {
                float dot_abs = 0.0f;
                for (int64_t p = 0; p < k; ++p) {
                    dot_abs += std::fabs(a.at(i, p) * b.at(p, j));
                }
                q = dot_abs / 256.0f;  // 2^-8 relative per B element
            }
            bound.at(i, j) = 1.5f * q + 1e-5f;
        }
    }
    return bound;
}

TEST(KernelLowPrecisionTest, QuantizedGemmWithinDerivedBoundOnEveryTier)
{
    // 334 shapes x up to 3 tiers x 2 precisions > 1000 property cases.
    Rng rng(131);
    const auto corpus = ShapeCorpus(232);
    for (Dtype dtype : {Dtype::kInt8, Dtype::kBf16}) {
        ScopedDtype scoped_dtype(dtype);
        for (Isa isa : SupportedTiers()) {
            ScopedIsa scoped(isa);
            for (const auto& tc : corpus) {
                const Tensor a = Tensor::Randn({tc.m, tc.k}, rng);
                const Tensor b = Tensor::Randn({tc.k, tc.n}, rng);
                Tensor want({tc.m, tc.n}), got({tc.m, tc.n});
                GemmNaive(a, b, want);
                GemmAtDtype(a, b, got, dtype, tc.nthreads);
                const Tensor bound = QuantErrorBound(a, b, dtype);
                for (int64_t i = 0; i < want.numel(); ++i) {
                    const float tol =
                        bound.at(i) + kRelTol * std::max(
                                          1.0f, std::fabs(want.at(i)));
                    ASSERT_LE(std::fabs(got.at(i) - want.at(i)), tol)
                        << kernels::DtypeName(dtype) << "/"
                        << kernels::IsaName(isa) << " m=" << tc.m
                        << " k=" << tc.k << " n=" << tc.n << " elem "
                        << i;
                }
            }
        }
    }
}

TEST(KernelLowPrecisionTest, Int8TiersAreBitIdentical)
{
    // All int8 tiers share one quantization scheme and integer dot, so
    // their f32 outputs must agree exactly — not just within tolerance.
    Rng rng(133);
    const auto tiers = SupportedTiers();
    for (const auto& sh :
         std::vector<GemmCase>{{1, 1024, 512, 1},
                               {8, 512, 256, 3},
                               {65, 385, 129, 1},
                               {17, 3, 9, 1}}) {
        const Tensor a = Tensor::Randn({sh.m, sh.k}, rng);
        const Tensor b = Tensor::Randn({sh.k, sh.n}, rng);
        Tensor base({sh.m, sh.n});
        {
            ScopedIsa scoped(tiers.front());
            GemmAtDtype(a, b, base, Dtype::kInt8, sh.nthreads);
        }
        for (size_t t = 1; t < tiers.size(); ++t) {
            ScopedIsa scoped(tiers[t]);
            Tensor got({sh.m, sh.n});
            GemmAtDtype(a, b, got, Dtype::kInt8, sh.nthreads);
            for (int64_t i = 0; i < got.numel(); ++i) {
                ASSERT_EQ(got.at(i), base.at(i))
                    << kernels::IsaName(tiers[t]) << " m=" << sh.m
                    << " k=" << sh.k << " n=" << sh.n;
            }
        }
    }
}

TEST(KernelLowPrecisionTest, SkinnyMSplitIsThreadCountInvariant)
{
    // Decoder GEMMs (m <= 8) engage the 2-D column split when threads
    // exceed row tiles; every worker owns disjoint C columns with the
    // same sequential k-block order, so results must be bit-identical
    // at any thread count — for every precision.
    Rng rng(135);
    for (Dtype dtype : {Dtype::kF32, Dtype::kBf16, Dtype::kInt8}) {
        for (const auto& sh : std::vector<GemmCase>{{1, 384, 1024, 0},
                                                    {4, 512, 640, 0},
                                                    {8, 700, 4100, 0}}) {
            const Tensor a = Tensor::Randn({sh.m, sh.k}, rng);
            const Tensor b = Tensor::Randn({sh.k, sh.n}, rng);
            Tensor base({sh.m, sh.n});
            GemmAtDtype(a, b, base, dtype, 1);
            for (int nth : {2, 4, 8}) {
                Tensor got({sh.m, sh.n});
                GemmAtDtype(a, b, got, dtype, nth);
                for (int64_t i = 0; i < got.numel(); ++i) {
                    ASSERT_EQ(got.at(i), base.at(i))
                        << kernels::DtypeName(dtype) << " m=" << sh.m
                        << " n=" << sh.n << " nth=" << nth;
                }
            }
        }
    }
}

TEST(KernelLowPrecisionTest, FusedEpilogueMatchesUnfusedPerPrecision)
{
    Rng rng(137);
    const int64_t m = 9, k = 450, n = 47;  // crosses one KC boundary
    for (Dtype dtype : {Dtype::kF32, Dtype::kBf16, Dtype::kInt8}) {
        for (Isa isa : SupportedTiers()) {
            ScopedIsa scoped(isa);
            for (const auto act :
                 {Activation::kIdentity, Activation::kRelu,
                  Activation::kGelu}) {
                const Tensor x = Tensor::Randn({m, k}, rng);
                const Tensor w = Tensor::Randn({k, n}, rng);
                const Tensor bias = Tensor::Randn({n}, rng);

                // Unfused at the same precision: bare quantized GEMM,
                // then separate bias + activation sweeps.
                Tensor want({m, n});
                GemmAtDtype(x, w, want, dtype, 1);
                Tensor want_pre = want;
                for (int64_t i = 0; i < m; ++i) {
                    for (int64_t j = 0; j < n; ++j) {
                        float v = want.at(i, j) + bias.at(j);
                        want_pre.at(i, j) = v;
                        if (act == Activation::kRelu) {
                            v = std::max(0.0f, v);
                        }
                        if (act == Activation::kGelu) {
                            v = kernels::GeluF(v);
                        }
                        want.at(i, j) = v;
                    }
                }

                Tensor got({m, n}), preact({m, n});
                kernels::Epilogue ep;
                ep.bias = bias.data();
                ep.act = act;
                ep.preact = preact.data();
                GemmAtDtype(x, w, got, dtype, 1, ep);
                EXPECT_LE(MaxRelError(got, want), kRelTol)
                    << kernels::DtypeName(dtype) << "/"
                    << kernels::IsaName(isa) << " act="
                    << static_cast<int>(act);
                EXPECT_LE(MaxRelError(preact, want_pre), kRelTol)
                    << kernels::DtypeName(dtype) << "/"
                    << kernels::IsaName(isa);
            }
        }
    }
}

TEST(KernelLowPrecisionTest, ZeroRowsAndColumnsStayExact)
{
    // amax = 0 rows get scale 0 and must contribute exactly zero (no
    // zero-point residue); all-zero B columns likewise.
    Rng rng(139);
    Tensor a = Tensor::Randn({5, 96}, rng);
    Tensor b = Tensor::Randn({96, 24}, rng);
    for (int64_t p = 0; p < 96; ++p) {
        a.at(2, p) = 0.0f;
        b.at(p, 3) = 0.0f;
    }
    for (Dtype dtype : {Dtype::kInt8, Dtype::kBf16}) {
        for (Isa isa : SupportedTiers()) {
            ScopedIsa scoped(isa);
            Tensor got({5, 24});
            GemmAtDtype(a, b, got, dtype, 1);
            for (int64_t j = 0; j < 24; ++j) {
                ASSERT_EQ(got.at(2, j), 0.0f)
                    << kernels::DtypeName(dtype) << "/"
                    << kernels::IsaName(isa);
            }
            for (int64_t i = 0; i < 5; ++i) {
                ASSERT_EQ(got.at(i, 3), 0.0f)
                    << kernels::DtypeName(dtype) << "/"
                    << kernels::IsaName(isa);
            }
        }
    }
}

TEST(PackedWeightCacheTest, PrecisionSwitchKeepsDistinctEntries)
{
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();
    Rng rng(141);
    const Tensor w = Tensor::Randn({24, 16}, rng);

    const auto f32 = cache.Get(w.data(), 24, 16, false, Dtype::kF32);
    const auto i8 = cache.Get(w.data(), 24, 16, false, Dtype::kInt8);
    const auto bf = cache.Get(w.data(), 24, 16, false, Dtype::kBf16);
    EXPECT_NE(f32.get(), i8.get());
    EXPECT_NE(f32.get(), bf.get());
    EXPECT_NE(i8.get(), bf.get());
    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_EQ(f32->dtype, Dtype::kF32);
    EXPECT_EQ(i8->dtype, Dtype::kInt8);
    EXPECT_EQ(bf->dtype, Dtype::kBf16);

    // Switching back is a hit, not a repack.
    const auto before = cache.stats();
    const auto again = cache.Get(w.data(), 24, 16, false, Dtype::kF32);
    const auto after = cache.stats();
    EXPECT_EQ(again.get(), f32.get());
    EXPECT_EQ(after.hits - before.hits, 1u);
    EXPECT_EQ(after.repacks - before.repacks, 0u);
    cache.Clear();
}

TEST(PackedWeightCacheTest, MutationRepacksQuantizedEntry)
{
    // Content-hash revalidation is precision-independent: an in-place
    // weight update must re-quantize the int8 panels too.
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();
    Rng rng(143);
    Tensor w = Tensor::Randn({24, 16}, rng);
    const Tensor x = Tensor::Randn({4, 24}, rng);

    Tensor y1({4, 16});
    AffineForward(x, w, Tensor(), y1, 1, Dtype::kInt8);
    w.ScaleInPlace(2.0f);
    const auto before = cache.stats();
    Tensor y2({4, 16});
    AffineForward(x, w, Tensor(), y2, 1, Dtype::kInt8);
    const auto after = cache.stats();
    EXPECT_EQ(after.repacks - before.repacks, 1u);
    // Symmetric quantization commutes with scaling, so the int8 result
    // doubles exactly.
    EXPECT_LE(MaxRelError(y2, y1.Scale(2.0f)), kRelTol);
    cache.Clear();
}

TEST(KernelLowPrecisionTest, PrecisionSelectionPlumbing)
{
    EXPECT_STREQ(kernels::DtypeName(Dtype::kF32), "f32");
    EXPECT_STREQ(kernels::DtypeName(Dtype::kBf16), "bf16");
    EXPECT_STREQ(kernels::DtypeName(Dtype::kInt8), "int8");
    Dtype d = Dtype::kF32;
    EXPECT_TRUE(kernels::ParseDtype("int8", &d));
    EXPECT_EQ(d, Dtype::kInt8);
    EXPECT_TRUE(kernels::ParseDtype("bf16", &d));
    EXPECT_EQ(d, Dtype::kBf16);
    EXPECT_TRUE(kernels::ParseDtype("f32", &d));
    EXPECT_EQ(d, Dtype::kF32);
    EXPECT_FALSE(kernels::ParseDtype("fp64", &d));
    // Baseline is whatever normal selection picks (the SECEMB_PRECISION
    // environment override, else f32) — the test must pass under any
    // SECEMB_PRECISION setting.
    const Dtype baseline = kernels::ActiveDtype();
    {
        ScopedDtype scoped(Dtype::kInt8);
        EXPECT_EQ(kernels::ActiveDtype(), Dtype::kInt8);
        // The effective ISA for int8 is always a tier with an int8
        // kernel compiled in and supported at runtime.
        const Isa eff = kernels::EffectiveIsaFor(kernels::ActiveIsa(),
                                                 Dtype::kInt8);
        EXPECT_TRUE(kernels::IsaSupported(eff));
    }
    EXPECT_EQ(kernels::ActiveDtype(), baseline);
}

// ---------------------------------------------------------------------------
// Obliviousness: canonical traces are tier-invariant (label `leakage`)
// ---------------------------------------------------------------------------

verify::VerifyConfig
TraceConfig(verify::Subject subject)
{
    verify::VerifyConfig config;
    config.subject = subject;
    config.rows = 64;
    config.dim = 16;
    config.batch = 4;
    config.seed = 7;
    return config;
}

TEST(KernelTraceTest, CanonicalTracesIdenticalAcrossTiers)
{
    using verify::Subject;
    for (Subject subject :
         {Subject::kLinearScan, Subject::kDhe, Subject::kHybrid}) {
        const auto config = TraceConfig(subject);
        verify::CanonicalTrace base;
        {
            ScopedIsa scoped(Isa::kScalar);
            base = verify::GoldenRun(config);
        }
        ASSERT_FALSE(base.accesses.empty())
            << verify::SubjectName(subject);
        for (Isa isa : SupportedTiers()) {
            ScopedIsa scoped(isa);
            const auto got = verify::GoldenRun(config);
            const auto div = verify::CompareCanonical(base, got);
            EXPECT_FALSE(div.diverged)
                << verify::SubjectName(subject) << " under "
                << kernels::IsaName(isa) << ": " << div.detail;
        }
    }
}

TEST(KernelTraceTest, DifferentialPassesUnderEveryTier)
{
    for (Isa isa : SupportedTiers()) {
        ScopedIsa scoped(isa);
        const auto result =
            verify::RunDifferential(TraceConfig(verify::Subject::kDhe));
        EXPECT_TRUE(result.passed)
            << kernels::IsaName(isa) << ": " << result.detail;
    }
}

TEST(KernelTraceTest, CanonicalTracesIdenticalAcrossPrecisions)
{
    // Precision changes arithmetic only: DHE records whole-region
    // parameter accesses at the generator level, independent of GEMM
    // internals, so the canonical trace must be bit-identical across
    // f32/bf16/int8 — under every compiled ISA tier.
    const auto config = TraceConfig(verify::Subject::kDhe);
    verify::CanonicalTrace base;
    {
        ScopedDtype scoped_dtype(Dtype::kF32);
        ScopedIsa scoped(Isa::kScalar);
        base = verify::GoldenRun(config);
    }
    ASSERT_FALSE(base.accesses.empty());
    for (Dtype dtype : {Dtype::kF32, Dtype::kBf16, Dtype::kInt8}) {
        ScopedDtype scoped_dtype(dtype);
        for (Isa isa : SupportedTiers()) {
            ScopedIsa scoped(isa);
            const auto got = verify::GoldenRun(config);
            const auto div = verify::CompareCanonical(base, got);
            EXPECT_FALSE(div.diverged)
                << kernels::DtypeName(dtype) << " under "
                << kernels::IsaName(isa) << ": " << div.detail;
        }
    }
}

TEST(KernelTraceTest, DifferentialPassesUnderEveryPrecision)
{
    for (Dtype dtype : {Dtype::kBf16, Dtype::kInt8}) {
        ScopedDtype scoped_dtype(dtype);
        const auto result =
            verify::RunDifferential(TraceConfig(verify::Subject::kDhe));
        EXPECT_TRUE(result.passed)
            << kernels::DtypeName(dtype) << ": " << result.detail;
    }
}

}  // namespace
}  // namespace secemb
