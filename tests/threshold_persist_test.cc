/**
 * @file
 * Tests for threshold-database persistence (Algorithm 2's "profile once
 * per system" product).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/hybrid.h"

namespace secemb::core {
namespace {

class ThresholdPersistTest : public ::testing::Test
{
  protected:
    std::string
    Path(const char* name)
    {
        const std::string p =
            (std::filesystem::temp_directory_path() /
             (std::string("secemb_thr_") + name))
                .string();
        paths_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const auto& p : paths_) std::remove(p.c_str());
    }

    std::vector<std::string> paths_;
};

TEST_F(ThresholdPersistTest, RoundTrip)
{
    ThresholdTable table;
    table.Add({8, 1, 4096});
    table.Add({32, 1, 3300});
    table.Add({128, 4, 1500});
    const std::string path = Path("roundtrip.txt");
    SaveThresholds(table, path);

    const ThresholdTable loaded = LoadThresholds(path);
    ASSERT_EQ(loaded.entries().size(), 3u);
    EXPECT_EQ(loaded.Lookup(32, 1), 3300);
    EXPECT_EQ(loaded.Lookup(128, 4), 1500);
    EXPECT_EQ(loaded.Lookup(8, 1), 4096);
}

TEST_F(ThresholdPersistTest, EmptyTableRoundTrips)
{
    const std::string path = Path("empty.txt");
    SaveThresholds(ThresholdTable(), path);
    const ThresholdTable loaded = LoadThresholds(path);
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded.Lookup(32, 1, 777), 777);
}

TEST_F(ThresholdPersistTest, MissingFileThrows)
{
    EXPECT_THROW(LoadThresholds("/nonexistent/secemb_thresholds.txt"),
                 std::runtime_error);
}

TEST_F(ThresholdPersistTest, CorruptFileThrows)
{
    const std::string path = Path("corrupt.txt");
    std::ofstream(path) << "32 1 notanumber\n";
    EXPECT_THROW(LoadThresholds(path), std::runtime_error);
}

TEST(ThresholdTableTest, AddRejectsNonPositiveConfigurations)
{
    // Regression: entries with batch_size <= 0 or nthreads <= 0 made
    // Lookup's log2 ratios NaN; NaN never compares < best_dist, so every
    // lookup silently returned the fallback. Such entries must be
    // rejected at insertion.
    ThresholdTable table;
    EXPECT_THROW(table.Add({0, 1, 4096}), std::invalid_argument);
    EXPECT_THROW(table.Add({-8, 1, 4096}), std::invalid_argument);
    EXPECT_THROW(table.Add({32, 0, 4096}), std::invalid_argument);
    EXPECT_THROW(table.Add({32, -2, 4096}), std::invalid_argument);
    EXPECT_THROW(table.Add({32, 1, -1}), std::invalid_argument);
    EXPECT_TRUE(table.empty());

    table.Add({32, 1, 4096});  // valid rows still accepted
    EXPECT_EQ(table.Lookup(32, 1), 4096);
}

TEST_F(ThresholdPersistTest, LoadRejectsNonPositiveRowsWithRowContext)
{
    // A corrupt persisted database (parseable numbers, invalid values)
    // must fail the load with a clear error instead of producing a table
    // whose every lookup silently falls back.
    const std::string path = Path("badrow.txt");
    std::ofstream(path) << "32 1 4096\n0 1 1000\n";
    try {
        LoadThresholds(path);
        FAIL() << "expected LoadThresholds to reject the bad row";
    } catch (const std::runtime_error& err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("row 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("batch_size"), std::string::npos) << msg;
    }

    const std::string path2 = Path("badrow_threads.txt");
    std::ofstream(path2) << "32 -4 4096\n";
    EXPECT_THROW(LoadThresholds(path2), std::runtime_error);
}

TEST(ThresholdTableTest, LookupNearestAfterValidation)
{
    // With validation in place, nearest-configuration lookup behaves for
    // every stored entry (no NaN distances possible).
    ThresholdTable table;
    table.Add({8, 1, 4000});
    table.Add({64, 4, 2000});
    EXPECT_EQ(table.Lookup(8, 1), 4000);
    EXPECT_EQ(table.Lookup(9, 1), 4000);
    EXPECT_EQ(table.Lookup(128, 8), 2000);
}

TEST_F(ThresholdPersistTest, LoadedTableDrivesHybridDeployment)
{
    ThresholdTable table;
    table.Add({32, 1, 1000});
    const std::string path = Path("deploy.txt");
    SaveThresholds(table, path);
    const ThresholdTable loaded = LoadThresholds(path);

    Rng rng(1);
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    HybridGenerator small(dhe, 100, loaded, 32, 1);
    HybridGenerator large(dhe, 50000, loaded, 32, 1);
    EXPECT_EQ(small.active_technique(), Technique::kLinearScan);
    EXPECT_EQ(large.active_technique(), Technique::kDhe);
}

}  // namespace
}  // namespace secemb::core
