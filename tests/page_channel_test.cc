/**
 * @file
 * Tests for the page-fault controlled-channel observer (paper §III-A2):
 * page-granular localisation of a non-secure lookup, composition with
 * the cache channel, and defeat by the oblivious generators.
 */

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/table_generators.h"
#include "sidechannel/page_channel.h"

namespace secemb::sidechannel {
namespace {

TEST(PageObserverTest, ObservePagesDeduplicatesInOrder)
{
    PageFaultObserver obs(4096);
    std::vector<MemoryAccess> trace{
        {0x1000, 64, false},   // page 1
        {0x1800, 64, false},   // page 1 again
        {0x2000, 64, false},   // page 2
        {0x0ff0, 32, false},   // spans pages 0 and 1
    };
    const auto pages = obs.ObservePages(trace);
    EXPECT_EQ(pages, (std::vector<uint64_t>{1, 2, 0}));
}

TEST(PageObserverTest, AccessSpanningManyPages)
{
    PageFaultObserver obs(4096);
    std::vector<MemoryAccess> trace{{0x0, 4096 * 3, false}};
    EXPECT_EQ(obs.ObservePages(trace).size(), 3u);
}

class PageAttackTest : public ::testing::Test
{
  protected:
    // 4096 rows x 64 dims x 4 B = 1 MiB table = 256 pages of 16 rows.
    static constexpr int64_t kRows = 4096;
    static constexpr int64_t kDim = 64;
};

TEST_F(PageAttackTest, LocalisesNonSecureLookupToOnePage)
{
    Rng rng(1);
    core::TableLookup victim(Tensor::Randn({kRows, kDim}, rng));
    TraceRecorder rec;
    victim.set_recorder(&rec);
    PageFaultObserver obs;

    for (int64_t secret : {int64_t{0}, int64_t{1000}, kRows - 1}) {
        rec.Clear();
        Tensor out({1, kDim});
        std::vector<int64_t> b{secret};
        victim.Generate(b, out);
        const auto range = obs.InferIndexRange(
            rec.trace(), victim.trace_base(), kDim * 4, kRows);
        ASSERT_TRUE(range.Localised()) << "secret " << secret;
        EXPECT_TRUE(range.Contains(secret)) << "secret " << secret;
        // Page granularity: 4096 / (64*4) = 16 rows per page.
        EXPECT_LE(range.Width(), 17);
    }
}

TEST_F(PageAttackTest, LinearScanDefeatsPageChannel)
{
    Rng rng(2);
    core::LinearScanTable victim(Tensor::Randn({kRows, kDim}, rng));
    TraceRecorder rec;
    victim.set_recorder(&rec);
    Tensor out({1, kDim});
    std::vector<int64_t> b{1000};
    victim.Generate(b, out);
    PageFaultObserver obs;
    const auto range = obs.InferIndexRange(
        rec.trace(), victim.trace_base(), kDim * 4, kRows);
    // Every page is touched: nothing to localise.
    EXPECT_FALSE(range.Localised());
}

TEST_F(PageAttackTest, DheHasNoTablePagesAtAll)
{
    // DHE has no embedding table, so there are no per-row pages for the
    // observer to fault on: the only recorded access is one read of the
    // whole decoder parameter region, identical for every secret.
    Rng rng(3);
    auto gen =
        core::MakeGenerator(core::GenKind::kDheVaried, kRows, kDim, rng);
    TraceRecorder rec;
    gen->set_recorder(&rec);
    Tensor out({1, kDim});
    std::vector<int64_t> b{1000};
    gen->Generate(b, out);
    ASSERT_EQ(rec.trace().size(), 1u);
    const MemoryAccess whole_params = rec.trace()[0];
    EXPECT_EQ(static_cast<int64_t>(whole_params.size),
              gen->MemoryFootprintBytes());

    rec.Clear();
    std::vector<int64_t> other{1};
    gen->Generate(other, out);
    ASSERT_EQ(rec.trace().size(), 1u);
    EXPECT_EQ(rec.trace()[0], whole_params);
}

TEST_F(PageAttackTest, ChannelsComposePageThenCache)
{
    // The paper: page faults give coarse location, the cache channel
    // resolves within it. Verify the containment relationship: the page
    // range always contains the row, and is at most page/row_bytes wide,
    // so a row-granular cache attack inside that window has only ~16
    // candidates left.
    Rng rng(4);
    core::TableLookup victim(Tensor::Randn({kRows, kDim}, rng));
    TraceRecorder rec;
    victim.set_recorder(&rec);
    PageFaultObserver obs;
    Rng secret_rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        const int64_t secret =
            static_cast<int64_t>(secret_rng.NextBounded(kRows));
        rec.Clear();
        Tensor out({1, kDim});
        std::vector<int64_t> b{secret};
        victim.Generate(b, out);
        const auto range = obs.InferIndexRange(
            rec.trace(), victim.trace_base(), kDim * 4, kRows);
        ASSERT_TRUE(range.Localised());
        EXPECT_TRUE(range.Contains(secret));
        EXPECT_LE(range.Width(), 17);
    }
}

}  // namespace
}  // namespace secemb::sidechannel
