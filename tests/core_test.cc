/**
 * @file
 * Tests for the core embedding-generation API: correctness of every
 * generator, obliviousness of the secure ones, hybrid planning, the
 * factory, and memory-footprint ordering (the Table VI relationships).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/factory.h"
#include "core/hybrid.h"
#include "core/table_generators.h"
#include "sidechannel/oblivious_check.h"

namespace secemb::core {
namespace {

constexpr int64_t kRows = 64;
constexpr int64_t kDim = 8;

Tensor
FixedTable(uint64_t seed)
{
    Rng rng(seed);
    return Tensor::Randn({kRows, kDim}, rng);
}

// --- correctness of table-backed generators ------------------------------

class TableBackedTest : public ::testing::TestWithParam<GenKind>
{
};

TEST_P(TableBackedTest, MatchesDirectLookup)
{
    const Tensor table = FixedTable(1);
    Rng rng(2);
    GeneratorOptions opt;
    opt.table = &table;
    auto gen = MakeGenerator(GetParam(), kRows, kDim, rng, opt);

    std::vector<int64_t> ids{0, 5, 17, 63, 5};
    Tensor out({5, kDim});
    gen->Generate(ids, out);
    for (size_t i = 0; i < ids.size(); ++i) {
        for (int64_t j = 0; j < kDim; ++j) {
            EXPECT_NEAR(out.at(static_cast<int64_t>(i), j),
                        table.at(ids[i], j), 1e-6f)
                << GenKindName(GetParam()) << " id " << ids[i];
        }
    }
}

TEST_P(TableBackedTest, ReportsExpectedMetadata)
{
    const Tensor table = FixedTable(3);
    Rng rng(4);
    GeneratorOptions opt;
    opt.table = &table;
    auto gen = MakeGenerator(GetParam(), kRows, kDim, rng, opt);
    EXPECT_EQ(gen->dim(), kDim);
    EXPECT_EQ(gen->num_rows(), kRows);
    EXPECT_GT(gen->MemoryFootprintBytes(), 0);
    EXPECT_EQ(gen->IsOblivious(),
              GetParam() != GenKind::kIndexLookup);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TableBackedTest,
    ::testing::Values(GenKind::kIndexLookup, GenKind::kLinearScan,
                      GenKind::kPathOram, GenKind::kCircuitOram),
    [](const auto& info) {
        switch (info.param) {
          case GenKind::kIndexLookup: return "IndexLookup";
          case GenKind::kLinearScan: return "LinearScan";
          case GenKind::kPathOram: return "PathOram";
          case GenKind::kCircuitOram: return "CircuitOram";
          default: return "Other";
        }
    });

TEST(LinearScanTest, MultiThreadMatchesSingle)
{
    const Tensor table = FixedTable(5);
    LinearScanTable a(table), b(table);
    b.set_nthreads(4);
    std::vector<int64_t> ids{1, 2, 3, 4, 5, 6, 7, 8};
    Tensor oa({8, kDim}), ob({8, kDim});
    a.Generate(ids, oa);
    b.Generate(ids, ob);
    EXPECT_TRUE(oa.AllClose(ob));
}

TEST(OramGeneratorTest, RepeatedBatchesStayCorrect)
{
    const Tensor table = FixedTable(6);
    Rng rng(7);
    OramTable gen(table, oram::OramKind::kCircuit, rng);
    Rng wl(8);
    for (int round = 0; round < 20; ++round) {
        std::vector<int64_t> ids(8);
        for (auto& id : ids) {
            id = static_cast<int64_t>(wl.NextBounded(kRows));
        }
        Tensor out({8, kDim});
        gen.Generate(ids, out);
        for (size_t i = 0; i < ids.size(); ++i) {
            for (int64_t j = 0; j < kDim; ++j) {
                ASSERT_NEAR(out.at(static_cast<int64_t>(i), j),
                            table.at(ids[i], j), 1e-6f);
            }
        }
    }
}

// --- DHE generator --------------------------------------------------------

TEST(DheGeneratorTest, DeterministicAndObliviousMetadata)
{
    Rng rng(9);
    auto gen = MakeGenerator(GenKind::kDheUniform, 1000, 16, rng);
    EXPECT_EQ(gen->name(), "DHE");
    EXPECT_TRUE(gen->IsOblivious());
    std::vector<int64_t> ids{1, 999};
    Tensor a({2, 16}), b({2, 16});
    gen->Generate(ids, a);
    gen->Generate(ids, b);
    EXPECT_TRUE(a.AllClose(b));
}

TEST(DheGeneratorTest, VariedSmallerThanUniform)
{
    Rng rng(10);
    auto uniform = MakeGenerator(GenKind::kDheUniform, 1000, 16, rng);
    auto varied = MakeGenerator(GenKind::kDheVaried, 1000, 16, rng);
    EXPECT_LT(varied->MemoryFootprintBytes(),
              uniform->MemoryFootprintBytes());
}

// --- obliviousness property: trace identical across secrets --------------

class ObliviousTraceTest : public ::testing::TestWithParam<GenKind>
{
};

TEST_P(ObliviousTraceTest, LinearScanStyleTraceIndependentOfSecret)
{
    const Tensor table = FixedTable(11);
    Rng rng(12);
    GeneratorOptions opt;
    opt.table = &table;
    auto gen = MakeGenerator(GetParam(), kRows, kDim, rng, opt);
    sidechannel::TraceRecorder rec;
    gen->set_recorder(&rec);

    Tensor out({1, kDim});
    std::vector<int64_t> a{2};
    gen->Generate(a, out);
    auto trace_a = rec.trace();
    rec.Clear();
    std::vector<int64_t> b{61};
    gen->Generate(b, out);
    const auto r = sidechannel::CompareTraces(trace_a, rec.trace());
    EXPECT_TRUE(r.identical) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Kinds, ObliviousTraceTest,
                         ::testing::Values(GenKind::kLinearScan),
                         [](const auto&) { return "LinearScan"; });

TEST(OramTraceTest, TraceShapeIndependentOfSecret)
{
    // ORAM traces are randomised, but their *shape* (lengths, r/w
    // pattern, sizes) must not depend on the secret index.
    const Tensor table = FixedTable(13);
    for (auto kind : {oram::OramKind::kPath, oram::OramKind::kCircuit}) {
        Rng rng(14);
        oram::OramParams params = oram::OramParams::Defaults(kind);
        sidechannel::TraceRecorder rec;
        params.recorder = &rec;
        OramTable gen(table, kind, rng, &params);

        Tensor out({1, kDim});
        std::vector<int64_t> a{0};
        gen.Generate(a, out);
        const auto trace_a = rec.trace();
        rec.Clear();
        std::vector<int64_t> b{63};
        gen.Generate(b, out);
        const auto r = sidechannel::CompareTraces(trace_a, rec.trace());
        EXPECT_TRUE(r.same_shape)
            << "kind " << static_cast<int>(kind) << " " << r.detail;
    }
}

TEST(OramTraceTest, PathChoicesUniformOverLeaves)
{
    // Bucket addresses visited must be driven by uniform leaves: count
    // leaf-level bucket visits while repeatedly reading the same id.
    const Tensor table = FixedTable(15);
    Rng rng(16);
    oram::OramParams params =
        oram::OramParams::Defaults(oram::OramKind::kPath);
    OramTable gen(table, oram::OramKind::kPath, rng, &params);
    auto& oram = gen.oram();
    const int64_t leaves = oram.num_leaves();
    std::vector<int64_t> counts(static_cast<size_t>(leaves), 0);
    std::vector<uint32_t> block(static_cast<size_t>(kDim));
    // Same secret every time: a leaking implementation would revisit the
    // same path; Path ORAM must touch uniformly random paths.
    sidechannel::TraceRecorder rec;
    const int kAccesses = 2000;
    Rng probe(17);
    for (int i = 0; i < kAccesses; ++i) {
        oram.Read(7, block);
    }
    // Statistical check via the stats counters is indirect; instead make
    // a weaker but robust assertion: repeated single-id access does not
    // blow up the stash (blocks are re-dispersed across leaves).
    EXPECT_LT(oram.StashOccupancy(), 50);
}

// --- hybrid scheme --------------------------------------------------------

TEST(ThresholdTableTest, NearestConfigurationWins)
{
    ThresholdTable t;
    t.Add({32, 1, 3300});
    t.Add({128, 1, 1000});
    t.Add({32, 8, 9000});
    EXPECT_EQ(t.Lookup(32, 1), 3300);
    EXPECT_EQ(t.Lookup(128, 1), 1000);
    EXPECT_EQ(t.Lookup(100, 1), 1000);  // nearest in log-batch
    EXPECT_EQ(t.Lookup(32, 6), 9000);
    EXPECT_EQ(ThresholdTable().Lookup(32, 1, 1234), 1234);
}

TEST(HybridTest, ChoosesByThreshold)
{
    EXPECT_EQ(ChooseTechnique(100, 4096), Technique::kLinearScan);
    EXPECT_EQ(ChooseTechnique(5000, 4096), Technique::kDhe);
    EXPECT_EQ(ChooseTechnique(4096, 4096), Technique::kDhe);
}

TEST(HybridTest, ThresholdBoundaryTieBreak)
{
    // Regression pin for the boundary: a table exactly at the profiled
    // threshold is served by DHE. The threshold is the smallest table
    // size where DHE measured at least as fast as the scan, so the
    // boundary belongs to the DHE side — and one off either way flips.
    EXPECT_EQ(ChooseTechnique(4096, 4096), Technique::kDhe);
    EXPECT_EQ(ChooseTechnique(4095, 4096), Technique::kLinearScan);
    EXPECT_EQ(ChooseTechnique(4097, 4096), Technique::kDhe);
    EXPECT_EQ(ChooseTechnique(1, 1), Technique::kDhe);
    EXPECT_EQ(ChooseTechnique(0, 1), Technique::kLinearScan);
    // Threshold 0 disables the scan side entirely.
    EXPECT_EQ(ChooseTechnique(0, 0), Technique::kDhe);

    // The whole generator honours the tie-break, not just the planner:
    // a table exactly at the threshold lands on DHE.
    Rng rng(77);
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    ThresholdTable thresholds;
    thresholds.Add({32, 1, 500});
    HybridGenerator at(dhe, /*table_size=*/500, thresholds, 32, 1);
    EXPECT_EQ(at.active_technique(), Technique::kDhe);
    HybridGenerator below(dhe, /*table_size=*/499, thresholds, 32, 1);
    EXPECT_EQ(below.active_technique(), Technique::kLinearScan);
}

TEST(HybridTest, SmallTableUsesScanAndMatchesDheOutputs)
{
    Rng rng(18);
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    ThresholdTable thresholds;
    thresholds.Add({32, 1, 1000});

    HybridGenerator hybrid(dhe, /*table_size=*/50, thresholds, 32, 1);
    EXPECT_EQ(hybrid.active_technique(), Technique::kLinearScan);
    EXPECT_EQ(hybrid.name(), "Hybrid(LinearScan)");

    // The materialised table must reproduce the DHE's outputs exactly
    // (Algorithm 2: tables are generated from the trained DHE).
    std::vector<int64_t> ids{0, 13, 49};
    Tensor from_hybrid({3, 4});
    hybrid.Generate(ids, from_hybrid);
    const Tensor from_dhe = dhe->Forward(ids);
    EXPECT_TRUE(from_hybrid.AllClose(from_dhe, 1e-5f));
}

TEST(HybridTest, LargeTableUsesDhe)
{
    Rng rng(19);
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    ThresholdTable thresholds;
    thresholds.Add({32, 1, 1000});
    HybridGenerator hybrid(dhe, /*table_size=*/100000, thresholds, 32, 1);
    EXPECT_EQ(hybrid.active_technique(), Technique::kDhe);
}

TEST(HybridTest, ReconfigureSwitchesTechnique)
{
    Rng rng(20);
    dhe::DheConfig cfg;
    cfg.k = 16;
    cfg.fc_hidden = {8};
    cfg.out_dim = 4;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    ThresholdTable thresholds;
    thresholds.Add({32, 1, 1000});   // scan below 1000
    thresholds.Add({128, 1, 10});    // scan below 10 only
    HybridGenerator hybrid(dhe, 500, thresholds, 32, 1);
    EXPECT_EQ(hybrid.active_technique(), Technique::kLinearScan);
    hybrid.Reconfigure(thresholds, 128, 1);
    EXPECT_EQ(hybrid.active_technique(), Technique::kDhe);
}

TEST(HybridTest, FootprintIsRepresentationInUse)
{
    Rng rng(21);
    dhe::DheConfig cfg;
    cfg.k = 64;
    cfg.fc_hidden = {64};
    cfg.out_dim = 16;
    auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng);
    ThresholdTable thresholds;
    thresholds.Add({32, 1, 1000});
    HybridGenerator small(dhe, 20, thresholds, 32, 1);
    // 20 x 16 floats = 1280 bytes, far below the DHE decoder.
    EXPECT_EQ(small.MemoryFootprintBytes(), 20 * 16 * 4);
    HybridGenerator big(dhe, 100000, thresholds, 32, 1);
    EXPECT_EQ(big.MemoryFootprintBytes(), dhe->ParamBytes());
}

// --- pooled (multi-hot) generation ----------------------------------------

class PooledTest : public ::testing::TestWithParam<GenKind>
{
};

TEST_P(PooledTest, MatchesManualSegmentSum)
{
    const Tensor table = FixedTable(30);
    Rng rng(31);
    GeneratorOptions opt;
    opt.table = &table;
    auto gen = MakeGenerator(GetParam(), kRows, kDim, rng, opt);

    // Three bags: {1,2}, {}, {5,6,7}.
    const std::vector<int64_t> indices{1, 2, 5, 6, 7};
    const std::vector<int64_t> offsets{0, 2, 2, 5};
    Tensor out({3, kDim});
    gen->GeneratePooled(indices, offsets, out);

    const Tensor all = gen->GenerateBatch(indices);
    for (int64_t j = 0; j < kDim; ++j) {
        EXPECT_NEAR(out.at(0, j), all.at(0, j) + all.at(1, j), 1e-4f);
        EXPECT_FLOAT_EQ(out.at(1, j), 0.0f);  // empty bag
        EXPECT_NEAR(out.at(2, j),
                    all.at(2, j) + all.at(3, j) + all.at(4, j), 1e-4f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PooledTest,
    ::testing::Values(GenKind::kIndexLookup, GenKind::kLinearScan,
                      GenKind::kCircuitOram, GenKind::kDheVaried),
    [](const auto& info) {
        switch (info.param) {
          case GenKind::kIndexLookup: return "IndexLookup";
          case GenKind::kLinearScan: return "LinearScan";
          case GenKind::kCircuitOram: return "CircuitOram";
          default: return "DheVaried";
        }
    });

TEST(PooledTest, LinearScanPooledTraceIndependentOfIds)
{
    const Tensor table = FixedTable(32);
    LinearScanTable gen(table);
    sidechannel::TraceRecorder rec;
    gen.set_recorder(&rec);
    const std::vector<int64_t> offsets{0, 2, 3};
    Tensor out({2, kDim});
    gen.GeneratePooled(std::vector<int64_t>{1, 2, 3}, offsets, out);
    auto trace_a = rec.trace();
    rec.Clear();
    gen.GeneratePooled(std::vector<int64_t>{60, 61, 62}, offsets, out);
    EXPECT_TRUE(
        sidechannel::CompareTraces(trace_a, rec.trace()).identical);
}

// --- factory / footprint ordering ----------------------------------------

TEST(FactoryTest, NamesAndSecurity)
{
    EXPECT_EQ(GenKindName(GenKind::kIndexLookup),
              "Index Lookup (non-secure)");
    EXPECT_FALSE(GenKindIsSecure(GenKind::kIndexLookup));
    EXPECT_TRUE(GenKindIsSecure(GenKind::kCircuitOram));
    EXPECT_TRUE(GenKindIsSecure(GenKind::kHybridVaried));
}

TEST(FactoryTest, FootprintOrderingMatchesTableVI)
{
    // ORAM > table > DHE for a large table, as in the paper's Table VI.
    Rng rng(22);
    const int64_t rows = 20000, dim = 16;
    auto lookup = MakeGenerator(GenKind::kIndexLookup, rows, dim, rng);
    auto oram = MakeGenerator(GenKind::kCircuitOram, rows, dim, rng);
    auto dhe = MakeGenerator(GenKind::kDheVaried, rows, dim, rng);
    EXPECT_GT(oram->MemoryFootprintBytes(),
              lookup->MemoryFootprintBytes());
    EXPECT_LT(dhe->MemoryFootprintBytes(),
              lookup->MemoryFootprintBytes());
}

TEST(FactoryTest, GenerateBatchHelper)
{
    Rng rng(23);
    auto gen = MakeGenerator(GenKind::kLinearScan, 10, 4, rng);
    const Tensor out = gen->GenerateBatch(std::vector<int64_t>{1, 2});
    EXPECT_EQ(out.shape(), (Shape{2, 4}));
}

}  // namespace
}  // namespace secemb::core
