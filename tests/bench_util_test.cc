/**
 * @file
 * Tests for the benchmark plumbing: timers, table formatting, flags.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"

namespace secemb::bench {
namespace {

double benchmark_dummy_ = 0.0;

TEST(WallTimerTest, MeasuresElapsedTime)
{
    WallTimer t;
    double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i * 0.5;
    benchmark_dummy_ = sink;  // defeat optimisation via member store
    EXPECT_GT(t.ElapsedNs(), 0.0);
    EXPECT_NEAR(t.ElapsedMs(), t.ElapsedNs() * 1e-6, 1.0);
}

TEST(TimeCallTest, AveragesOverReps)
{
    int calls = 0;
    const double ns = TimeCallNs([&] { ++calls; }, /*warmup=*/2,
                                 /*reps=*/5);
    EXPECT_EQ(calls, 7);
    EXPECT_GE(ns, 0.0);
}

TEST(TablePrinterTest, Formatters)
{
    EXPECT_EQ(TablePrinter::Ms(1.5e6, 2), "1.50");
    EXPECT_EQ(TablePrinter::Mb(1048576, 1), "1.0");
    EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.142");
    EXPECT_EQ(TablePrinter::Num(-2.5, 0), "-2");
}

TEST(TablePrinterTest, PrintsWithoutCrashing)
{
    TablePrinter t({"a", "long header"});
    t.AddRow({"1", "2"});
    t.AddRow({"wide cell content", "3"});
    t.AddRow({"short"});  // ragged row tolerated
    testing::internal::CaptureStdout();
    t.Print();
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("long header"), std::string::npos);
    EXPECT_NE(out.find("wide cell content"), std::string::npos);
}

TEST(ArgsTest, ParsesIntDoubleBool)
{
    const char* argv[] = {"prog", "--scale", "100", "--ratio", "2.5",
                          "--flag"};
    Args args(6, const_cast<char**>(argv));
    EXPECT_EQ(args.GetInt("--scale", 1), 100);
    EXPECT_EQ(args.GetInt("--missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.GetDouble("--ratio", 0.0), 2.5);
    EXPECT_TRUE(args.GetBool("--flag"));
    EXPECT_FALSE(args.GetBool("--other"));
}

TEST(ArgsTest, TrailingFlagWithoutValueIsAnError)
{
    // A present flag with no value is a user mistake, not a request for
    // the default — silently proceeding used to mask typos like
    // `--steps` with the value forgotten.
    const char* argv[] = {"prog", "--scale"};
    Args args(2, const_cast<char**>(argv));
    EXPECT_THROW(args.GetInt("--scale", 42), std::runtime_error);
    EXPECT_THROW(args.GetString("--scale", "d"), std::runtime_error);
    // Absent flags still fall back to the default.
    EXPECT_EQ(args.GetInt("--missing", 42), 42);
}

TEST(ArgsTest, MalformedIntValuesAreRejected)
{
    const char* argv[] = {"prog",    "--steps", "abc",  "--junk", "12x",
                          "--big",   "99999999999999999999999999",
                          "--float", "1.5",     "--neg", "-17"};
    Args args(11, const_cast<char**>(argv));
    // Not a number at all.
    EXPECT_THROW(args.GetInt("--steps", 1), std::runtime_error);
    // Trailing junk (std::stoll used to silently return 12 here).
    EXPECT_THROW(args.GetInt("--junk", 1), std::runtime_error);
    // Out of int64 range.
    EXPECT_THROW(args.GetInt("--big", 1), std::runtime_error);
    // A fractional value is not an integer.
    EXPECT_THROW(args.GetInt("--float", 1), std::runtime_error);
    // Signed values parse.
    EXPECT_EQ(args.GetInt("--neg", 1), -17);
    // The error names the flag and the offending text.
    try {
        args.GetInt("--steps", 1);
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("--steps"), std::string::npos);
        EXPECT_NE(what.find("abc"), std::string::npos);
    }
}

TEST(ArgsTest, MalformedDoubleValuesAreRejected)
{
    const char* argv[] = {"prog", "--ratio", "2.5e",   "--word", "nope",
                          "--huge", "1e9999", "--ok",  "3.25e-2"};
    Args args(9, const_cast<char**>(argv));
    EXPECT_THROW(args.GetDouble("--ratio", 1.0), std::runtime_error);
    EXPECT_THROW(args.GetDouble("--word", 1.0), std::runtime_error);
    EXPECT_THROW(args.GetDouble("--huge", 1.0), std::runtime_error);
    EXPECT_DOUBLE_EQ(args.GetDouble("--ok", 0.0), 3.25e-2);
    EXPECT_DOUBLE_EQ(args.GetDouble("--missing", 0.5), 0.5);
}

TEST(ArgsTest, GetStringReturnsValueOrDefault)
{
    const char* argv[] = {"prog", "--json", "out.json", "--name",
                          "linear scan", "--tail"};
    Args args(6, const_cast<char**>(argv));
    EXPECT_EQ(args.GetString("--json"), "out.json");
    EXPECT_EQ(args.GetString("--name", "x"), "linear scan");
    EXPECT_EQ(args.GetString("--missing"), "");
    EXPECT_EQ(args.GetString("--missing", "fallback"), "fallback");
    // A flag in last position has no value: that is an error now.
    EXPECT_THROW(args.GetString("--tail", "dflt"), std::runtime_error);
}

TEST(TimeCallSamplesTest, ReturnsOneSamplePerRep)
{
    int calls = 0;
    const std::vector<double> samples =
        TimeCallSamplesNs([&] { ++calls; }, /*warmup=*/2, /*reps=*/5);
    EXPECT_EQ(calls, 7);
    ASSERT_EQ(samples.size(), 5u);
    for (const double s : samples) EXPECT_GE(s, 0.0);
}

// --- JSON plumbing ---------------------------------------------------------

TEST(JsonWriterTest, NestedStructuresAndEscaping)
{
    JsonWriter w;
    w.BeginObject();
    w.Key("s").Value(std::string_view("a\"b\\c\nd"));
    w.Key("i").Value(static_cast<int64_t>(-3));
    w.Key("u").Value(static_cast<uint64_t>(7));
    w.Key("b").Value(true);
    w.Key("arr").BeginArray().Value(1.5).Value(2.5).EndArray();
    w.Key("obj").BeginObject().Key("k").Value(false).EndObject();
    w.EndObject();
    EXPECT_EQ(w.str(),
              "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"u\":7,\"b\":true,"
              "\"arr\":[1.5,2.5],\"obj\":{\"k\":false}}");
}

TEST(JsonParseTest, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.BeginObject();
    w.Key("name").Value(std::string_view("scan \"fast\""));
    w.Key("vals").BeginArray().Value(static_cast<int64_t>(1)).Value(2.25)
        .EndArray();
    w.EndObject();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonParse(w.str(), &doc, &error)) << error;
    const JsonValue* name = doc.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->str_v, "scan \"fast\"");
    const JsonValue* vals = doc.Find("vals");
    ASSERT_NE(vals, nullptr);
    ASSERT_EQ(vals->array_v.size(), 2u);
    EXPECT_DOUBLE_EQ(vals->array_v[0].num_v, 1.0);
    EXPECT_DOUBLE_EQ(vals->array_v[1].num_v, 2.25);
}

TEST(JsonParseTest, RejectsMalformedInput)
{
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(JsonParse("{\"a\":}", &doc, &error));
    EXPECT_FALSE(JsonParse("[1,2", &doc, &error));
    EXPECT_FALSE(JsonParse("{\"a\":1} trailing", &doc, &error));
    EXPECT_FALSE(JsonParse("\"unterminated", &doc, &error));
    EXPECT_FALSE(JsonParse("", &doc, &error));
}

TEST(LatencyStatsTest, FromSamplesMatchesSortedReference)
{
    // 1..100 shuffled: p50 = 50, p95 = 95, p99 = 99 by rank = ceil(p*n).
    std::vector<double> samples;
    for (int i = 100; i >= 1; --i) samples.push_back(i);
    const LatencyStats s = LatencyStats::FromSamples(samples);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.mean_ns, 50.5);
    EXPECT_DOUBLE_EQ(s.min_ns, 1.0);
    EXPECT_DOUBLE_EQ(s.max_ns, 100.0);
    EXPECT_DOUBLE_EQ(s.p50_ns, 50.0);
    EXPECT_DOUBLE_EQ(s.p95_ns, 95.0);
    EXPECT_DOUBLE_EQ(s.p99_ns, 99.0);
}

TEST(LatencyStatsTest, EmptyAndSingleSample)
{
    const LatencyStats empty = LatencyStats::FromSamples({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.mean_ns, 0.0);

    const LatencyStats one = LatencyStats::FromSamples({42.0});
    EXPECT_EQ(one.count, 1u);
    EXPECT_DOUBLE_EQ(one.p50_ns, 42.0);
    EXPECT_DOUBLE_EQ(one.p99_ns, 42.0);
    EXPECT_DOUBLE_EQ(one.min_ns, 42.0);
    EXPECT_DOUBLE_EQ(one.max_ns, 42.0);
}

TEST(BenchReportTest, EmitsSchemaStableDocument)
{
    BenchReport report("unit_bench");
    auto& r = report.AddResult("method_a");
    r.num_params.emplace_back("scale", 10.0);
    r.str_params.emplace_back("dataset", "kaggle");
    r.latency = LatencyStats::FromSamples({100.0, 200.0, 300.0});
    r.counters.emplace_back("scan.rows", 4096u);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonParse(report.ToJson(), &doc, &error)) << error;
    ASSERT_NE(doc.Find("schema"), nullptr);
    EXPECT_EQ(doc.Find("schema")->str_v, "secemb-bench-v1");
    EXPECT_EQ(doc.Find("bench")->str_v, "unit_bench");
    const JsonValue* results = doc.Find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array_v.size(), 1u);
    const JsonValue& res = results->array_v[0];
    EXPECT_EQ(res.Find("name")->str_v, "method_a");
    EXPECT_DOUBLE_EQ(res.Find("params")->Find("scale")->num_v, 10.0);
    EXPECT_EQ(res.Find("params")->Find("dataset")->str_v, "kaggle");
    const JsonValue* lat = res.Find("latency_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_DOUBLE_EQ(lat->Find("count")->num_v, 3.0);
    EXPECT_DOUBLE_EQ(lat->Find("mean")->num_v, 200.0);
    EXPECT_DOUBLE_EQ(lat->Find("p99")->num_v, 300.0);
    EXPECT_DOUBLE_EQ(res.Find("counters")->Find("scan.rows")->num_v,
                     4096.0);
}

// --- escaping hardening ----------------------------------------------------

TEST(JsonEscapeTest, AllControlCharactersRoundTrip)
{
    // Every byte below 0x20, plus quote and backslash, must escape into
    // a document the parser reads back verbatim — including 0x80-0xff
    // bytes, which must never sign-extend into a bogus \uffXX escape.
    std::string hostile;
    for (int c = 1; c < 0x20; ++c) hostile.push_back(static_cast<char>(c));
    hostile += "\"\\/";
    hostile.push_back(static_cast<char>(0xe2));  // multi-byte UTF-8 lead
    hostile.push_back(static_cast<char>(0x82));
    hostile.push_back(static_cast<char>(0xac));  // euro sign

    JsonWriter w;
    w.BeginObject();
    w.Key("s").Value(hostile);
    w.EndObject();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonParse(w.str(), &doc, &error)) << error << "\n"
                                                  << w.str();
    ASSERT_NE(doc.Find("s"), nullptr);
    EXPECT_EQ(doc.Find("s")->str_v, hostile);
    // No high byte may have produced a \uffXX-style sign-extended escape.
    EXPECT_EQ(w.str().find("\\uff"), std::string::npos) << w.str();
}

TEST(JsonEscapeTest, HostileBenchAndResultNamesSurviveReport)
{
    const std::string evil = "quote\" slash\\ newline\n tab\t bell\x07";
    BenchReport report(evil);
    auto& r = report.AddResult(evil + " result");
    r.str_params.emplace_back(evil, evil);
    r.latency = LatencyStats::FromMean(1.0, 1);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonParse(report.ToJson(), &doc, &error)) << error;
    EXPECT_EQ(doc.Find("bench")->str_v, evil);
    const JsonValue& res = doc.Find("results")->array_v[0];
    EXPECT_EQ(res.Find("name")->str_v, evil + " result");
    EXPECT_EQ(res.Find("params")->Find(evil)->str_v, evil);
}

TEST(JsonWriterTest, RawSplicesVerbatimWithCommas)
{
    JsonWriter w;
    w.BeginObject();
    w.Key("a").Value(int64_t{1});
    w.Key("b").Raw("{\"nested\":[1,2,3]}");
    w.Key("c").BeginArray();
    w.Raw("true");
    w.Raw("{\"x\":null}");
    w.EndArray();
    w.EndObject();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonParse(w.str(), &doc, &error)) << error << "\n"
                                                  << w.str();
    const JsonValue* b = doc.Find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->IsObject());
    EXPECT_EQ(b->Find("nested")->array_v.size(), 3u);
    const JsonValue* c = doc.Find("c");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->array_v.size(), 2u);
    EXPECT_EQ(c->array_v[0].kind, JsonValue::Kind::kBool);
}

TEST(JsonWriterTest, NonFiniteDoublesSerialiseAsNull)
{
    JsonWriter w;
    w.BeginObject();
    w.Key("nan").Value(std::nan(""));
    w.Key("inf").Value(std::numeric_limits<double>::infinity());
    w.Key("ok").Value(1.5);
    w.EndObject();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonParse(w.str(), &doc, &error)) << error;
    EXPECT_EQ(doc.Find("nan")->kind, JsonValue::Kind::kNull);
    EXPECT_EQ(doc.Find("inf")->kind, JsonValue::Kind::kNull);
    EXPECT_DOUBLE_EQ(doc.Find("ok")->num_v, 1.5);
}

}  // namespace
}  // namespace secemb::bench
