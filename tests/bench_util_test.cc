/**
 * @file
 * Tests for the benchmark plumbing: timers, table formatting, flags.
 */

#include <gtest/gtest.h>

#include "bench_util/bench_util.h"

namespace secemb::bench {
namespace {

double benchmark_dummy_ = 0.0;

TEST(WallTimerTest, MeasuresElapsedTime)
{
    WallTimer t;
    double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i * 0.5;
    benchmark_dummy_ = sink;  // defeat optimisation via member store
    EXPECT_GT(t.ElapsedNs(), 0.0);
    EXPECT_NEAR(t.ElapsedMs(), t.ElapsedNs() * 1e-6, 1.0);
}

TEST(TimeCallTest, AveragesOverReps)
{
    int calls = 0;
    const double ns = TimeCallNs([&] { ++calls; }, /*warmup=*/2,
                                 /*reps=*/5);
    EXPECT_EQ(calls, 7);
    EXPECT_GE(ns, 0.0);
}

TEST(TablePrinterTest, Formatters)
{
    EXPECT_EQ(TablePrinter::Ms(1.5e6, 2), "1.50");
    EXPECT_EQ(TablePrinter::Mb(1048576, 1), "1.0");
    EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.142");
    EXPECT_EQ(TablePrinter::Num(-2.5, 0), "-2");
}

TEST(TablePrinterTest, PrintsWithoutCrashing)
{
    TablePrinter t({"a", "long header"});
    t.AddRow({"1", "2"});
    t.AddRow({"wide cell content", "3"});
    t.AddRow({"short"});  // ragged row tolerated
    testing::internal::CaptureStdout();
    t.Print();
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("long header"), std::string::npos);
    EXPECT_NE(out.find("wide cell content"), std::string::npos);
}

TEST(ArgsTest, ParsesIntDoubleBool)
{
    const char* argv[] = {"prog", "--scale", "100", "--ratio", "2.5",
                          "--flag"};
    Args args(6, const_cast<char**>(argv));
    EXPECT_EQ(args.GetInt("--scale", 1), 100);
    EXPECT_EQ(args.GetInt("--missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.GetDouble("--ratio", 0.0), 2.5);
    EXPECT_TRUE(args.GetBool("--flag"));
    EXPECT_FALSE(args.GetBool("--other"));
}

TEST(ArgsTest, TrailingFlagWithoutValueUsesDefault)
{
    const char* argv[] = {"prog", "--scale"};
    Args args(2, const_cast<char**>(argv));
    EXPECT_EQ(args.GetInt("--scale", 42), 42);
}

}  // namespace
}  // namespace secemb::bench
