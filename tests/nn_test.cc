/**
 * @file
 * Tests for the NN layers: forward values, gradient checks against finite
 * differences, losses, optimisers, and a small end-to-end training run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/embedding.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "test_util.h"

namespace secemb::nn {
namespace {

using test::ExpectGradientsClose;

/** Scalar loss for gradient checks: sum of squares of module output. */
float
SumSquares(Module& m, const Tensor& x)
{
    const Tensor y = m.Forward(x);
    return 0.5f * y.SquaredNorm();
}

/** Analytic input gradient of SumSquares. */
Tensor
SumSquaresBackward(Module& m, const Tensor& x)
{
    Tensor y = m.Forward(x);
    return m.Backward(y);
}

TEST(LinearTest, ForwardMatchesManual)
{
    Rng rng(1);
    Linear lin(2, 3, rng);
    lin.weight().value = Tensor::Values({1, 2, 3, 4, 5, 6}).Reshape({2, 3});
    lin.bias().value = Tensor::Values({0.5f, -0.5f, 1.0f});
    const Tensor x = Tensor::Values({1, 1, 2, 0}).Reshape({2, 2});
    const Tensor y = lin.Forward(x);
    EXPECT_NEAR(y.at(0, 0), 1 + 4 + 0.5f, 1e-5f);
    EXPECT_NEAR(y.at(0, 1), 2 + 5 - 0.5f, 1e-5f);
    EXPECT_NEAR(y.at(1, 2), 6 + 1.0f, 1e-5f);
}

TEST(LinearTest, InputGradientCheck)
{
    Rng rng(2);
    Linear lin(4, 3, rng);
    const Tensor x = Tensor::Randn({5, 4}, rng);
    const Tensor gx = SumSquaresBackward(lin, x);
    ExpectGradientsClose([&](const Tensor& t) { return SumSquares(lin, t); },
                         x, gx);
}

TEST(LinearTest, WeightGradientCheck)
{
    Rng rng(3);
    Linear lin(3, 2, rng);
    const Tensor x = Tensor::Randn({4, 3}, rng);
    lin.ZeroGrad();
    Tensor y = lin.Forward(x);
    lin.Backward(y);
    const Tensor w = lin.weight().value;
    ExpectGradientsClose(
        [&](const Tensor& wt) {
            lin.weight().value = wt;
            const float loss = SumSquares(lin, x);
            lin.weight().value = w;
            return loss;
        },
        w, lin.weight().grad);
}

TEST(LinearTest, BiasGradientAccumulates)
{
    Rng rng(4);
    Linear lin(2, 2, rng);
    const Tensor x = Tensor::Randn({3, 2}, rng);
    lin.ZeroGrad();
    Tensor y = lin.Forward(x);
    Tensor ones = Tensor::Ones(y.shape());
    lin.Backward(ones);
    lin.Forward(x);
    lin.Backward(ones);
    // db = column sums of ones = batch, twice.
    EXPECT_NEAR(lin.bias().grad.at(0), 6.0f, 1e-5f);
}

class ActivationGradTest : public ::testing::Test
{
  protected:
    template <typename M>
    void
    Check(uint64_t seed)
    {
        Rng rng(seed);
        M act;
        const Tensor x = Tensor::Randn({4, 5}, rng);
        const Tensor gx = SumSquaresBackward(act, x);
        ExpectGradientsClose(
            [&](const Tensor& t) { return SumSquares(act, t); }, x, gx);
    }
};

TEST_F(ActivationGradTest, ReLU) { Check<ReLU>(10); }
TEST_F(ActivationGradTest, Sigmoid) { Check<Sigmoid>(11); }
TEST_F(ActivationGradTest, Tanh) { Check<Tanh>(12); }
TEST_F(ActivationGradTest, Gelu) { Check<Gelu>(13); }

TEST(ReLUTest, ForwardClampsNegative)
{
    ReLU relu;
    const Tensor y = relu.Forward(Tensor::Values({-1, 0, 2, -3}));
    EXPECT_TRUE(y.AllClose(Tensor::Values({0, 0, 2, 0})));
}

TEST(ReLUTest, ObliviousVariantMatches)
{
    Rng rng(14);
    Tensor x = Tensor::Randn({64}, rng);
    ReLU relu;
    const Tensor expect = relu.Forward(x);
    ObliviousReLUInPlace(x);
    EXPECT_TRUE(x.AllClose(expect));
}

TEST(GeluTest, KnownValues)
{
    Gelu gelu;
    const Tensor y = gelu.Forward(Tensor::Values({0.0f, 100.0f, -100.0f}));
    EXPECT_NEAR(y.at(0), 0.0f, 1e-6f);
    EXPECT_NEAR(y.at(1), 100.0f, 1e-3f);
    EXPECT_NEAR(y.at(2), 0.0f, 1e-3f);
}

TEST(LayerNormTest, NormalisesRows)
{
    LayerNorm ln(4);
    const Tensor x = Tensor::Values({1, 2, 3, 4, -2, 0, 2, 4}).Reshape({2, 4});
    const Tensor y = ln.Forward(x);
    for (int64_t i = 0; i < 2; ++i) {
        double mean = 0, var = 0;
        for (int64_t j = 0; j < 4; ++j) mean += y.at(i, j);
        mean /= 4;
        for (int64_t j = 0; j < 4; ++j) {
            var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
        }
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var / 4, 1.0, 1e-2);
    }
}

TEST(LayerNormTest, InputGradientCheck)
{
    Rng rng(15);
    LayerNorm ln(6);
    // Non-trivial gain/bias so the gradient exercises them.
    ln.Parameters()[0]->value = Tensor::Randn({6}, rng);
    const Tensor x = Tensor::Randn({3, 6}, rng);
    const Tensor gx = SumSquaresBackward(ln, x);
    ExpectGradientsClose([&](const Tensor& t) { return SumSquares(ln, t); },
                         x, gx);
}

TEST(SequentialTest, ComposesAndBackpropagates)
{
    Rng rng(16);
    Sequential seq;
    seq.Add(std::make_unique<Linear>(3, 5, rng));
    seq.Add(std::make_unique<ReLU>());
    seq.Add(std::make_unique<Linear>(5, 2, rng));
    const Tensor x = Tensor::Randn({4, 3}, rng);
    const Tensor gx = SumSquaresBackward(seq, x);
    ExpectGradientsClose([&](const Tensor& t) { return SumSquares(seq, t); },
                         x, gx);
    EXPECT_EQ(seq.Parameters().size(), 4u);
}

TEST(SoftmaxTest, RowsSumToOne)
{
    Rng rng(17);
    const Tensor y = Softmax2D(Tensor::Randn({5, 9}, rng));
    for (int64_t i = 0; i < 5; ++i) {
        double sum = 0;
        for (int64_t j = 0; j < 9; ++j) {
            sum += y.at(i, j);
            EXPECT_GT(y.at(i, j), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(SoftmaxTest, StableForLargeLogits)
{
    const Tensor y = Softmax2D(Tensor::Values({1000, 1001}).Reshape({1, 2}));
    EXPECT_NEAR(y.at(0, 1), 1.0f / (1.0f + std::exp(-1.0f)), 1e-4f);
}

TEST(EmbeddingTest, GatherAndScatter)
{
    Rng rng(18);
    EmbeddingTable emb(10, 4, rng);
    const std::vector<int64_t> ids{3, 7, 3};
    const Tensor out = emb.Forward(ids);
    for (int64_t j = 0; j < 4; ++j) {
        EXPECT_FLOAT_EQ(out.at(0, j), emb.table().at(3, j));
        EXPECT_FLOAT_EQ(out.at(2, j), emb.table().at(3, j));
    }
    Tensor grad = Tensor::Ones({3, 4});
    emb.Backward(ids, grad);
    // Row 3 hit twice, row 7 once, others zero.
    EXPECT_FLOAT_EQ(emb.weight().grad.at(3, 0), 2.0f);
    EXPECT_FLOAT_EQ(emb.weight().grad.at(7, 0), 1.0f);
    EXPECT_FLOAT_EQ(emb.weight().grad.at(0, 0), 0.0f);
}

TEST(LossTest, BceMatchesManual)
{
    const Tensor logits = Tensor::Values({0.0f});
    const Tensor targets = Tensor::Values({1.0f});
    Tensor grad;
    const float loss = BceWithLogits(logits, targets, &grad);
    EXPECT_NEAR(loss, std::log(2.0f), 1e-5f);
    EXPECT_NEAR(grad.at(0), -0.5f, 1e-5f);  // (p - t) = 0.5 - 1
}

TEST(LossTest, BceGradientCheck)
{
    Rng rng(19);
    const Tensor logits = Tensor::Randn({16}, rng);
    Tensor targets({16});
    for (int64_t i = 0; i < 16; ++i) {
        targets.at(i) = rng.NextBounded(2) ? 1.0f : 0.0f;
    }
    Tensor grad;
    BceWithLogits(logits, targets, &grad);
    ExpectGradientsClose(
        [&](const Tensor& l) { return BceWithLogits(l, targets, nullptr); },
        logits, grad, 1e-2f, 1e-2f);
}

TEST(LossTest, CrossEntropyGradientCheck)
{
    Rng rng(20);
    const Tensor logits = Tensor::Randn({6, 5}, rng);
    const std::vector<int64_t> targets{0, 3, 2, 4, 1, 0};
    Tensor grad;
    SoftmaxCrossEntropy(logits, targets, &grad);
    ExpectGradientsClose(
        [&](const Tensor& l) {
            return SoftmaxCrossEntropy(l, targets, nullptr);
        },
        logits, grad, 1e-2f, 1e-2f);
}

TEST(LossTest, CrossEntropyPerfectPrediction)
{
    Tensor logits = Tensor::Zeros({1, 3});
    logits.at(0, 1) = 50.0f;
    const std::vector<int64_t> target{1};
    EXPECT_NEAR(SoftmaxCrossEntropy(logits, target, nullptr), 0.0f, 1e-4f);
}

TEST(LossTest, BinaryAccuracy)
{
    const Tensor logits = Tensor::Values({2.0f, -1.0f, 0.5f, -0.5f});
    const Tensor targets = Tensor::Values({1.0f, 0.0f, 0.0f, 0.0f});
    EXPECT_FLOAT_EQ(BinaryAccuracy(logits, targets), 0.75f);
}

TEST(LossTest, PerplexityIsExpOfCrossEntropy)
{
    EXPECT_NEAR(Perplexity(std::log(14.6f)), 14.6f, 1e-3f);
}

TEST(OptimTest, SgdStepMovesAgainstGradient)
{
    Parameter p(Tensor::Values({1.0f, 2.0f}));
    p.grad = Tensor::Values({0.5f, -1.0f});
    Sgd opt({&p}, 0.1f);
    opt.Step();
    EXPECT_NEAR(p.value.at(0), 0.95f, 1e-6f);
    EXPECT_NEAR(p.value.at(1), 2.1f, 1e-6f);
}

TEST(OptimTest, MomentumAccumulates)
{
    Parameter p(Tensor::Values({0.0f}));
    Sgd opt({&p}, 0.1f, 0.9f);
    p.grad = Tensor::Values({1.0f});
    opt.Step();  // v=1, w=-0.1
    opt.Step();  // v=1.9, w=-0.29
    EXPECT_NEAR(p.value.at(0), -0.29f, 1e-5f);
}

TEST(OptimTest, AdamConvergesOnQuadratic)
{
    // Minimise (w - 3)^2 from w = 0.
    Parameter p(Tensor::Values({0.0f}));
    Adam opt({&p}, 0.1f);
    for (int i = 0; i < 300; ++i) {
        p.ZeroGrad();
        p.grad.at(0) = 2.0f * (p.value.at(0) - 3.0f);
        opt.Step();
    }
    EXPECT_NEAR(p.value.at(0), 3.0f, 1e-2f);
}

TEST(TrainingTest, MlpLearnsXor)
{
    Rng rng(21);
    auto mlp = MakeMlp({2, 16, 1}, rng);
    const Tensor x = Tensor::Values({0, 0, 0, 1, 1, 0, 1, 1}).Reshape({4, 2});
    const Tensor y = Tensor::Values({0.0f, 1.0f, 1.0f, 0.0f});
    Adam opt(mlp->Parameters(), 0.05f);
    float loss = 0;
    for (int epoch = 0; epoch < 500; ++epoch) {
        opt.ZeroGrad();
        Tensor logits = mlp->Forward(x).Reshape({4});
        Tensor grad;
        loss = BceWithLogits(logits, y, &grad);
        mlp->Backward(grad.Reshape({4, 1}));
        opt.Step();
    }
    EXPECT_LT(loss, 0.05f);
    const Tensor logits = mlp->Forward(x).Reshape({4});
    EXPECT_FLOAT_EQ(BinaryAccuracy(logits, y), 1.0f);
}

TEST(ModuleTest, NumParamsAndBytes)
{
    Rng rng(22);
    Linear lin(10, 5, rng);
    EXPECT_EQ(lin.NumParams(), 10 * 5 + 5);
    EXPECT_EQ(lin.ParamBytes(), (10 * 5 + 5) * 4);
}

}  // namespace
}  // namespace secemb::nn
