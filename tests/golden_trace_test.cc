/**
 * @file
 * Golden canonical-trace snapshot test: regenerates the pinned
 * configuration of every secure generator and diffs its canonical trace
 * against the committed snapshot under tests/golden/.
 *
 * The differential engine proves runs agree with each other; this test
 * additionally pins the traces across *commits*, so any change to a
 * generator's access pattern — even a uniformly-applied one — shows up in
 * review as a golden-file diff. Regenerate deliberately with:
 *
 *   secemb-verify --golden-dir=tests/golden --update-golden
 */

#include <gtest/gtest.h>

#include <string>

#include "verify/golden.h"
#include "verify/harness.h"

#ifndef SECEMB_GOLDEN_DIR
#error "SECEMB_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace secemb::verify {
namespace {

class GoldenTraceTest : public ::testing::TestWithParam<VerifyConfig>
{
};

TEST_P(GoldenTraceTest, MatchesCommittedSnapshot)
{
    const VerifyConfig& config = GetParam();
    const std::string path = std::string(SECEMB_GOLDEN_DIR) + "/" +
                             GoldenFileName(config.Name());

    CanonicalTrace golden;
    std::string stored_name, error;
    ASSERT_TRUE(ReadTraceFile(path, &golden, &stored_name, &error))
        << error << " — regenerate with secemb-verify --update-golden";
    EXPECT_EQ(stored_name, config.Name());

    const CanonicalTrace current = GoldenRun(config);
    const TraceDivergence d = CompareCanonical(golden, current);
    EXPECT_FALSE(d.diverged)
        << config.Name() << " access pattern changed: " << d.detail
        << "\nIf intentional, rerun: secemb-verify --golden-dir=tests/golden"
           " --update-golden";
}

INSTANTIATE_TEST_SUITE_P(
    AllSecure, GoldenTraceTest, ::testing::ValuesIn(GoldenConfigs()),
    [](const auto& info) { return info.param.Name(); });

TEST(GoldenConfigsTest, OnePinnedConfigPerSecureSubject)
{
    const auto configs = GoldenConfigs();
    const auto subjects = AllSecureSubjects();
    ASSERT_EQ(configs.size(), subjects.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(configs[i].subject, subjects[i]);
    }
}

}  // namespace
}  // namespace secemb::verify
