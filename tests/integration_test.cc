/**
 * @file
 * Cross-module integration tests: the full paper pipeline — train with
 * DHE, profile, deploy hybrid, serve obliviously — plus end-to-end
 * security checks that tie the attack substrate to the real generators.
 */

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/hybrid.h"
#include "dlrm/dataset.h"
#include "dlrm/model.h"
#include "llm/corpus.h"
#include "llm/gpt.h"
#include "profile/profiler.h"
#include "sidechannel/attacker.h"
#include "sidechannel/oblivious_check.h"

namespace secemb {
namespace {

TEST(IntegrationTest, TrainProfileDeployServe)
{
    // Miniature version of the paper's full DLRM pipeline.
    dlrm::DlrmConfig cfg;
    cfg.num_dense = 4;
    cfg.table_sizes = {8, 2000};  // one scan-side, one DHE-side feature
    cfg.emb_dim = 8;
    cfg.bot_mlp = {16, 8};
    cfg.top_mlp = {16};

    // 1. Train all-DHE.
    Rng rng(1);
    dlrm::TrainableDlrm model(cfg, dlrm::EmbeddingMode::kDheVaried, rng,
                              /*dhe_size_divisor=*/8);
    dlrm::SyntheticCtrDataset train(cfg, 2);
    nn::Adam opt(model.Parameters(), 3e-3f);
    for (int step = 0; step < 30; ++step) {
        model.TrainStep(train.NextBatch(16), opt);
    }

    // 2. Profile thresholds (forced so the split is deterministic here).
    core::ThresholdTable thresholds;
    thresholds.Add({16, 1, 100});

    // 3. Deploy hybrids from the *trained* DHEs.
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> gens;
    for (int64_t f = 0; f < cfg.num_sparse(); ++f) {
        gens.push_back(std::make_unique<core::HybridGenerator>(
            model.dhe(f), cfg.table_sizes[static_cast<size_t>(f)],
            thresholds, 16, 1));
    }
    auto* g0 = dynamic_cast<core::HybridGenerator*>(gens[0].get());
    auto* g1 = dynamic_cast<core::HybridGenerator*>(gens[1].get());
    EXPECT_EQ(g0->active_technique(), core::Technique::kLinearScan);
    EXPECT_EQ(g1->active_technique(), core::Technique::kDhe);

    // 4. The deployed hybrid must reproduce the trained DHE outputs:
    //    the served model is *the same model*, just protected.
    const std::vector<int64_t> ids{0, 5, 7};
    const Tensor deployed = gens[0]->GenerateBatch(ids);
    const Tensor trained = model.dhe(0)->Forward(ids);
    EXPECT_TRUE(deployed.AllClose(trained, 1e-5f));

    Rng mlp_rng(3);
    dlrm::SecureDlrm serving(cfg, std::move(gens), mlp_rng);
    const dlrm::CtrBatch batch = train.NextBatch(5);
    const Tensor probs = serving.Inference(batch.dense, batch.sparse);
    EXPECT_EQ(probs.numel(), 5);
    for (int64_t i = 0; i < 5; ++i) {
        EXPECT_GE(probs.at(i), 0.0f);
        EXPECT_LE(probs.at(i), 1.0f);
    }
}

TEST(IntegrationTest, AttackerBeatenByEveryProtectedGenerator)
{
    constexpr int64_t kRows = 64, kDim = 16;
    constexpr int kMonitored = 16;
    Rng table_rng(4);
    const Tensor table = Tensor::Randn({kRows, kDim}, table_rng);

    for (auto kind : {core::GenKind::kIndexLookup,
                      core::GenKind::kLinearScan,
                      core::GenKind::kCircuitOram}) {
        Rng rng(5);
        core::GeneratorOptions opt;
        opt.table = &table;
        oram::OramParams oram_params =
            oram::OramParams::Defaults(oram::OramKind::kCircuit);
        opt.oram_params = &oram_params;
        auto gen = core::MakeGenerator(kind, kRows, kDim, rng, opt);

        sidechannel::TraceRecorder rec;
        gen->set_recorder(&rec);
        if (kind == core::GenKind::kCircuitOram) {
            // ORAM records through its own params-level recorder.
            oram_params.recorder = &rec;
            gen = core::MakeGenerator(kind, kRows, kDim, rng, opt);
        }

        // The attacker monitors the region the victim's trace touches;
        // for ORAM that is the tree area, for tables the table base.
        std::vector<int64_t> secrets, guesses;
        sidechannel::CacheConfig ccfg;
        ccfg.num_sets = 1024;
        ccfg.ways = 8;
        uint64_t region_base = 0;
        for (int64_t secret = 0; secret < kMonitored; ++secret) {
            rec.Clear();
            Tensor out({1, kDim});
            std::vector<int64_t> b{secret};
            gen->Generate(b, out);
            ASSERT_FALSE(rec.trace().empty());
            if (secret == 0) {
                // Fix the monitored region once: secret 0's first touch
                // starts at the victim region base for every generator.
                region_base = rec.trace().front().addr;
            }
            sidechannel::CacheModel cache(ccfg);
            sidechannel::EvictionSetAttacker attacker(
                cache, region_base, kDim * 4, kMonitored);
            secrets.push_back(secret);
            guesses.push_back(
                attacker.Attack(rec.trace(), 5).guessed_index);
        }
        const double mi = sidechannel::EmpiricalMutualInformation(
            secrets, guesses, kMonitored);
        if (kind == core::GenKind::kIndexLookup) {
            EXPECT_GT(mi, 3.0) << "non-secure lookup should leak";
        } else {
            EXPECT_LT(mi, 0.6)
                << "protected generator leaked, kind "
                << std::string(core::GenKindName(kind));
        }
    }
}

TEST(IntegrationTest, DheTraceHasNoRowGranularAccesses)
{
    // DHE's security argument in its simplest form: there is no
    // per-row table access to record. The generator reports exactly one
    // whole-parameter-region read per batch element — the same region,
    // the same size, whatever the secret id is.
    Rng rng(6);
    auto gen = core::MakeGenerator(core::GenKind::kDheVaried, 100000, 16,
                                   rng);
    sidechannel::TraceRecorder rec;
    gen->set_recorder(&rec);
    Tensor out({1, 16});
    std::vector<int64_t> ids{12345};
    gen->Generate(ids, out);
    ASSERT_EQ(rec.trace().size(), 1u);
    const sidechannel::MemoryAccess whole_params = rec.trace()[0];
    EXPECT_GE(whole_params.size,
              static_cast<uint32_t>(out.size(1) * sizeof(float)));

    // A different secret produces the identical trace.
    rec.Clear();
    std::vector<int64_t> other{7};
    gen->Generate(other, out);
    ASSERT_EQ(rec.trace().size(), 1u);
    EXPECT_EQ(rec.trace()[0], whole_params);
}

TEST(IntegrationTest, LlmSecureGenerationMatchesAcrossProtections)
{
    // Same trained trunk + same token table behind lookup / scan / ORAM
    // must generate the same tokens — protection changes the trace, not
    // the model.
    const llm::GptConfig cfg = llm::GptConfig::Tiny();
    Rng table_rng(7);
    const Tensor table =
        Tensor::Randn({cfg.vocab_size, cfg.dim}, table_rng);
    auto build = [&](core::GenKind kind) {
        Rng rng(8);
        core::GeneratorOptions opt;
        opt.table = &table;
        auto gen =
            core::MakeGenerator(kind, cfg.vocab_size, cfg.dim, rng, opt);
        Rng model_rng(555);
        return std::make_unique<llm::SecureGpt>(cfg, std::move(gen),
                                                model_rng);
    };
    const std::vector<std::vector<int64_t>> prompts{{9, 8, 7},
                                                    {1, 2, 3}};
    const auto base =
        build(core::GenKind::kIndexLookup)->Generate(prompts, 4);
    EXPECT_EQ(build(core::GenKind::kLinearScan)->Generate(prompts, 4),
              base);
    EXPECT_EQ(build(core::GenKind::kCircuitOram)->Generate(prompts, 4),
              base);
}

TEST(IntegrationTest, ProfiledHybridNeverSlowerThanWorstPure)
{
    // Sanity economics: with profiled thresholds, the hybrid's embedding
    // pass should not be slower than both pure techniques.
    const int batch = 16;
    Rng prof_rng(9);
    const core::ThresholdTable thresholds =
        profile::QuickThresholds(batch, 1, 16, /*varied_dhe=*/true,
                                 prof_rng);
    const int64_t size = 512;
    Rng rng(10);
    core::GeneratorOptions opt;
    opt.batch_size = batch;
    opt.thresholds = &thresholds;
    auto hybrid = core::MakeGenerator(core::GenKind::kHybridVaried, size,
                                      16, rng, opt);
    auto scan =
        core::MakeGenerator(core::GenKind::kLinearScan, size, 16, rng);
    auto dhe =
        core::MakeGenerator(core::GenKind::kDheVaried, size, 16, rng);
    Rng idx(11);
    const double h =
        profile::MeasureGeneratorLatencyNs(*hybrid, batch, idx, 3);
    const double s =
        profile::MeasureGeneratorLatencyNs(*scan, batch, idx, 3);
    const double d =
        profile::MeasureGeneratorLatencyNs(*dhe, batch, idx, 3);
    EXPECT_LT(h, 1.5 * std::max(s, d));
}

}  // namespace
}  // namespace secemb
