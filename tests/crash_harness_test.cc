/**
 * @file
 * Kill-based crash harness for the durable RAW ORAM (`ctest -L crash`):
 * the proof that "acknowledged means durable".
 *
 * Each iteration forks a child that builds a durable file-backed RawOram,
 * arms one deterministic crash site (SetCrashPlanForTest), runs a planned
 * op sequence, and writes one ack byte per op THAT RETURNED Ok. The armed
 * site raises SIGKILL mid-journal-append, mid-checkpoint (before/after
 * the temp write, before/after the rename), or mid-eviction write-back.
 * The parent then recovers from the surviving files and asserts:
 *
 *   - Recover() succeeds (fails closed never fires on a legal crash
 *     state — only on actual corruption), and
 *   - every acknowledged op is present bit-identically: the table equals
 *     the model after k acked ops, except that the single in-flight op
 *     (index k, journaled but unacknowledged) may or may not have landed.
 *
 * The sweep covers every crash site at several countdowns (>= 30 killed
 * children), and each recovered instance serves fresh traffic afterwards.
 */

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "store/durable.h"
#include "store/page_cache.h"
#include "store/raw_oram.h"
#include "tensor/rng.h"

namespace secemb::store {
namespace {

constexpr int64_t kRows = 48;
constexpr int64_t kDim = 4;
constexpr int64_t kPageBytes = 128;
constexpr int kOpsPerIteration = 60;

struct PlannedOp
{
    bool is_write = false;
    int64_t id = 0;
    std::vector<uint32_t> value;  ///< write payload (empty for reads)
};

/** Deterministic op sequence shared by parent (model) and child (run). */
std::vector<PlannedOp>
MakeOps(uint64_t seed)
{
    Rng rng(seed);
    std::vector<PlannedOp> ops(kOpsPerIteration);
    for (size_t i = 0; i < ops.size(); ++i) {
        ops[i].is_write = rng.NextBounded(4) != 0;  // 3/4 writes
        ops[i].id = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(kRows)));
        if (ops[i].is_write) {
            ops[i].value.resize(static_cast<size_t>(kDim));
            for (auto& w : ops[i].value) {
                w = static_cast<uint32_t>(rng.Next());
            }
        }
    }
    return ops;
}

std::vector<uint32_t>
InitialTable(uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> words(static_cast<size_t>(kRows * kDim));
    for (auto& w : words) w = static_cast<uint32_t>(rng.Next());
    return words;
}

StoreConfig
PageFileConfig(const std::string& dir, bool create)
{
    StoreConfig sc;
    sc.backend = StoreBackend::kFile;
    sc.path = dir + "/pages.bin";
    sc.page_bytes = kPageBytes;
    sc.cache_pages = 4;
    sc.create = create;
    return sc;
}

RawOramConfig
DurableConfig(const std::string& dir)
{
    RawOramConfig rc;
    rc.durability.dir = dir;
    rc.durability.checkpoint_interval = 12;
    rc.durability.sync_each_append = true;
    rc.posmap.enable_recursion = false;
    return rc;
}

/** Child body after fork(): never returns to gtest. */
[[noreturn]] void
RunChild(const std::string& dir, const std::vector<PlannedOp>& ops,
         uint64_t iter_seed, CrashSite site, int64_t countdown,
         const std::string& ack_path)
{
    const int ack_fd =
        ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (ack_fd < 0) _exit(10);

    std::unique_ptr<PageCache> cache;
    const int64_t pages = RawOram::PagesNeeded(kRows, kDim, kPageBytes);
    if (!MakePageCache(PageFileConfig(dir, true), pages, &cache).ok()) {
        _exit(11);
    }
    Rng rng(iter_seed);
    RawOram oram(kRows, kDim, std::move(cache), rng, DurableConfig(dir));
    if (!oram.BulkLoad(InitialTable(iter_seed)).ok()) _exit(12);

    // Armed only after BulkLoad: the harness invariant is "once the
    // instance came up, every crash state is recoverable".
    SetCrashPlanForTest(site, countdown);
    std::vector<uint32_t> out(static_cast<size_t>(kDim));
    for (const PlannedOp& op : ops) {
        const serving::Status s =
            op.is_write ? oram.Write(op.id, op.value)
                        : oram.Read(op.id, out);
        if (!s.ok()) _exit(13);
        // Ok returned => the delta is journaled + fsynced. Acknowledge.
        if (::write(ack_fd, "A", 1) != 1) _exit(14);
    }
    _exit(0);  // countdown never fired — a surviving child
}

int64_t
AckCount(const std::string& ack_path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(ack_path, ec);
    return ec ? 0 : static_cast<int64_t>(size);
}

TEST(CrashHarnessTest, NoAcknowledgedWriteIsEverLost)
{
    const std::string root =
        testing::TempDir() + "secemb_crash_harness";
    std::filesystem::remove_all(root);

    constexpr CrashSite kSites[] = {
        CrashSite::kJournalAppendPartial,
        CrashSite::kJournalAppendAfter,
        CrashSite::kCheckpointTempPartial,
        CrashSite::kCheckpointTempBeforeRename,
        CrashSite::kCheckpointAfterRename,
        CrashSite::kEvictAfterJournal,
        CrashSite::kEvictMidPages,
    };
    constexpr int kIterations = 36;

    int killed = 0;
    for (int iter = 0; iter < kIterations; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        const std::string dir = root + "/i" + std::to_string(iter);
        ASSERT_TRUE(std::filesystem::create_directories(dir));
        const std::string ack_path = dir + "/acks";
        const uint64_t iter_seed = 9000 + static_cast<uint64_t>(iter);
        const CrashSite site = kSites[iter % std::size(kSites)];
        const int64_t countdown = 1 + (iter / std::size(kSites)) % 3;
        const std::vector<PlannedOp> ops = MakeOps(iter_seed);

        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            RunChild(dir, ops, iter_seed, site, countdown, ack_path);
        }
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        const bool died =
            WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
        if (!died) {
            // A surviving child must have completed cleanly (its armed
            // countdown outlived the run) — any other exit is a bug.
            ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
                << "child failed with status " << status;
        } else {
            killed++;
        }

        const int64_t k = AckCount(ack_path);
        ASSERT_LE(k, static_cast<int64_t>(ops.size()));

        // Model: initial table + the k acknowledged ops.
        std::vector<uint32_t> model = InitialTable(iter_seed);
        auto apply = [&model](const PlannedOp& op) {
            if (!op.is_write) return;
            std::copy(op.value.begin(), op.value.end(),
                      model.begin() + op.id * kDim);
        };
        for (int64_t i = 0; i < k; ++i) {
            apply(ops[static_cast<size_t>(i)]);
        }

        // Recover from whatever the kill left behind.
        std::unique_ptr<PageCache> cache;
        const int64_t pages =
            RawOram::PagesNeeded(kRows, kDim, kPageBytes);
        ASSERT_TRUE(
            MakePageCache(PageFileConfig(dir, false), pages, &cache)
                .ok());
        Rng rng(iter_seed + 77);
        std::unique_ptr<RawOram> oram;
        RecoveryStats rstats;
        const serving::Status rs =
            RawOram::Recover(kRows, kDim, std::move(cache), rng,
                             DurableConfig(dir), &oram, &rstats);
        ASSERT_TRUE(rs.ok())
            << "site " << static_cast<int>(site) << " countdown "
            << countdown << ": " << rs.ToString();

        // Every acknowledged write present, bit-identical. The single
        // in-flight op (index k: journaled, never acknowledged) may have
        // landed too — but nothing beyond it.
        const PlannedOp* inflight =
            k < static_cast<int64_t>(ops.size()) &&
                    ops[static_cast<size_t>(k)].is_write
                ? &ops[static_cast<size_t>(k)]
                : nullptr;
        std::vector<uint32_t> row(static_cast<size_t>(kDim));
        for (int64_t r = 0; r < kRows; ++r) {
            ASSERT_TRUE(oram->Read(r, row).ok());
            const auto* expect = model.data() + r * kDim;
            const bool matches_model =
                std::equal(row.begin(), row.end(), expect);
            const bool matches_inflight =
                inflight != nullptr && inflight->id == r &&
                std::equal(row.begin(), row.end(),
                           inflight->value.begin());
            EXPECT_TRUE(matches_model || matches_inflight)
                << "row " << r << " corrupt after recovery (" << k
                << " acked ops, site " << static_cast<int>(site) << ")";
        }

        // The recovered instance keeps serving: write + read back.
        std::vector<uint32_t> fresh(static_cast<size_t>(kDim), 0xabu);
        ASSERT_TRUE(oram->Write(1, fresh).ok());
        ASSERT_TRUE(oram->Read(1, row).ok());
        EXPECT_EQ(row, fresh);
    }

    // The sweep is only a proof if the kills actually happened.
    EXPECT_GE(killed, 30) << "crash plan fired in too few children";
    std::filesystem::remove_all(root);
}

/**
 * Double recovery is deterministic: recovering the same crash state
 * twice (fresh caches both times) yields bit-identical tables.
 */
TEST(CrashHarnessTest, RecoveryIsDeterministic)
{
    const std::string dir =
        testing::TempDir() + "secemb_crash_deterministic";
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string ack_path = dir + "/acks";
    const uint64_t seed = 4242;
    const std::vector<PlannedOp> ops = MakeOps(seed);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        RunChild(dir, ops, seed, CrashSite::kEvictMidPages, 2, ack_path);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

    auto recover_rows = [&] {
        std::unique_ptr<PageCache> cache;
        const int64_t pages =
            RawOram::PagesNeeded(kRows, kDim, kPageBytes);
        ThrowIfError(
            MakePageCache(PageFileConfig(dir, false), pages, &cache));
        Rng rng(seed + 1);
        std::unique_ptr<RawOram> oram;
        ThrowIfError(RawOram::Recover(kRows, kDim, std::move(cache), rng,
                                      DurableConfig(dir), &oram));
        std::vector<uint32_t> rows;
        std::vector<uint32_t> row(static_cast<size_t>(kDim));
        for (int64_t r = 0; r < kRows; ++r) {
            ThrowIfError(oram->Read(r, row));
            rows.insert(rows.end(), row.begin(), row.end());
        }
        return rows;
    };
    // NB: the second recovery starts from the files the first recovery
    // rewrote + the journal it reopened — the state a service restart
    // sees. Both reads must agree bit-for-bit.
    EXPECT_EQ(recover_rows(), recover_rows());
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace secemb::store
