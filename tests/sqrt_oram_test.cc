/**
 * @file
 * Tests for the oblivious sorting network and the Square-Root ORAM
 * baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "oblivious/sort.h"
#include "oram/sqrt_oram.h"

namespace secemb {
namespace {

TEST(ObliviousSortTest, SortsRandomKeys)
{
    Rng rng(1);
    for (const int64_t n : {1, 2, 3, 7, 8, 33, 100, 257}) {
        std::vector<uint64_t> keys(static_cast<size_t>(n));
        for (auto& k : keys) k = rng.Next() >> 1;  // avoid the pad value
        oblivious::ObliviousSort(keys);
        EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()))
            << "n = " << n;
    }
}

TEST(ObliviousSortTest, PayloadTravelsWithKey)
{
    Rng rng(2);
    const int64_t n = 50, words = 3;
    std::vector<uint64_t> keys(static_cast<size_t>(n));
    std::vector<uint32_t> rows(static_cast<size_t>(n * words));
    for (int64_t i = 0; i < n; ++i) {
        keys[static_cast<size_t>(i)] = rng.Next() >> 1;
        for (int64_t w = 0; w < words; ++w) {
            // Payload encodes its original key so we can verify pairing.
            rows[static_cast<size_t>(i * words + w)] =
                static_cast<uint32_t>(keys[static_cast<size_t>(i)] +
                                      static_cast<uint64_t>(w));
        }
    }
    oblivious::ObliviousSortByKey(keys, rows, words);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t w = 0; w < words; ++w) {
            EXPECT_EQ(rows[static_cast<size_t>(i * words + w)],
                      static_cast<uint32_t>(keys[static_cast<size_t>(i)] +
                                            static_cast<uint64_t>(w)));
        }
    }
}

TEST(ObliviousSortTest, AlreadySortedAndReverse)
{
    std::vector<uint64_t> asc{1, 2, 3, 4, 5};
    oblivious::ObliviousSort(asc);
    EXPECT_EQ(asc, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
    std::vector<uint64_t> desc{5, 4, 3, 2, 1};
    oblivious::ObliviousSort(desc);
    EXPECT_EQ(desc, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(ObliviousShuffleTest, PermutesWithoutLoss)
{
    Rng rng(3);
    const int64_t n = 64, words = 2;
    std::vector<uint32_t> rows(static_cast<size_t>(n * words));
    for (int64_t i = 0; i < n; ++i) {
        rows[static_cast<size_t>(i * words)] = static_cast<uint32_t>(i);
        rows[static_cast<size_t>(i * words + 1)] =
            static_cast<uint32_t>(i * 7);
    }
    oblivious::ObliviousShuffle(rows, words, n, rng);
    std::set<uint32_t> seen;
    bool moved = false;
    for (int64_t i = 0; i < n; ++i) {
        const uint32_t v = rows[static_cast<size_t>(i * words)];
        EXPECT_EQ(rows[static_cast<size_t>(i * words + 1)], v * 7);
        seen.insert(v);
        moved |= (v != static_cast<uint32_t>(i));
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(n));  // a permutation
    EXPECT_TRUE(moved);  // ... and almost surely not the identity
}

TEST(ObliviousShuffleTest, DistributionRoughlyUniform)
{
    // Element 0's final position over many shuffles should be ~uniform.
    const int64_t n = 8;
    std::vector<int64_t> counts(static_cast<size_t>(n), 0);
    Rng rng(4);
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        std::vector<uint32_t> rows(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            rows[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
        }
        oblivious::ObliviousShuffle(rows, 1, n, rng);
        for (int64_t i = 0; i < n; ++i) {
            if (rows[static_cast<size_t>(i)] == 0) {
                ++counts[static_cast<size_t>(i)];
            }
        }
    }
    for (int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(counts[static_cast<size_t>(i)], trials / n,
                    trials / 10);
    }
}

// ---------------------------------------------------------------------------
// SqrtOram
// ---------------------------------------------------------------------------

TEST(SqrtOramTest, WriteThenRead)
{
    Rng rng(5);
    oram::SqrtOram oram(64, 4, rng);
    std::vector<uint32_t> block{10, 20, 30, 40};
    oram.Write(17, block);
    std::vector<uint32_t> out(4);
    oram.Read(17, out);
    EXPECT_EQ(out, block);
}

TEST(SqrtOramTest, RepeatedAccessSameEpoch)
{
    // Reading the same id repeatedly within an epoch must keep working
    // (covered by shelter hits + dummy fetches).
    Rng rng(6);
    oram::SqrtOram oram(100, 4, rng);
    std::vector<uint32_t> block{1, 2, 3, 4};
    oram.Write(5, block);
    std::vector<uint32_t> out(4);
    for (int i = 0; i < 8; ++i) {
        oram.Read(5, out);
        EXPECT_EQ(out, block) << "repeat " << i;
    }
}

TEST(SqrtOramTest, SurvivesManyEpochs)
{
    Rng rng(7);
    const int64_t n = 64, words = 4;
    oram::SqrtOram oram(n, words, rng);
    std::map<int64_t, std::vector<uint32_t>> reference;
    Rng wl(8);
    for (int iter = 0; iter < 400; ++iter) {
        const int64_t id = static_cast<int64_t>(wl.NextBounded(n));
        if (wl.NextBounded(2) == 0) {
            std::vector<uint32_t> blk(words);
            for (auto& w : blk) w = static_cast<uint32_t>(wl.Next());
            oram.Write(id, blk);
            reference[id] = blk;
        } else {
            std::vector<uint32_t> out(words, 0);
            oram.Read(id, out);
            const auto it = reference.find(id);
            const std::vector<uint32_t> expect =
                it == reference.end() ? std::vector<uint32_t>(words, 0)
                                      : it->second;
            ASSERT_EQ(out, expect) << "iter " << iter << " id " << id;
        }
    }
    EXPECT_GT(oram.stats().reshuffles, 10);
}

TEST(SqrtOramTest, BulkLoadThenReadAll)
{
    Rng rng(9);
    const int64_t n = 81, words = 2;
    oram::SqrtOram oram(n, words, rng);
    std::vector<uint32_t> data(static_cast<size_t>(n * words));
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint32_t>(i * 2654435761u);
    }
    oram.BulkLoad(data);
    std::vector<uint32_t> out(words);
    for (int64_t id = 0; id < n; ++id) {
        oram.Read(id, out);
        for (int64_t w = 0; w < words; ++w) {
            ASSERT_EQ(out[static_cast<size_t>(w)],
                      data[static_cast<size_t>(id * words + w)])
                << "id " << id;
        }
    }
}

TEST(SqrtOramTest, ShelterSizeIsSqrtN)
{
    Rng rng(10);
    oram::SqrtOram a(100, 4, rng);
    EXPECT_EQ(a.shelter_capacity(), 10);
    oram::SqrtOram b(101, 4, rng);
    EXPECT_EQ(b.shelter_capacity(), 11);
}

TEST(SqrtOramTest, FootprintLinearInN)
{
    Rng rng(11);
    oram::SqrtOram small(256, 8, rng);
    oram::SqrtOram big(1024, 8, rng);
    EXPECT_GT(big.MemoryFootprintBytes(),
              3 * small.MemoryFootprintBytes());
    EXPECT_LT(big.MemoryFootprintBytes(),
              6 * small.MemoryFootprintBytes());
}

}  // namespace
}  // namespace secemb
