/**
 * @file
 * Out-of-core storage correctness: backend roundtrips (memory / file /
 * mmap), durable persistence and typed reopen validation, the page-packed
 * oblivious scan against its in-RAM reference, and the page-optimized RAW
 * ORAM (bulk load, reads, writes, stash bounds, the async-proxy front).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/paged_generators.h"
#include "core/table_generators.h"
#include "store/backing_store.h"
#include "store/page_cache.h"
#include "store/raw_oram.h"
#include "tensor/rng.h"

namespace secemb::store {
namespace {

std::string
TempPath(const std::string& name)
{
    const std::string path = testing::TempDir() + "secemb_" + name;
    std::filesystem::remove(path);
    return path;
}

/** Deterministic per-page payload so reopen tests verify real content. */
std::vector<uint8_t>
PagePattern(int64_t page, int64_t page_bytes, uint64_t salt = 0)
{
    std::vector<uint8_t> data(static_cast<size_t>(page_bytes));
    Rng rng(0x9a6e0000ULL + static_cast<uint64_t>(page) * 31 + salt);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
    return data;
}

StoreConfig
ConfigFor(StoreBackend backend, const std::string& path,
          int64_t page_bytes = 256, int64_t cache_pages = 4)
{
    StoreConfig config;
    config.backend = backend;
    config.path = path;
    config.page_bytes = page_bytes;
    config.cache_pages = cache_pages;
    return config;
}

class BackingStoreTest : public testing::TestWithParam<StoreBackend>
{
};

TEST_P(BackingStoreTest, RoundtripsEveryPage)
{
    const StoreConfig config =
        ConfigFor(GetParam(), TempPath("roundtrip.store"));
    std::unique_ptr<BackingStore> store;
    ASSERT_TRUE(MakeBackingStore(config, 16, &store).ok());
    EXPECT_EQ(store->num_pages(), 16);
    EXPECT_EQ(store->page_bytes(), 256);
    EXPECT_EQ(store->backend_name(), StoreBackendName(GetParam()));

    for (int64_t p = 0; p < 16; ++p) {
        const auto data = PagePattern(p, 256);
        ASSERT_TRUE(store->WritePage(p, data).ok());
    }
    // Reverse order so later reads cannot ride an earlier page's buffer.
    std::vector<uint8_t> out(256);
    for (int64_t p = 15; p >= 0; --p) {
        ASSERT_TRUE(store->ReadPage(p, out).ok());
        EXPECT_EQ(out, PagePattern(p, 256)) << "page " << p;
    }
    EXPECT_TRUE(store->Sync().ok());
}

TEST_P(BackingStoreTest, BadArgumentsAreTyped)
{
    const StoreConfig config =
        ConfigFor(GetParam(), TempPath("badargs.store"));
    std::unique_ptr<BackingStore> store;
    ASSERT_TRUE(MakeBackingStore(config, 4, &store).ok());

    std::vector<uint8_t> page(256);
    EXPECT_EQ(store->ReadPage(-1, page).code,
              serving::StatusCode::kInvalidArgument);
    EXPECT_EQ(store->ReadPage(4, page).code,
              serving::StatusCode::kInvalidArgument);
    std::vector<uint8_t> wrong(255);
    EXPECT_EQ(store->WritePage(0, wrong).code,
              serving::StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackingStoreTest,
                         testing::Values(StoreBackend::kMemory,
                                         StoreBackend::kFile,
                                         StoreBackend::kMmap),
                         [](const auto& info) {
                             return std::string(
                                 StoreBackendName(info.param));
                         });

TEST(StoreTest, FilePersistsAcrossReopenAndIntoMmap)
{
    const std::string path = TempPath("persist.store");
    StoreConfig config = ConfigFor(StoreBackend::kFile, path);
    {
        std::unique_ptr<BackingStore> store;
        ASSERT_TRUE(MakeBackingStore(config, 8, &store).ok());
        for (int64_t p = 0; p < 8; ++p) {
            ASSERT_TRUE(store->WritePage(p, PagePattern(p, 256)).ok());
        }
        ASSERT_TRUE(store->Sync().ok());
    }

    // Reopen through pread/pwrite, then through a mapping of the same
    // file: the two backends share one on-disk format.
    config.create = false;
    for (const StoreBackend backend :
         {StoreBackend::kFile, StoreBackend::kMmap}) {
        config.backend = backend;
        std::unique_ptr<BackingStore> store;
        ASSERT_TRUE(MakeBackingStore(config, 8, &store).ok())
            << StoreBackendName(backend);
        std::vector<uint8_t> out(256);
        for (int64_t p = 0; p < 8; ++p) {
            ASSERT_TRUE(store->ReadPage(p, out).ok());
            EXPECT_EQ(out, PagePattern(p, 256))
                << StoreBackendName(backend) << " page " << p;
        }
    }
}

TEST(StoreTest, ReopenGeometryMismatchIsTyped)
{
    const std::string path = TempPath("geometry.store");
    {
        std::unique_ptr<BackingStore> store;
        ASSERT_TRUE(MakeBackingStore(
                        ConfigFor(StoreBackend::kFile, path), 8, &store)
                        .ok());
        ASSERT_TRUE(store->Sync().ok());
    }
    StoreConfig config = ConfigFor(StoreBackend::kFile, path,
                                   /*page_bytes=*/512);
    config.create = false;
    std::unique_ptr<BackingStore> store;
    EXPECT_EQ(MakeBackingStore(config, 8, &store).code,
              serving::StatusCode::kInvalidArgument);

    config.page_bytes = 256;  // right page size, wrong page count
    EXPECT_EQ(MakeBackingStore(config, 9, &store).code,
              serving::StatusCode::kInvalidArgument);
}

TEST(StoreTest, PagedScanMatchesInRamScan)
{
    Rng rng(7);
    const Tensor table = Tensor::Randn({100, 8}, rng);
    core::LinearScanTable reference(table);

    // File backend, pages much smaller than the table, tight cache: every
    // lookup streams through real eviction traffic.
    core::PagedScanTable paged(
        table, ConfigFor(StoreBackend::kFile, TempPath("scan.store"),
                         /*page_bytes=*/256, /*cache_pages=*/3));
    EXPECT_EQ(paged.num_rows(), 100);
    EXPECT_EQ(paged.dim(), 8);

    for (const int nthreads : {1, 4}) {
        paged.set_nthreads(nthreads);
        const std::vector<int64_t> indices = {0, 99, 41, 41, 7, 63};
        Tensor out({static_cast<int64_t>(indices.size()), 8});
        paged.Generate(indices, out);
        EXPECT_TRUE(out.AllClose(reference.GenerateBatch(indices), 0.0f))
            << "nthreads=" << nthreads;

        const std::vector<int64_t> offsets = {0, 2, 2, 6};
        Tensor pooled({3, 8});
        paged.GeneratePooled(indices, offsets, pooled);
        Tensor pooled_ref({3, 8});
        reference.GeneratePooled(indices, offsets, pooled_ref);
        EXPECT_TRUE(pooled.AllClose(pooled_ref, 1e-5f))
            << "nthreads=" << nthreads;
    }
    const PageCacheStats stats = paged.paged().cache_stats();
    EXPECT_GT(stats.evictions, 0) << "cache never churned; test is vacuous";
    EXPECT_TRUE(paged.SyncStorage().ok());
}

TEST(StoreTest, RawOramGeometryIsPageDerived)
{
    // 4 KiB pages, dim-16 rows: Z = 4096 / 64 = 64 blocks per bucket.
    EXPECT_EQ(RawOram::PagesNeeded(1000, 16, 4096), 2 * 32 - 1);
    // A page that cannot hold two blocks is a typed construction error.
    EXPECT_THROW(RawOram::PagesNeeded(1000, 16, 64), StoreError);
}

std::unique_ptr<RawOram>
MakeRawOram(int64_t blocks, int64_t words, const StoreConfig& config,
            Rng& rng, const RawOramConfig& oram_config = {})
{
    const int64_t pages =
        RawOram::PagesNeeded(blocks, words, config.page_bytes);
    std::unique_ptr<PageCache> cache;
    ThrowIfError(MakePageCache(config, pages, &cache));
    return std::make_unique<RawOram>(blocks, words, std::move(cache), rng,
                                     oram_config);
}

TEST(StoreTest, RawOramReadsBackEveryBlock)
{
    const int64_t kBlocks = 200, kWords = 8;
    std::vector<uint32_t> data(static_cast<size_t>(kBlocks * kWords));
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint32_t>(i * 2654435761u);
    }

    Rng rng(11);
    auto oram = MakeRawOram(
        kBlocks, kWords,
        ConfigFor(StoreBackend::kMemory, "", /*page_bytes=*/512,
                  /*cache_pages=*/4),
        rng);
    ASSERT_TRUE(oram->BulkLoad(data).ok());

    // Two full passes: the second rereads blocks whose first read left
    // them in the stash or moved them by eviction.
    std::vector<uint32_t> out(static_cast<size_t>(kWords));
    for (int pass = 0; pass < 2; ++pass) {
        for (int64_t id = 0; id < kBlocks; ++id) {
            ASSERT_TRUE(oram->Read(id, out).ok());
            EXPECT_EQ(0, std::memcmp(out.data(), &data[static_cast<size_t>(
                                                     id * kWords)],
                                     sizeof(uint32_t) * kWords))
                << "pass " << pass << " id " << id;
        }
        EXPECT_LE(oram->StashOccupancy(), oram->stash_capacity());
    }
    const RawOramStats& stats = oram->stats();
    EXPECT_EQ(stats.accesses, 2 * kBlocks);
    EXPECT_GT(stats.evictions, 0);
    // The RAW asymmetry: reads never write back, so page writes happen
    // only on the (amortized) eviction paths.
    EXPECT_LT(stats.page_writes, stats.page_reads);
}

TEST(StoreTest, RawOramWriteThenReadBack)
{
    const int64_t kBlocks = 64, kWords = 4;
    std::vector<uint32_t> data(static_cast<size_t>(kBlocks * kWords), 0);
    Rng rng(13);
    auto oram = MakeRawOram(
        kBlocks, kWords,
        ConfigFor(StoreBackend::kFile, TempPath("raworam.store"),
                  /*page_bytes=*/256, /*cache_pages=*/4),
        rng);
    ASSERT_TRUE(oram->BulkLoad(data).ok());

    std::vector<uint32_t> in(static_cast<size_t>(kWords));
    for (int64_t id = 0; id < kBlocks; id += 3) {
        for (int64_t w = 0; w < kWords; ++w) {
            in[static_cast<size_t>(w)] =
                static_cast<uint32_t>(id * 100 + w);
        }
        ASSERT_TRUE(oram->Write(id, in).ok());
    }
    ASSERT_TRUE(oram->Sync().ok());

    std::vector<uint32_t> out(static_cast<size_t>(kWords));
    for (int64_t id = 0; id < kBlocks; ++id) {
        ASSERT_TRUE(oram->Read(id, out).ok());
        for (int64_t w = 0; w < kWords; ++w) {
            const uint32_t want =
                id % 3 == 0 ? static_cast<uint32_t>(id * 100 + w) : 0u;
            EXPECT_EQ(out[static_cast<size_t>(w)], want)
                << "id " << id << " word " << w;
        }
    }
}

TEST(StoreTest, RawOramTableMatchesReference)
{
    Rng table_rng(17);
    const Tensor table = Tensor::Randn({80, 8}, table_rng);
    core::LinearScanTable reference(table);

    Rng rng(19);
    core::RawOramTable oram_table(
        table, rng,
        ConfigFor(StoreBackend::kMmap, TempPath("oramtable.store"),
                  /*page_bytes=*/512, /*cache_pages=*/4));
    EXPECT_EQ(oram_table.num_rows(), 80);

    const std::vector<int64_t> indices = {79, 0, 33, 33, 12, 5, 5, 5};
    Tensor out({static_cast<int64_t>(indices.size()), 8});
    oram_table.Generate(indices, out);
    EXPECT_TRUE(out.AllClose(reference.GenerateBatch(indices), 0.0f));
    EXPECT_TRUE(oram_table.SyncStorage().ok());
}

TEST(StoreTest, ProxiedRawOramCoalescesAndMatchesReference)
{
    Rng table_rng(23);
    const Tensor table = Tensor::Randn({64, 8}, table_rng);
    core::LinearScanTable reference(table);

    Rng rng(29);
    oram::ProxyConfig proxy_config;
    proxy_config.batch_window = 4;
    core::ProxiedRawOramTable proxied(
        table, rng,
        ConfigFor(StoreBackend::kMemory, "", /*page_bytes=*/512,
                  /*cache_pages=*/4),
        RawOramConfig{}, proxy_config);

    // Duplicate-heavy batches: in-window duplicates coalesce into one RAW
    // ORAM access (padded with dummies), and every copy of the answer
    // must still be correct.
    for (int round = 0; round < 4; ++round) {
        const std::vector<int64_t> indices = {7, 7, 7, 7, 63, 0,
                                              round, round};
        Tensor out({static_cast<int64_t>(indices.size()), 8});
        proxied.Generate(indices, out);
        EXPECT_TRUE(out.AllClose(reference.GenerateBatch(indices), 0.0f))
            << "round " << round;
    }
    EXPECT_GT(proxied.proxy().stats().coalesced, 0u);
    EXPECT_TRUE(proxied.SyncStorage().ok());
}

TEST(StoreTest, SyncStorageDefaultsToOkForInRamGenerators)
{
    Rng rng(31);
    core::LinearScanTable scan(Tensor::Randn({16, 4}, rng));
    core::EmbeddingGenerator& gen = scan;
    EXPECT_TRUE(gen.SyncStorage().ok());
}

}  // namespace
}  // namespace secemb::store
