/**
 * @file
 * Concurrency stress for trace recording: proves the SlotTraceRecorders
 * merge (slot-order concatenation of per-slot buffers) yields a trace
 * that is byte-identical to the serial execution's, for every thread
 * count up to heavy oversubscription, across 50 repeats, and under
 * deliberately fuzzed chunk-claim schedules (SetScheduleJitterForTest).
 *
 * If merged traces ever depended on scheduler timing, the certification
 * harness's bit-identity comparisons would flake; this test is why they
 * cannot. Runs under `ctest -L concurrency` (and the sanitizer builds).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/table_generators.h"
#include "sidechannel/trace.h"
#include "tensor/parallel.h"
#include "verify/canonical.h"

namespace secemb {
namespace {

constexpr int64_t kRows = 96;
constexpr int64_t kDim = 16;
constexpr int kRepeats = 50;

std::vector<int64_t>
WorkloadIndices(int64_t batch, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int64_t> ids(static_cast<size_t>(batch));
    for (auto& id : ids) {
        id = static_cast<int64_t>(rng.NextBounded(kRows));
    }
    return ids;
}

/// Thread counts under test: serial, moderate, and oversubscribed far
/// beyond this machine's cores — plus whatever SECEMB_THREADS asks for,
/// so CI can push the sweep further without a rebuild.
std::vector<int>
ThreadCounts()
{
    std::vector<int> counts{1, 2, 4, 13, 32};
    if (const char* env = std::getenv("SECEMB_THREADS")) {
        const int v = std::atoi(env);
        if (v > 0) counts.push_back(v);
    }
    return counts;
}

class TraceStressTest : public ::testing::Test
{
  protected:
    void TearDown() override { SetScheduleJitterForTest(0, 0); }
};

TEST_F(TraceStressTest, MergedTraceMatchesSerialUnderOversubscription)
{
    Rng rng(11);
    const Tensor table = Tensor::Randn({kRows, kDim}, rng);
    core::LinearScanTable gen(table);

    // Serial reference trace for a fixed batch.
    const auto ids = WorkloadIndices(/*batch=*/24, 17);
    sidechannel::TraceRecorder ref;
    gen.set_recorder(&ref);
    gen.set_nthreads(1);
    Tensor out({static_cast<int64_t>(ids.size()), kDim});
    gen.Generate(ids, out);
    ASSERT_GT(ref.size(), 0u);
    const Tensor ref_out = out;

    for (const int nthreads : ThreadCounts()) {
        for (int repeat = 0; repeat < kRepeats; ++repeat) {
            // Fuzz the chunk-claim schedule differently every repeat.
            SetScheduleJitterForTest(
                /*max_spin=*/512,
                /*seed=*/static_cast<uint64_t>(repeat * 131 + nthreads));
            sidechannel::TraceRecorder rec;
            gen.set_recorder(&rec);
            gen.set_nthreads(nthreads);
            gen.Generate(ids, out);
            ASSERT_EQ(rec.trace(), ref.trace())
                << "nthreads=" << nthreads << " repeat=" << repeat
                << ": merged trace depends on scheduling";
            ASSERT_TRUE(out.AllClose(ref_out));
        }
    }
}

TEST_F(TraceStressTest, PooledMergeStableAcrossSchedules)
{
    Rng rng(12);
    const Tensor table = Tensor::Randn({kRows, kDim}, rng);
    core::LinearScanTable gen(table);

    const auto ids = WorkloadIndices(/*batch=*/18, 23);
    const std::vector<int64_t> offsets{0, 3, 3, 7, 12, 18};
    Tensor out({static_cast<int64_t>(offsets.size()) - 1, kDim});

    sidechannel::TraceRecorder ref;
    gen.set_recorder(&ref);
    gen.set_nthreads(1);
    gen.GeneratePooled(ids, offsets, out);
    ASSERT_GT(ref.size(), 0u);

    for (const int nthreads : {4, 16}) {
        for (int repeat = 0; repeat < kRepeats; ++repeat) {
            SetScheduleJitterForTest(
                256, static_cast<uint64_t>(repeat * 977 + nthreads));
            sidechannel::TraceRecorder rec;
            gen.set_recorder(&rec);
            gen.set_nthreads(nthreads);
            gen.GeneratePooled(ids, offsets, out);
            ASSERT_EQ(rec.trace(), ref.trace())
                << "nthreads=" << nthreads << " repeat=" << repeat;
        }
    }
}

TEST_F(TraceStressTest, CanonicalFormInvariantAcrossFreshInstances)
{
    // Build a fresh generator per thread count (distinct trace bases) and
    // compare *canonical* traces — the exact cross-run comparison the
    // certification harness performs, here under schedule fuzzing.
    const auto ids = WorkloadIndices(/*batch=*/16, 31);
    verify::CanonicalTrace reference;
    bool have_reference = false;

    for (const int nthreads : ThreadCounts()) {
        SetScheduleJitterForTest(128,
                                 static_cast<uint64_t>(nthreads) * 7919);
        Rng rng(13);  // same weights every instance
        core::LinearScanTable gen(Tensor::Randn({kRows, kDim}, rng));
        sidechannel::TraceRecorder rec;
        gen.set_recorder(&rec);
        gen.set_nthreads(nthreads);
        Tensor out({static_cast<int64_t>(ids.size()), kDim});
        gen.Generate(ids, out);

        verify::CanonicalTrace canonical = verify::Canonicalize(rec.trace());
        if (!have_reference) {
            reference = std::move(canonical);
            have_reference = true;
            continue;
        }
        const verify::TraceDivergence d =
            verify::CompareCanonical(reference, canonical);
        EXPECT_FALSE(d.diverged) << "nthreads=" << nthreads << ": "
                                 << d.detail;
    }
}

}  // namespace
}  // namespace secemb
