/**
 * @file
 * Tests for the tensor substrate: storage, ops, RNG, GEMM, ParallelFor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "tensor/gemm.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb {
namespace {

TEST(TensorTest, ZeroInitialised)
{
    Tensor t({3, 4});
    EXPECT_EQ(t.numel(), 12);
    EXPECT_EQ(t.dim(), 2);
    for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, InitializerList)
{
    Tensor t = Tensor::Values({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.numel(), 3);
    EXPECT_EQ(t.at(2), 3.0f);
}

TEST(TensorTest, At2DAnd3DIndexing)
{
    Tensor t({2, 3});
    t.at(1, 2) = 5.0f;
    EXPECT_EQ(t.at(5), 5.0f);  // row-major position
    Tensor u({2, 3, 4});
    u.at(1, 2, 3) = 7.0f;
    EXPECT_EQ(u.at(1 * 12 + 2 * 4 + 3), 7.0f);
}

TEST(TensorTest, RowSpanAliasesStorage)
{
    Tensor t({3, 2});
    t.row(1)[0] = 9.0f;
    EXPECT_EQ(t.at(1, 0), 9.0f);
}

TEST(TensorTest, ReshapePreservesData)
{
    Tensor t = Tensor::Values({1, 2, 3, 4, 5, 6});
    const Tensor r = t.Reshape({2, 3});
    EXPECT_EQ(r.at(1, 0), 4.0f);
    EXPECT_THROW(t.Reshape({5}), std::invalid_argument);
}

TEST(TensorTest, Transpose2D)
{
    Tensor t = Tensor::Values({1, 2, 3, 4, 5, 6}).Reshape({2, 3});
    const Tensor tt = t.Transpose2D();
    EXPECT_EQ(tt.shape(), (Shape{3, 2}));
    EXPECT_EQ(tt.at(2, 1), t.at(1, 2));
}

TEST(TensorTest, ElementwiseOps)
{
    Tensor a = Tensor::Values({1, 2, 3});
    Tensor b = Tensor::Values({4, 5, 6});
    EXPECT_TRUE(a.Add(b).AllClose(Tensor::Values({5, 7, 9})));
    EXPECT_TRUE(b.Sub(a).AllClose(Tensor::Values({3, 3, 3})));
    EXPECT_TRUE(a.Mul(b).AllClose(Tensor::Values({4, 10, 18})));
    EXPECT_TRUE(a.Scale(2.0f).AllClose(Tensor::Values({2, 4, 6})));
}

TEST(TensorTest, Reductions)
{
    Tensor t = Tensor::Values({-1, 3, 2, -5});
    EXPECT_FLOAT_EQ(t.Sum(), -1.0f);
    EXPECT_FLOAT_EQ(t.Mean(), -0.25f);
    EXPECT_FLOAT_EQ(t.Max(), 3.0f);
    EXPECT_FLOAT_EQ(t.Min(), -5.0f);
    EXPECT_EQ(t.Argmax(), 1);
    EXPECT_FLOAT_EQ(t.SquaredNorm(), 1 + 9 + 4 + 25);
}

TEST(TensorTest, AllCloseRespectsShapeAndTolerance)
{
    Tensor a = Tensor::Values({1, 2});
    Tensor b = Tensor::Values({1, 2.000001f});
    EXPECT_TRUE(a.AllClose(b));
    EXPECT_FALSE(a.AllClose(Tensor::Values({1, 2.1f})));
    EXPECT_FALSE(a.AllClose(Tensor::Values({1, 2, 3})));
}

TEST(TensorTest, NegativeDimensionThrows)
{
    EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.NextBounded(17), 17u);
    }
}

TEST(RngTest, UniformCoversRange)
{
    Rng rng(2);
    float mn = 1e9f, mx = -1e9f;
    for (int i = 0; i < 10000; ++i) {
        const float v = rng.NextUniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    EXPECT_LT(mn, -1.8f);
    EXPECT_GT(mx, 2.8f);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(3);
    double sum = 0, sum2 = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.NextGaussian();
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BoundedZeroIsRejected)
{
    Rng rng(1);
#ifdef NDEBUG
    // Release builds take the well-defined error path instead of the UB
    // `-0 % 0` the old code executed.
    EXPECT_THROW(rng.NextBounded(0), std::invalid_argument);
#else
    EXPECT_DEATH(rng.NextBounded(0), "bound > 0");
#endif
    // The generator stays usable after a rejected call.
    EXPECT_LT(rng.NextBounded(5), 5u);
}

TEST(RngTest, BoundedIsRoughlyUniform)
{
    Rng rng(4);
    std::vector<int> counts(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
    for (int c : counts) EXPECT_NEAR(c, n / 8, n / 80);
}

Tensor
NaiveMatMul(const Tensor& a, const Tensor& b)
{
    const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
    Tensor c({m, n});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float acc = 0;
            for (int64_t p = 0; p < k; ++p) {
                acc += a.at(i, p) * b.at(p, j);
            }
            c.at(i, j) = acc;
        }
    }
    return c;
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapeTest, MatchesNaive)
{
    const auto [m, k, n] = GetParam();
    Rng rng(10);
    const Tensor a = Tensor::Randn({m, k}, rng);
    const Tensor b = Tensor::Randn({k, n}, rng);
    EXPECT_TRUE(MatMul(a, b).AllClose(NaiveMatMul(a, b), 1e-3f));
}

TEST_P(GemmShapeTest, ParallelMatchesSerial)
{
    const auto [m, k, n] = GetParam();
    Rng rng(11);
    const Tensor a = Tensor::Randn({m, k}, rng);
    const Tensor b = Tensor::Randn({k, n}, rng);
    EXPECT_TRUE(MatMul(a, b, 4).AllClose(MatMul(a, b, 1), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                      std::tuple{16, 16, 16}, std::tuple{33, 17, 9},
                      std::tuple{2, 64, 2}));

TEST(GemmTest, GemmBTMatchesExplicitTranspose)
{
    Rng rng(12);
    const Tensor a = Tensor::Randn({5, 7}, rng);
    const Tensor b = Tensor::Randn({7, 3}, rng);
    Tensor c({5, 3});
    GemmBT(a, b.Transpose2D(), c);
    EXPECT_TRUE(c.AllClose(NaiveMatMul(a, b), 1e-3f));
}

TEST(GemmTest, GemmATMatchesExplicitTranspose)
{
    Rng rng(13);
    const Tensor a = Tensor::Randn({5, 7}, rng);
    const Tensor b = Tensor::Randn({5, 3}, rng);
    Tensor c({7, 3});
    GemmAT(a, b, c);
    EXPECT_TRUE(c.AllClose(NaiveMatMul(a.Transpose2D(), b), 1e-3f));
}

TEST(GemmTest, AffineAddsBias)
{
    Rng rng(14);
    const Tensor x = Tensor::Randn({4, 3}, rng);
    const Tensor w = Tensor::Randn({3, 2}, rng);
    const Tensor bias = Tensor::Values({10.0f, 20.0f});
    Tensor y({4, 2});
    AffineForward(x, w, bias, y, 1, kernels::Dtype::kF32);
    const Tensor expect = NaiveMatMul(x, w);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(y.at(i, 0), expect.at(i, 0) + 10.0f, 1e-4f);
        EXPECT_NEAR(y.at(i, 1), expect.at(i, 1) + 20.0f, 1e-4f);
    }
}

TEST(GemmTest, InnerDimensionMismatchThrows)
{
    Tensor a({2, 3}), b({4, 2}), c({2, 2});
    EXPECT_THROW(Gemm(a, b, c), std::invalid_argument);
}

TEST(ParallelForTest, CoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(1000, 4, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, HandlesZeroAndSmallN)
{
    int calls = 0;
    ParallelFor(0, 4, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> total{0};
    ParallelFor(2, 8, [&](int64_t b, int64_t e) {
        total += static_cast<int>(e - b);
    });
    EXPECT_EQ(total.load(), 2);
}

}  // namespace
}  // namespace secemb
