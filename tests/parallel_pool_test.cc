/**
 * @file
 * Tests for the persistent-thread-pool ParallelFor: worker reuse across
 * regions, exception propagation (the pre-pool implementation called
 * std::terminate on a throwing worker), oversubscription, the
 * single-thread inline path, nested regions, and pool telemetry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(10000);
    ParallelFor(10000, 4, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkersPersistAcrossRegions)
{
    // Warm the pool, then check that repeated regions neither spawn nor
    // leak threads — the whole point of parking workers between calls.
    std::atomic<int64_t> total{0};
    ParallelFor(512, 4, [&](int64_t b, int64_t e) { total += e - b; });
    const ThreadPoolStats before = GetThreadPoolStats();
    EXPECT_GE(before.threads, 1);

    for (int r = 0; r < 20; ++r) {
        ParallelFor(512, 4, [&](int64_t b, int64_t e) { total += e - b; });
    }
    const ThreadPoolStats after = GetThreadPoolStats();
    EXPECT_EQ(after.threads, before.threads);
    EXPECT_EQ(after.regions, before.regions + 20);
    EXPECT_EQ(total.load(), 512 * 21);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller)
{
    // The chunk starting at 0 may land on the caller or on any pool
    // worker; either way the exception must surface on the caller, with
    // its message intact, and the process must not terminate.
    std::atomic<int64_t> ran{0};
    try {
        ParallelFor(1000, 4, [&](int64_t b, int64_t e) {
            if (b == 0) throw std::runtime_error("worker boom");
            ran += e - b;
        });
        FAIL() << "expected the worker exception to propagate";
    } catch (const std::runtime_error& err) {
        EXPECT_EQ(std::string(err.what()), "worker boom");
    }
    // Failed regions may skip unstarted chunks but never run one twice.
    EXPECT_LE(ran.load(), 1000);
}

TEST(ThreadPoolTest, PoolSurvivesWorkerException)
{
    const ThreadPoolStats before = GetThreadPoolStats();
    for (int round = 0; round < 5; ++round) {
        EXPECT_THROW(ParallelFor(100, 4,
                                 [](int64_t, int64_t) {
                                     throw std::runtime_error("boom");
                                 }),
                     std::runtime_error);
        // Every worker was quiesced (not terminated/detached) and the
        // next region runs to completion on the same pool.
        std::vector<std::atomic<int>> hits(1000);
        ParallelFor(1000, 4, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
                ++hits[static_cast<size_t>(i)];
            }
        });
        for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
    EXPECT_EQ(GetThreadPoolStats().threads, before.threads);
}

TEST(ThreadPoolTest, HundredThrowingRegionsLeakNoWorkers)
{
    // Fault-resilience regression: a worker exception (including injected
    // ones) must leave the pool fully reusable. Warm the pool, run 100
    // throwing regions, then a clean region — stats must stay consistent
    // and the thread count must not drift (no leaked or terminated
    // workers).
    std::atomic<int64_t> warm{0};
    ParallelFor(256, 4, [&](int64_t b, int64_t e) { warm += e - b; });
    const ThreadPoolStats before = GetThreadPoolStats();

    constexpr int kRounds = 100;
    for (int round = 0; round < kRounds; ++round) {
        EXPECT_THROW(
            ParallelFor(256, 4,
                        [&](int64_t b, int64_t) {
                            if (b == 0) {
                                throw std::runtime_error("injected");
                            }
                        }),
            std::runtime_error);
    }

    std::vector<std::atomic<int>> hits(2048);
    ParallelFor(2048, 4, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);

    const ThreadPoolStats after = GetThreadPoolStats();
    EXPECT_EQ(after.threads, before.threads);
    EXPECT_EQ(after.regions, before.regions + kRounds + 1);
    EXPECT_GE(after.helper_joins, before.helper_joins);
}

TEST(ThreadPoolTest, ChunkFaultHookThrowsLikeWorkerException)
{
    // The fault-injection hook fires per chunk and must propagate exactly
    // like an exception from the region body, on both the pool and the
    // inline path.
    SetChunkFaultHookForTest([](int64_t begin, int64_t) {
        if (begin == 0) throw std::runtime_error("hook boom");
    });
    EXPECT_THROW(ParallelFor(1000, 4, [](int64_t, int64_t) {}),
                 std::runtime_error);
    EXPECT_THROW(ParallelFor(1000, 1, [](int64_t, int64_t) {}),
                 std::runtime_error);
    SetChunkFaultHookForTest(nullptr);

    std::atomic<int64_t> total{0};
    ParallelFor(1000, 4, [&](int64_t b, int64_t e) { total += e - b; });
    EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, OversubscriptionBeyondHardwareCompletes)
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const int nthreads = static_cast<int>(hw) * 4 + 3;
    std::vector<std::atomic<int>> hits(4096);
    ParallelFor(4096, nthreads, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller)
{
    const std::thread::id caller = std::this_thread::get_id();
    int calls = 0;
    ParallelFor(100, 1, [&](int64_t b, int64_t e) {
        ++calls;
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 100);
    });
    EXPECT_EQ(calls, 1);

    // n == 1 also runs inline regardless of the requested thread count.
    ParallelFor(1, 8, [&](int64_t, int64_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock)
{
    EXPECT_FALSE(InParallelRegion());
    constexpr int64_t kOuter = 64, kInner = 16;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    ParallelFor(kOuter, 4, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            EXPECT_TRUE(InParallelRegion());
            const std::thread::id outer_tid = std::this_thread::get_id();
            ParallelFor(kInner, 4, [&](int64_t ib, int64_t ie) {
                // Nested regions run inline on the same thread.
                EXPECT_EQ(std::this_thread::get_id(), outer_tid);
                for (int64_t j = ib; j < ie; ++j) {
                    ++hits[static_cast<size_t>(i * kInner + j)];
                }
            });
        }
    });
    EXPECT_FALSE(InParallelRegion());
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, HandlesZeroAndNegativeInputs)
{
    int calls = 0;
    ParallelFor(0, 4, [&](int64_t, int64_t) { ++calls; });
    ParallelFor(-5, 4, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    // Non-positive nthreads clamps to the inline single-thread path.
    std::atomic<int64_t> total{0};
    ParallelFor(10, 0, [&](int64_t b, int64_t e) { total += e - b; });
    ParallelFor(10, -3, [&](int64_t b, int64_t e) { total += e - b; });
    EXPECT_EQ(total.load(), 20);
}

#if SECEMB_TELEMETRY_ENABLED

TEST(ThreadPoolTest, TelemetryRecordsRegionsAndWakeLatency)
{
    telemetry::SetEnabled(true);
    auto& reg = telemetry::Registry::Instance();
    reg.ResetAll();
    const ThreadPoolStats before = GetThreadPoolStats();

    // Slow chunks keep the region open long enough for parked workers to
    // wake and join, so wake-latency samples are recorded.
    for (int r = 0; r < 5; ++r) {
        ParallelFor(4, 4, [&](int64_t, int64_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        });
    }

    const ThreadPoolStats after = GetThreadPoolStats();
    EXPECT_EQ(reg.GetCounter("pool.regions").Value(), 5u);
    EXPECT_GE(reg.GetCounter("pool.chunks").Value(), 5u);
    if (after.helper_joins > before.helper_joins) {
        EXPECT_GE(reg.GetHistogram("pool.wake.ns").Count(), 1u);
    }
    // The active-worker gauge returns to 0 once the region quiesces.
    EXPECT_EQ(reg.GetGauge("pool.active_workers").Value(), 0);
    EXPECT_EQ(reg.GetGauge("pool.threads").Value(),
              static_cast<int64_t>(after.threads));
    reg.ResetAll();
}

#endif  // SECEMB_TELEMETRY_ENABLED

}  // namespace
}  // namespace secemb
