/**
 * @file
 * Tests for the ORAM bucket cipher (Speck64/128 CTR) and the vectorised
 * oblivious scan.
 */

#include <gtest/gtest.h>

#include <set>

#include "oblivious/scan.h"
#include "oblivious/vector_scan.h"
#include "oram/crypto.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb {
namespace {

TEST(SpeckTest, KnownAnswerVector)
{
    // Speck64/128 published test vector (Beaulieu et al.):
    // key = 1b1a1918 13121110 0b0a0908 03020100
    // plaintext = 3b726574 7475432d -> ciphertext = 8c6fa548 454e028b
    const uint32_t key[4] = {0x03020100, 0x0b0a0908, 0x13121110,
                             0x1b1a1918};
    const uint64_t pt = (uint64_t{0x3b726574} << 32) | 0x7475432d;
    const uint64_t expect = (uint64_t{0x8c6fa548} << 32) | 0x454e028b;
    EXPECT_EQ(oram::BucketCipher::EncryptBlock(key, pt), expect);
}

TEST(BucketCipherTest, ApplyIsInvolution)
{
    oram::BucketCipher cipher(123);
    std::vector<uint32_t> data(64);
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint32_t>(i * 2654435761u);
    }
    const auto original = data;
    cipher.Apply(7, 3, data);
    EXPECT_NE(data, original);  // actually encrypted
    cipher.Apply(7, 3, data);
    EXPECT_EQ(data, original);  // XOR keystream is its own inverse
}

TEST(BucketCipherTest, DistinctCoordinatesDistinctKeystreams)
{
    oram::BucketCipher cipher(5);
    std::set<std::vector<uint32_t>> streams;
    for (int64_t bucket : {0, 1, 7}) {
        for (uint64_t version : {1, 2, 3}) {
            std::vector<uint32_t> zeros(16, 0);
            cipher.Apply(bucket, version, zeros);  // keystream itself
            streams.insert(zeros);
        }
    }
    EXPECT_EQ(streams.size(), 9u);
}

TEST(BucketCipherTest, DistinctKeysDistinctStreams)
{
    oram::BucketCipher a(1), b(2);
    std::vector<uint32_t> za(16, 0), zb(16, 0);
    a.Apply(0, 1, za);
    b.Apply(0, 1, zb);
    EXPECT_NE(za, zb);
}

TEST(BucketCipherTest, KeystreamLooksBalanced)
{
    // Crude avalanche sanity: about half of all bits set.
    oram::BucketCipher cipher(9);
    std::vector<uint32_t> zeros(1024, 0);
    cipher.Apply(3, 1, zeros);
    int64_t ones = 0;
    for (uint32_t w : zeros) ones += __builtin_popcount(w);
    const double frac =
        static_cast<double>(ones) / (1024.0 * 32.0);
    EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(BucketCipherTest, OddWordCountHandled)
{
    oram::BucketCipher cipher(11);
    std::vector<uint32_t> data{1, 2, 3};  // odd length: half-block tail
    const auto original = data;
    cipher.Apply(0, 1, data);
    cipher.Apply(0, 1, data);
    EXPECT_EQ(data, original);
}

TEST(VectorScanTest, MatchesScalarForAllDims)
{
    Rng rng(1);
    for (const int64_t dim : {3, 8, 16, 24, 64}) {
        const int64_t rows = 50;
        const Tensor table = Tensor::Randn({rows, dim}, rng);
        std::vector<float> scalar_out(static_cast<size_t>(dim));
        std::vector<float> vec_out(static_cast<size_t>(dim));
        for (int64_t idx : {int64_t{0}, rows / 2, rows - 1}) {
            oblivious::LinearScanLookup(table.flat(), rows, dim, idx,
                                        scalar_out);
            oblivious::LinearScanLookupVec(table.flat(), rows, dim, idx,
                                           vec_out);
            EXPECT_EQ(scalar_out, vec_out)
                << "dim " << dim << " idx " << idx;
        }
    }
}

TEST(VectorScanTest, EligibilityRule)
{
    EXPECT_TRUE(oblivious::VecScanEligible(8));
    EXPECT_TRUE(oblivious::VecScanEligible(64));
    EXPECT_FALSE(oblivious::VecScanEligible(12));
    EXPECT_FALSE(oblivious::VecScanEligible(3));
}

TEST(VectorScanTest, UnalignedOutputBuffer)
{
    // The output span may start at any float boundary; the vector path
    // must not assume 32-byte alignment.
    Rng rng(2);
    const Tensor table = Tensor::Randn({20, 8}, rng);
    std::vector<float> buf(16, 0.0f);
    std::span<float> out(buf.data() + 1, 8);  // deliberately offset
    oblivious::LinearScanLookupVec(table.flat(), 20, 8, 5, out);
    for (int64_t j = 0; j < 8; ++j) {
        EXPECT_FLOAT_EQ(out[static_cast<size_t>(j)], table.at(5, j));
    }
}

}  // namespace
}  // namespace secemb
