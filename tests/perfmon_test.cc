/**
 * @file
 * perf_event_open counter-sampling tests.
 *
 * Two concerns:
 *   1. Robustness — CounterGroup construction and reads never fail, no
 *      matter what the kernel refuses (perf_event_paranoid, hidden PMU,
 *      compiled-out syscall layer). Events degrade independently and
 *      Sample::Delta only reports events available on both sides.
 *   2. Obliviousness (leakage label) — TELEMETRY_SCOPED_COUNTERS reads
 *      counters only at span boundaries, so a victim's recorded memory
 *      trace must be bit-identical with perfmon ON vs OFF, and identical
 *      across secret index sets exactly as it is without instrumentation.
 *
 * Hardware events are typically unavailable inside containers; every
 * value assertion on real counters is guarded on availability so the
 * suite passes (and still exercises the fallback paths) everywhere.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/table_generators.h"
#include "perfmon/perfmon.h"
#include "sidechannel/oblivious_check.h"
#include "sidechannel/trace.h"
#include "telemetry/telemetry.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb::perfmon {
namespace {

/** Restore the perfmon/telemetry runtime switches on scope exit. */
class SwitchGuard
{
  public:
    SwitchGuard() : perfmon_(Enabled()), telemetry_(telemetry::Enabled()) {}
    ~SwitchGuard()
    {
        SetEnabled(perfmon_);
        telemetry::SetEnabled(telemetry_);
    }

  private:
    bool perfmon_;
    bool telemetry_;
};

/** Touch enough memory to make task-clock / instructions visibly tick. */
uint64_t
BusyWork()
{
    std::vector<uint64_t> buf(1 << 16);
    uint64_t acc = 0;
    for (int rep = 0; rep < 8; ++rep) {
        for (size_t i = 0; i < buf.size(); ++i) {
            buf[i] = buf[i] * 2654435761u + i;
            acc += buf[i];
        }
    }
    return acc;
}

// --- event metadata --------------------------------------------------------

TEST(PerfmonTest, EventNamesAreStable)
{
    EXPECT_STREQ(EventName(Event::kCycles), "cycles");
    EXPECT_STREQ(EventName(Event::kInstructions), "instructions");
    EXPECT_STREQ(EventName(Event::kLlcMisses), "llc_misses");
    EXPECT_STREQ(EventName(Event::kDtlbMisses), "dtlb_misses");
    EXPECT_STREQ(EventName(Event::kTaskClockNs), "task_clock_ns");
    EXPECT_STREQ(EventName(Event::kPageFaults), "page_faults");
    EXPECT_STREQ(EventName(Event::kContextSwitches), "context_switches");
}

TEST(PerfmonTest, AvailabilitySummaryListsEveryEvent)
{
    const std::string summary = AvailabilitySummary();
    for (int i = 0; i < kNumEvents; ++i) {
        EXPECT_NE(summary.find(EventName(static_cast<Event>(i))),
                  std::string::npos)
            << summary;
    }
}

// --- Sample::Delta ---------------------------------------------------------

TEST(PerfmonTest, DeltaSubtractsAndIntersectsAvailability)
{
    Sample begin, end;
    begin.value[0] = 100;
    begin.available[0] = true;
    end.value[0] = 250;
    end.available[0] = true;
    // Event 1 available only at the end (e.g. fd opened mid-flight in a
    // hypothetical future): must not report a bogus delta.
    end.value[1] = 999;
    end.available[1] = true;

    const Sample d = Sample::Delta(begin, end);
    EXPECT_TRUE(d.has(Event::kCycles));
    EXPECT_EQ(d[Event::kCycles], 150u);
    EXPECT_FALSE(d.has(Event::kInstructions));
    EXPECT_EQ(d[Event::kInstructions], 0u);
}

TEST(PerfmonTest, DeltaClampsBackwardsCounters)
{
    Sample begin, end;
    begin.value[0] = 500;
    begin.available[0] = true;
    end.value[0] = 100;  // counter reset between reads
    end.available[0] = true;
    const Sample d = Sample::Delta(begin, end);
    EXPECT_EQ(d[Event::kCycles], 0u);
}

// --- CounterGroup robustness -----------------------------------------------

TEST(PerfmonTest, CounterGroupConstructionNeverFails)
{
    // Whatever the host refuses, construction and reads must be safe.
    CounterGroup group;
    const Sample s = group.Read();
    for (int i = 0; i < kNumEvents; ++i) {
        const auto e = static_cast<Event>(i);
        EXPECT_EQ(s.has(e), group.Available(e));
        if (!group.Available(e)) {
            EXPECT_EQ(s[e], 0u);
        }
    }
    group.Reset();  // must be a no-op on unavailable events
    SUCCEED();
}

TEST(PerfmonTest, AvailableCountersAreMonotonic)
{
    CounterGroup group;
    const Sample a = group.Read();
    volatile uint64_t sink = BusyWork();
    (void)sink;
    const Sample b = group.Read();
    for (int i = 0; i < kNumEvents; ++i) {
        const auto e = static_cast<Event>(i);
        if (a.has(e) && b.has(e)) {
            EXPECT_GE(b[e], a[e]) << EventName(e);
        }
    }
}

TEST(PerfmonTest, SoftwareEventsTickWhenAvailable)
{
    // Software events (task-clock at minimum) survive hidden PMUs; when
    // the kernel grants them, a busy region must advance them.
    CounterGroup group;
    if (!group.Available(Event::kTaskClockNs)) {
        GTEST_SKIP() << "no perf events on this host: "
                     << AvailabilitySummary();
    }
    const Sample begin = group.Read();
    volatile uint64_t sink = BusyWork();
    (void)sink;
    const Sample delta = Sample::Delta(begin, group.Read());
    EXPECT_GT(delta[Event::kTaskClockNs], 0u);
}

TEST(PerfmonTest, ResetZeroesAvailableCounters)
{
    CounterGroup group;
    if (!group.AnyAvailable()) {
        GTEST_SKIP() << "no perf events on this host";
    }
    volatile uint64_t sink = BusyWork();
    (void)sink;
    group.Reset();
    const Sample after = group.Read();
    // Immediately after a reset every available counter is near zero —
    // allow the cost of the read itself (well under a millisecond /
    // a million events).
    for (int i = 0; i < kNumEvents; ++i) {
        const auto e = static_cast<Event>(i);
        if (after.has(e)) {
            EXPECT_LT(after[e], 100000000u) << EventName(e);
        }
    }
}

// --- runtime switch + macro ------------------------------------------------

TEST(PerfmonTest, SetEnabledRoundTrips)
{
    SwitchGuard guard;
    SetEnabled(true);
    EXPECT_TRUE(Enabled());
    SetEnabled(false);
    EXPECT_FALSE(Enabled());
}

TEST(PerfmonTest, RegisterSiteIsStableAndNamespaced)
{
    SiteCounters& a = RegisterSite("perfmon_test.site");
    SiteCounters& b = RegisterSite("perfmon_test.site");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.spans,
              &telemetry::Registry::Instance().GetCounter(
                  "perf.perfmon_test.site.spans"));
    EXPECT_EQ(a.events[static_cast<size_t>(Event::kLlcMisses)],
              &telemetry::Registry::Instance().GetCounter(
                  "perf.perfmon_test.site.llc_misses"));
}

#if SECEMB_TELEMETRY_ENABLED

/** A function instrumented exactly like the production generators. */
void
InstrumentedRegion()
{
    TELEMETRY_SCOPED_COUNTERS("perfmon_test.region");
    volatile uint64_t sink = BusyWork();
    (void)sink;
}

TEST(PerfmonTest, MacroCountsSpansWhenEnabled)
{
    SwitchGuard guard;
    telemetry::SetEnabled(true);
    SetEnabled(true);
    auto& spans = telemetry::Registry::Instance().GetCounter(
        "perf.perfmon_test.region.spans");
    const uint64_t before = spans.Value();
    InstrumentedRegion();
    InstrumentedRegion();
#if SECEMB_PERFMON_ENABLED
    EXPECT_EQ(spans.Value(), before + 2);
#else
    EXPECT_EQ(spans.Value(), before);  // macro fell back to TELEMETRY_SPAN
#endif
}

TEST(PerfmonTest, MacroIsInertWhenPerfmonDisabled)
{
    SwitchGuard guard;
    telemetry::SetEnabled(true);
    SetEnabled(false);
    auto& spans = telemetry::Registry::Instance().GetCounter(
        "perf.perfmon_test.region.spans");
    const uint64_t before = spans.Value();
    InstrumentedRegion();
    EXPECT_EQ(spans.Value(), before);
}

TEST(PerfmonTest, MacroAccumulatesEventDeltasWhenCountersExist)
{
    SwitchGuard guard;
    telemetry::SetEnabled(true);
    SetEnabled(true);
    if (!ThreadCounterGroup().Available(Event::kTaskClockNs)) {
        GTEST_SKIP() << "no perf events on this host";
    }
    auto& task_clock = telemetry::Registry::Instance().GetCounter(
        "perf.perfmon_test.region.task_clock_ns");
    const uint64_t before = task_clock.Value();
    InstrumentedRegion();
    EXPECT_GT(task_clock.Value(), before);
}

#endif  // SECEMB_TELEMETRY_ENABLED

// --- obliviousness: counter reads must not perturb victim traces -----------

/**
 * Record the linear-scan generator's memory trace with perfmon sampling
 * ON and OFF (telemetry enabled throughout, so spans fire both times)
 * and require bit-identical traces: a counter read is ~one syscall into
 * a stack buffer and must never add, remove, or reorder a data access.
 */
TEST(PerfmonLeakageTest, TraceIdenticalWithPerfmonOnVsOff)
{
    SwitchGuard guard;
    telemetry::SetEnabled(true);

    Rng rng(77);
    core::LinearScanTable gen(Tensor::Randn({64, 8}, rng));
    const std::vector<int64_t> ids{5, 41, 0, 63};
    Tensor out({4, 8});

    sidechannel::TraceRecorder rec_on, rec_off;
    SetEnabled(true);
    gen.set_recorder(&rec_on);
    gen.Generate(ids, out);

    SetEnabled(false);
    gen.set_recorder(&rec_off);
    gen.Generate(ids, out);
    gen.set_recorder(nullptr);

    const sidechannel::ObliviousnessReport report =
        sidechannel::CompareTraces(rec_on.trace(), rec_off.trace());
    EXPECT_FALSE(rec_on.trace().empty());
    EXPECT_TRUE(report.identical) << report.detail;
}

/**
 * With perfmon sampling ON, the oblivious generator's trace must stay
 * identical across different secret index sets — i.e. instrumentation
 * preserves the obliviousness certificate, not just determinism.
 */
TEST(PerfmonLeakageTest, TraceIdenticalAcrossSecretsWithPerfmonOn)
{
    SwitchGuard guard;
    telemetry::SetEnabled(true);
    SetEnabled(true);

    Rng rng(78);
    core::LinearScanTable gen(Tensor::Randn({64, 8}, rng));
    Tensor out({4, 8});

    const std::vector<int64_t> secrets_a{1, 2, 3, 4};
    const std::vector<int64_t> secrets_b{63, 0, 17, 42};
    sidechannel::TraceRecorder rec_a, rec_b;
    gen.set_recorder(&rec_a);
    gen.Generate(secrets_a, out);
    gen.set_recorder(&rec_b);
    gen.Generate(secrets_b, out);
    gen.set_recorder(nullptr);

    const sidechannel::ObliviousnessReport report =
        sidechannel::CompareTraces(rec_a.trace(), rec_b.trace());
    EXPECT_FALSE(rec_a.trace().empty());
    EXPECT_TRUE(report.identical) << report.detail;
}

}  // namespace
}  // namespace secemb::perfmon
