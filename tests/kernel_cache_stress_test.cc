/**
 * @file
 * Concurrency stress for the persistent packed-weight cache (ctest
 * label `concurrency`; re-run under -DSECEMB_SANITIZE=thread).
 *
 * The ORAM proxy puts GEMM traffic on pool threads that previously only
 * the batch scan used, so the cache's lock discipline is exercised from
 * three sides at once: readers hammering Get() on a shared immutable
 * weight buffer, mutators flipping their own buffers in place so every
 * Get() takes the content-hash revalidate/repack path, and a Clear()
 * thread dropping the whole table mid-flight. Correctness hinges on the
 * shared_ptr contract — panels handed out before a Clear()/repack stay
 * valid — which every worker verifies by checking its GEMM result
 * against the naive reference.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/kernels/kernels.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb {
namespace {

constexpr float kRelTol = 1e-4f;

float
MaxRelError(const Tensor& got, const Tensor& want)
{
    float worst = 0.0f;
    for (int64_t i = 0; i < got.numel(); ++i) {
        const float denom = std::max(1.0f, std::fabs(want.at(i)));
        worst = std::max(worst, std::fabs(got.at(i) - want.at(i)) / denom);
    }
    return worst;
}

TEST(KernelCacheStressTest, GetRevalidateClearRace)
{
    auto& cache = kernels::PackedWeightCache::Instance();
    cache.Clear();

    constexpr int kWorkers = 8;
    constexpr int kIters = 200;
    constexpr int64_t kM = 8, kK = 24, kN = 16;

    Rng rng(131);
    // One shared immutable weight (readers), one private weight per
    // mutator worker (each mutation forces a revalidate -> repack).
    const Tensor shared_w = Tensor::Randn({kK, kN}, rng);
    const Tensor x = Tensor::Randn({kM, kK}, rng);
    Tensor shared_want({kM, kN});
    GemmNaive(x, shared_w, shared_want);

    std::vector<Tensor> private_w;
    for (int i = 0; i < kWorkers; ++i) {
        private_w.push_back(Tensor::Randn({kK, kN}, rng));
    }

    std::atomic<int> failures{0};
    ParallelFor(kWorkers, kWorkers, [&](int64_t b, int64_t e) {
        for (int64_t worker = b; worker < e; ++worker) {
            Rng wrng(1000 + static_cast<uint64_t>(worker));
            for (int iter = 0; iter < kIters; ++iter) {
                if (worker == 0) {
                    // Clear thread: drop the table mid-flight. Panels
                    // other workers already hold must stay valid.
                    cache.Clear();
                } else if (worker % 2 == 1) {
                    // Mutator: in-place update, then Get() — the hash
                    // mismatch forces the repack path under the lock.
                    Tensor& w = private_w[worker];
                    const int64_t at =
                        static_cast<int64_t>(wrng.NextBounded(kK * kN));
                    w.data()[at] += 1.0f;
                    Tensor want({kM, kN}), got({kM, kN});
                    GemmNaive(x, w, want);
                    AffineForward(x, w, Tensor(), got, 1,
                                  kernels::Dtype::kF32);
                    if (MaxRelError(got, want) > kRelTol) ++failures;
                } else {
                    // Reader: hot-path Get() on the shared weights; the
                    // result must never come from a stale/torn panel.
                    const auto packed =
                        cache.Get(shared_w.data(), kK, kN, false);
                    if (packed == nullptr || packed->k != kK ||
                        packed->n != kN) {
                        ++failures;
                        continue;
                    }
                    Tensor got({kM, kN});
                    AffineForward(x, shared_w, Tensor(), got, 1,
                                  kernels::Dtype::kF32);
                    if (MaxRelError(got, shared_want) > kRelTol) {
                        ++failures;
                    }
                }
            }
        }
    });

    EXPECT_EQ(failures.load(), 0);
    // The revalidate path is live (deterministic check: Clear() resets
    // stats, so force one mutation -> repack after the storm).
    cache.Get(private_w[1].data(), kK, kN, false);
    private_w[1].data()[0] += 1.0f;
    cache.Get(private_w[1].data(), kK, kN, false);
    EXPECT_GT(cache.stats().repacks, 0u);
    cache.Clear();
}

}  // namespace
}  // namespace secemb
